"""Shared pytest configuration for the repro test suite.

Adds the ``--sanitize`` flag: ``pytest --sanitize`` enables the
:mod:`repro.analysis.runtime` invariant sanitizer for the whole session,
so every heap mutation, R-tree restructure and verification round in the
suite is cross-checked against the paper's invariants.  The same effect
is available without the flag by exporting ``REPRO_SANITIZE=1``.

The same switch now also arms the race sanitizer: tracked locks record
the runtime lock-order graph and metric mutations are checked against
their guards for the whole session, and any inversion or unguarded
mutation still pending at session end (tests that *inject* violations
reset before returning) fails the teardown.

It also arms the accounting sanitizer: page-access billing is
attributed to its callers, subcounter fold-once tracking runs for the
whole session, and a double-fold or a subcounter left unabsorbed at
session end fails the teardown the same way.
"""

import pytest

# Differential-fuzzing knobs (--difftest-budget / --difftest-seed) and the
# session-scoped difftest_report fixture.
pytest_plugins = ("repro.testing.pytest_plugin",)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="enable repro.analysis runtime invariant checks for all tests",
    )


@pytest.fixture(autouse=True, scope="session")
def _sanitizer_session(request: pytest.FixtureRequest):
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.analysis.runtime import SANITIZER

    SANITIZER.enable()
    SANITIZER.reset_concurrency()
    SANITIZER.reset_accounting()
    try:
        yield
    finally:
        SANITIZER.disable()
        leftover = (
            SANITIZER.lock_order_violations
            + SANITIZER.metric_violations
            + SANITIZER.accounting_violations
            + SANITIZER.accounting_leftovers()
        )
        SANITIZER.reset_concurrency()
        SANITIZER.reset_accounting()
        assert leftover == [], f"sanitizer reports at session end: {leftover}"
