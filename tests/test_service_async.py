"""Tests for repro.service.asyncserver: TCP serving, batching, flow control.

Real sockets on an ephemeral loopback port via :class:`BackgroundServer`
(the same harness the ``repro-serve --selftest`` CI job uses), plus
direct event-loop tests for the timeout path, which would otherwise need
a wall-clock sleep.
"""

import asyncio
import socket
import struct

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.service.asyncserver import (
    AsyncQueryServer,
    BackgroundServer,
    ServiceConfig,
)
from repro.service.client import ServiceClient
from repro.service.protocol import (
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    ErrorCode,
    ErrorReply,
    KnnRequest,
    MessageType,
    decode_message,
    encode_message,
)
from repro.service.transport import TcpTransport


def make_pois(count=300, seed=0, extent=4.0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, extent, size=(count, 2))
    return [(Point(float(x), float(y)), f"poi-{i}") for i, (x, y) in enumerate(coords)]


def make_server(pois):
    return SpatialDatabaseServer.from_points(pois, algorithm=ServerAlgorithm.EINN)


def answer_key(neighbors):
    return tuple((n.point.x, n.point.y, n.payload, n.distance) for n in neighbors)


@pytest.fixture()
def running_server():
    pois = make_pois()
    with BackgroundServer(make_server(pois), ServiceConfig()) as running:
        yield running, pois


class TestTcpServing:
    def test_knn_over_tcp_matches_direct(self, running_server):
        running, pois = running_server
        reference = make_server(pois)
        client = ServiceClient(TcpTransport(*running.address))
        try:
            for query in (Point(1.0, 1.0), Point(3.2, 0.4), Point(2.0, 3.9)):
                answer = client.knn_query_detailed(query, 5)
                expected = reference.knn_query_detailed(query, 5)
                assert answer_key(answer.neighbors) == answer_key(expected.neighbors)
                assert answer.pages == expected.pages
        finally:
            client.close()

    def test_concurrent_clients_get_exact_answers(self, running_server):
        from concurrent.futures import ThreadPoolExecutor

        running, pois = running_server
        reference = make_server(pois)
        rng = np.random.default_rng(7)
        # A tight cluster: concurrent requests should merge into shared
        # traversals, and the answers must still be exact.
        points = [
            Point(2.01 + float(rng.uniform(0, 0.05)), 2.01 + float(rng.uniform(0, 0.05)))
            for _ in range(6)
        ]
        expected = {i: answer_key(reference.knn_query(p, 4)) for i, p in enumerate(points)}

        def worker():
            client = ServiceClient(TcpTransport(*running.address))
            try:
                return [
                    (i, answer_key(client.knn_query_detailed(p, 4).neighbors))
                    for i, p in enumerate(points)
                ]
            finally:
                client.close()

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [f.result() for f in [pool.submit(worker) for _ in range(4)]]
        for result in results:
            for index, key in result:
                assert key == expected[index]

    def test_backpressure_window_of_one_stays_correct(self, running_server):
        running, pois = running_server
        reference = make_server(pois)
        config = ServiceConfig(max_inflight=1, queue_capacity=2)
        with BackgroundServer(make_server(pois), config) as tight:
            client = ServiceClient(TcpTransport(*tight.address))
            try:
                for x in np.linspace(0.5, 3.5, 8):
                    query = Point(float(x), 2.0)
                    answer = client.knn_query_detailed(query, 3)
                    expected = reference.knn_query_detailed(query, 3)
                    assert answer_key(answer.neighbors) == answer_key(expected.neighbors)
            finally:
                client.close()

    def test_malformed_frame_gets_error_and_close(self, running_server):
        running, _ = running_server
        with socket.create_connection(running.address, timeout=5.0) as sock:
            sock.sendall(b"XX\x01\x01\x00\x00\x00\x00")
            reply = _read_frame(sock)
            assert isinstance(reply, ErrorReply)
            assert reply.code is ErrorCode.MALFORMED
            # The server closes the byte stream: resyncing is impossible.
            sock.settimeout(5.0)
            assert sock.recv(1) == b""

    def test_oversized_declared_payload_rejected(self, running_server):
        running, _ = running_server
        header = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, int(MessageType.KNN_REQUEST), 1 << 30
        )
        with socket.create_connection(running.address, timeout=5.0) as sock:
            sock.sendall(header)
            reply = _read_frame(sock)
            assert isinstance(reply, ErrorReply)
            assert reply.code is ErrorCode.OVERSIZED
            sock.settimeout(5.0)
            assert sock.recv(1) == b""

    def test_unknown_stream_pull_is_a_bad_stream_error(self, running_server):
        from repro.service.protocol import StreamPull

        running, _ = running_server
        transport = TcpTransport(*running.address)
        try:
            reply = decode_message(
                transport.request(encode_message(StreamPull(9, 777, 5)))
            )
            assert isinstance(reply, ErrorReply)
            assert reply.code is ErrorCode.BAD_STREAM
            assert reply.request_id == 9
        finally:
            transport.close()


def _read_frame(sock):
    header = _read_exactly(sock, HEADER_SIZE)
    _, _, _, length = struct.unpack(">2sBBI", header)
    return decode_message(header + _read_exactly(sock, length))


def _read_exactly(sock, count):
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise AssertionError("connection closed mid-frame")
        data += chunk
    return data


class TestTimeouts:
    def test_stale_requests_answered_with_timeout_error(self):
        """A request older than ``request_timeout_s`` is never executed."""
        pois = make_pois(seed=2)

        async def scenario():
            running = AsyncQueryServer(
                make_server(pois), ServiceConfig(request_timeout_s=0.01)
            )
            replies = []

            def respond(message):
                replies.append(message)
                future = asyncio.get_running_loop().create_future()
                future.set_result(None)
                return future

            from repro.service.asyncserver import _Pending

            loop = asyncio.get_running_loop()
            stale = _Pending(
                KnnRequest(41, Point(1.0, 1.0), 3),
                loop.time() - 1.0,
                respond,
                lambda: None,
            )
            fresh = _Pending(
                KnnRequest(42, Point(1.0, 1.0), 3),
                loop.time(),
                respond,
                lambda: None,
            )
            await running._execute_batch([stale, fresh], loop.time())
            await asyncio.sleep(0)
            return replies

        replies = asyncio.run(scenario())
        assert len(replies) == 2
        by_id = {reply.request_id: reply for reply in replies}
        assert isinstance(by_id[41], ErrorReply)
        assert by_id[41].code is ErrorCode.TIMEOUT
        assert not isinstance(by_id[42], ErrorReply)
        assert len(by_id[42].neighbors) == 3


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_cell_size": 0.0},
            {"batch_window_s": -0.1},
            {"max_batch": 0},
            {"max_inflight": 0},
            {"queue_capacity": 0},
            {"request_timeout_s": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestLifecycle:
    def test_serve_forever_without_start_raises(self):
        server = AsyncQueryServer(make_server(make_pois(20)), ServiceConfig())

        async def attempt():
            await server.serve_forever()

        with pytest.raises(RuntimeError, match=r"start\(\) not called"):
            asyncio.run(attempt())
