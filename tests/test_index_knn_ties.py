"""Tie-breaking regression: equal-distance POIs across all kNN algorithms.

INN, EINN and the depth-first baseline must break exact distance ties
identically -- stable by POI id via :func:`repro.index.knn.poi_tie_key` --
so differential comparisons (and the paper's page-access experiments) see
the same neighbor sequence from every algorithm.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.index.knn import (
    k_nearest,
    k_nearest_depth_first,
    k_nearest_einn,
    poi_tie_key,
)
from repro.index.rtree import RTree


def build_trees(items):
    """Both construction paths: STR bulk packing and one-by-one insertion."""
    bulk = RTree.bulk_load(list(items))
    incremental = RTree()
    for point, payload in items:
        incremental.insert(point, payload)
    return [bulk, incremental]


def sequences(tree, query, k):
    return {
        "inn": [(n.payload, n.distance) for n in k_nearest(tree, query, k)],
        "depth-first": [
            (n.payload, n.distance) for n in k_nearest_depth_first(tree, query, k)
        ],
        "einn": [(n.payload, n.distance) for n in k_nearest_einn(tree, query, k)],
    }


class TestPoiTieKey:
    def test_numeric_payloads_sort_numerically(self):
        assert poi_tie_key(2) < poi_tie_key(10)
        assert poi_tie_key(2.5) < poi_tie_key(3)

    def test_string_payloads_sort_lexicographically(self):
        assert poi_tie_key("a2") < poi_tie_key("b1")

    def test_numerics_sort_before_strings(self):
        assert poi_tie_key(999) < poi_tie_key("0")

    def test_bool_is_not_numeric(self):
        # repr-stable: True ties by str("True"), not by float(1.0).
        assert poi_tie_key(True) == poi_tie_key("True")


class TestDuplicateDistanceTies:
    def test_four_corners_same_distance(self):
        """Four POIs at exactly the same distance; k=2 picks by id."""
        items = [
            (Point(1.0, 0.0), "d"),
            (Point(-1.0, 0.0), "a"),
            (Point(0.0, 1.0), "c"),
            (Point(0.0, -1.0), "b"),
        ]
        query = Point(0.0, 0.0)
        for tree in build_trees(items):
            got = sequences(tree, query, 2)
            assert got["inn"] == [("a", 1.0), ("b", 1.0)]
            assert got["depth-first"] == got["inn"]
            assert got["einn"] == got["inn"]

    def test_duplicate_locations(self):
        """Several POIs on the very same location."""
        items = [
            (Point(0.5, 0.5), "p2"),
            (Point(0.5, 0.5), "p0"),
            (Point(0.5, 0.5), "p1"),
            (Point(2.0, 2.0), "far"),
        ]
        query = Point(0.0, 0.0)
        for tree in build_trees(items):
            got = sequences(tree, query, 3)
            assert [p for p, _ in got["inn"]] == ["p0", "p1", "p2"]
            assert got["depth-first"] == got["inn"]
            assert got["einn"] == got["inn"]

    def test_numeric_ids_on_tied_ring(self):
        items = [(Point(0.0, 3.0), 11), (Point(3.0, 0.0), 2), (Point(-3.0, 0.0), 5)]
        query = Point(0.0, 0.0)
        for tree in build_trees(items):
            got = sequences(tree, query, 2)
            assert [p for p, _ in got["inn"]] == [2, 5]
            assert got["depth-first"] == got["inn"]
            assert got["einn"] == got["inn"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_lattice_agreement(self, seed):
        """Dyadic lattice worlds are packed with exact ties; all three
        algorithms must agree on the full ranking."""
        rng = random.Random(seed)
        items = [
            (
                Point(rng.randint(0, 8) / 4.0, rng.randint(0, 8) / 4.0),
                f"p{index}",
            )
            for index in range(40)
        ]
        query = Point(rng.randint(0, 8) / 4.0, rng.randint(0, 8) / 4.0)
        for tree in build_trees(items):
            for k in (1, 3, 7, 40):
                got = sequences(tree, query, k)
                assert got["depth-first"] == got["inn"]
                assert got["einn"] == got["inn"]
