"""Tests for repro.network.dijkstra, validated against networkx."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.network.dijkstra import network_distance, shortest_path, shortest_path_lengths
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.graph import SpatialNetwork


def random_network(seed=0, size=2.0):
    spec = RoadNetworkSpec(width=size, height=size, secondary_spacing=size / 6,
                           seed=seed)
    return generate_road_network(spec)


def to_networkx(network: SpatialNetwork) -> nx.Graph:
    graph = nx.Graph()
    for node in network.node_ids():
        graph.add_node(node)
    for edge in network.edges():
        graph.add_edge(edge.u, edge.v, weight=edge.length)
    return graph


class TestShortestPathLengths:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx(self, seed):
        network = random_network(seed)
        graph = to_networkx(network)
        source = next(network.node_ids())
        ours = shortest_path_lengths(network, [(source, 0.0)])
        reference = nx.single_source_dijkstra_path_length(graph, source)
        assert set(ours) == set(reference)
        for node, dist in reference.items():
            assert ours[node] == pytest.approx(dist)

    def test_multi_source(self):
        network = random_network(1)
        nodes = list(network.node_ids())
        sources = [(nodes[0], 0.0), (nodes[len(nodes) // 2], 0.5)]
        ours = shortest_path_lengths(network, sources)
        single_a = shortest_path_lengths(network, [sources[0]])
        single_b = shortest_path_lengths(network, [sources[1]])
        for node in ours:
            expected = min(single_a.get(node, math.inf), single_b.get(node, math.inf))
            assert ours[node] == pytest.approx(expected)

    def test_negative_source_distance_raises(self):
        network = random_network(0)
        source = next(network.node_ids())
        with pytest.raises(ValueError):
            shortest_path_lengths(network, [(source, -1.0)])

    def test_cutoff_limits_settled(self):
        network = random_network(2)
        source = next(network.node_ids())
        full = shortest_path_lengths(network, [(source, 0.0)])
        cutoff = max(full.values()) / 2.0
        limited = shortest_path_lengths(network, [(source, 0.0)], cutoff=cutoff)
        assert all(dist <= cutoff for dist in limited.values())
        assert len(limited) < len(full)

    def test_targets_early_exit(self):
        network = random_network(3)
        nodes = list(network.node_ids())
        source, target = nodes[0], nodes[-1]
        result = shortest_path_lengths(network, [(source, 0.0)], targets=[target])
        assert target in result


class TestShortestPath:
    def test_trivial_path(self):
        network = random_network(0)
        node = next(network.node_ids())
        assert shortest_path(network, node, node) == [node]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_path_length_matches_distance(self, seed):
        network = random_network(seed)
        nodes = sorted(network.node_ids())
        source, target = nodes[0], nodes[-1]
        path = shortest_path(network, source, target)
        assert path is not None
        assert path[0] == source and path[-1] == target
        length = 0.0
        for u, v in zip(path, path[1:]):
            edge = network.edge_between(u, v)
            assert edge is not None, "path uses a non-existent edge"
            length += edge.length
        expected = shortest_path_lengths(network, [(source, 0.0)], targets=[target])
        assert length == pytest.approx(expected[target])

    def test_unreachable_returns_none(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        c = net.add_node(Point(5, 5))
        d = net.add_node(Point(6, 5))
        net.add_edge(a, b)
        net.add_edge(c, d)
        assert shortest_path(net, a, c) is None


class TestNetworkDistance:
    def test_same_edge(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(10, 0))
        edge = net.add_edge(a, b)
        loc1 = net.location_at(edge, 2.0)
        loc2 = net.location_at(edge, 7.5)
        assert network_distance(net, loc1, loc2) == pytest.approx(5.5)

    def test_symmetric(self):
        network = random_network(1)
        edges = list(network.edges())
        loc1 = network.location_at(edges[0], edges[0].length * 0.3)
        loc2 = network.location_at(edges[-1], edges[-1].length * 0.8)
        forward = network_distance(network, loc1, loc2)
        backward = network_distance(network, loc2, loc1)
        assert forward == pytest.approx(backward)

    def test_euclidean_lower_bound_property(self):
        """ED(a, b) <= ND(a, b) for all location pairs (Section 3.4)."""
        network = random_network(4)
        rng = np.random.default_rng(0)
        edges = list(network.edges())
        for _ in range(30):
            e1 = edges[int(rng.integers(len(edges)))]
            e2 = edges[int(rng.integers(len(edges)))]
            loc1 = network.location_at(e1, float(rng.uniform(0, e1.length)))
            loc2 = network.location_at(e2, float(rng.uniform(0, e2.length)))
            ed = loc1.point.distance_to(loc2.point)
            nd = network_distance(network, loc1, loc2)
            assert ed <= nd + 1e-9

    def test_distance_to_self_is_zero(self):
        network = random_network(0)
        edge = next(network.edges())
        loc = network.location_at(edge, edge.length / 2)
        assert network_distance(network, loc, loc) == pytest.approx(0.0)

    def test_disconnected_is_infinite(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        c = net.add_node(Point(5, 5))
        d = net.add_node(Point(6, 5))
        e1 = net.add_edge(a, b)
        e2 = net.add_edge(c, d)
        loc1 = net.location_at(e1, 0.5)
        loc2 = net.location_at(e2, 0.5)
        assert math.isinf(network_distance(net, loc1, loc2))

    def test_triangle_inequality_on_sample(self):
        network = random_network(5)
        edges = list(network.edges())
        rng = np.random.default_rng(1)
        for _ in range(10):
            locs = []
            for _ in range(3):
                edge = edges[int(rng.integers(len(edges)))]
                locs.append(network.location_at(edge, float(rng.uniform(0, edge.length))))
            d_ab = network_distance(network, locs[0], locs[1])
            d_bc = network_distance(network, locs[1], locs[2])
            d_ac = network_distance(network, locs[0], locs[2])
            assert d_ac <= d_ab + d_bc + 1e-9
