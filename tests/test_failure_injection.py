"""Failure injection and degenerate-world tests across the stack."""

import math

import numpy as np
import pytest

from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.core.host import MobileHost
from repro.core.senn import ResolutionTier, SennConfig, senn_query
from repro.core.server import SpatialDatabaseServer
from repro.core.verification import verify_multi_peer, verify_single_peer
from repro.geometry.circle import Circle
from repro.geometry.coverage import disk_covered_by_disks
from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.network.graph import SpatialNetwork
from repro.sim.config import ParameterSet, SimulationConfig
from repro.sim.mobility import RoadTrajectory
from repro.sim.simulation import Simulation


def tiny_params(**overrides):
    defaults = dict(
        name="tiny",
        poi_number=3,
        mh_number=2,
        c_size=5,
        m_percentage=50.0,
        m_velocity=30.0,
        lambda_query=30.0,
        tx_range_m=200.0,
        lambda_knn=2,
        t_execution_hours=0.05,
        area_miles=1.0,
    )
    defaults.update(overrides)
    return ParameterSet(**defaults)


class TestDegenerateWorlds:
    def test_single_host_world(self):
        """One host alone: every query is local-cache or server."""
        config = SimulationConfig(parameters=tiny_params(mh_number=1), seed=0)
        metrics = Simulation(config).run()
        assert metrics.tier_counts[ResolutionTier.SINGLE_PEER] == 0
        assert metrics.tier_counts[ResolutionTier.MULTI_PEER] == 0

    def test_single_poi_world(self):
        config = SimulationConfig(
            parameters=tiny_params(poi_number=1, lambda_knn=1), seed=1
        )
        metrics = Simulation(config).run()
        assert metrics.total_queries > 0

    def test_k_exceeding_poi_count(self):
        """Asking for more neighbors than exist must not crash."""
        config = SimulationConfig(
            parameters=tiny_params(poi_number=2, lambda_knn=5), seed=2
        )
        metrics = Simulation(config).run()
        assert metrics.total_queries > 0

    def test_zero_transmission_range(self):
        """Radios off: peers unreachable, everything cache-or-server."""
        config = SimulationConfig(parameters=tiny_params(tx_range_m=0.0), seed=3)
        metrics = Simulation(config).run()
        assert metrics.tier_counts[ResolutionTier.SINGLE_PEER] == 0
        assert metrics.tier_counts[ResolutionTier.MULTI_PEER] == 0

    def test_all_hosts_stationary(self):
        config = SimulationConfig(parameters=tiny_params(m_percentage=0.0), seed=4)
        metrics = Simulation(config).run()
        assert metrics.total_queries > 0

    def test_no_warmup(self):
        config = SimulationConfig(
            parameters=tiny_params(), warmup_fraction=0.0, seed=5
        )
        metrics = Simulation(config).run()
        assert metrics.total_queries > 0


class TestVerificationEdgeCases:
    def test_peer_exactly_at_query_point(self):
        pois = [(Point(1, 0), "a"), (Point(2, 0), "b"), (Point(3, 0), "c")]
        q = Point(0, 0)
        neighbors = tuple(
            NeighborResult(p, payload, q.distance_to(p)) for p, payload in pois
        )
        cache = CachedQueryResult(q, neighbors)
        heap = CandidateHeap(2)
        verify_single_peer(q, cache, heap)
        # delta = 0: everything up to the last cached NN verifies.
        assert heap.is_complete()

    def test_poi_at_query_point(self):
        """A POI exactly at Q has distance zero and must rank first."""
        q = Point(5, 5)
        neighbors = (
            NeighborResult(q, "here", 0.0),
            NeighborResult(Point(6, 5), "there", 1.0),
        )
        cache = CachedQueryResult(q, neighbors)
        heap = CandidateHeap(1)
        verify_single_peer(q, cache, heap)
        assert heap.certain_entries()[0].payload == "here"

    def test_all_caches_empty(self):
        heap = CandidateHeap(3)
        empty = CachedQueryResult(Point(0, 0), ())
        assert verify_single_peer(Point(1, 1), empty, heap) == 0
        assert verify_multi_peer(Point(1, 1), [empty, empty], heap) == 0

    def test_coincident_certain_circles(self):
        """Identical peer circles must not break the coverage test."""
        target = Circle(Point(0, 0), 1.0)
        cover = [Circle(Point(0.1, 0), 2.0)] * 3
        assert disk_covered_by_disks(target, cover)

    def test_senn_duplicate_peer_caches(self):
        pois = [(Point(float(i), 0.0), f"poi-{i}") for i in range(1, 8)]
        q = Point(0, 0)
        neighbors = tuple(
            sorted(
                (NeighborResult(p, payload, q.distance_to(p)) for p, payload in pois),
                key=lambda n: n.distance,
            )[:5]
        )
        cache = CachedQueryResult(Point(0.01, 0.0), neighbors)
        result = senn_query(
            q, 3, None, [cache, cache, cache], SennConfig(k=3)
        )
        if result.answered_by_peers:
            payloads = [n.payload for n in result.neighbors]
            assert len(payloads) == len(set(payloads))


class TestHostEdgeCases:
    def test_query_without_server_returns_partial(self):
        host = MobileHost(1, Point(0, 0), SennConfig(k=3))
        result = host.query_knn(peers=[], server=None)
        assert result.tier is ResolutionTier.SERVER
        assert result.neighbors == []
        # Nothing to cache from a failed query.
        assert host.cache.is_empty()

    def test_empty_server(self):
        server = SpatialDatabaseServer.from_points([])
        host = MobileHost(1, Point(0, 0), SennConfig(k=3))
        result = host.query_knn(peers=[], server=server)
        assert result.neighbors == []

    def test_range_query_empty_disk_cached(self):
        """An empty range answer is still cached (empty-disk knowledge)."""
        server = SpatialDatabaseServer.from_points([(Point(9, 9), "far")])
        config = SennConfig(k=1, range_overfetch=0.0)
        host = MobileHost(1, Point(0, 0), config)
        first = host.query_range(1.0, peers=[], server=server)
        assert first.neighbors == []
        second = host.query_range(0.5, peers=[], server=server)
        assert second.tier is ResolutionTier.LOCAL_CACHE
        assert server.queries_served == 1


class TestMobilityEdgeCases:
    def test_road_trajectory_on_disconnected_network(self):
        """A host on a 2-node island keeps shuttling without escaping."""
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        c = net.add_node(Point(10, 10))
        d = net.add_node(Point(11, 10))
        net.add_edge(a, b)
        net.add_edge(c, d)
        rng = np.random.default_rng(0)
        traj = RoadTrajectory(net, 30.0, rng, pause_max_s=0.0, start_node=a)
        for _ in range(50):
            p = traj.advance(60.0)
            # Never teleports to the other component.
            assert p.y < 5.0

    def test_zero_advance_is_stable(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        net.add_edge(a, b)
        traj = RoadTrajectory(net, 30.0, np.random.default_rng(1), start_node=a)
        p1 = traj.advance(0.0)
        p2 = traj.advance(0.0)
        assert p1 == p2
