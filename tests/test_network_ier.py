"""Tests for repro.network.ier: IER and INE network kNN."""

import math

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.network.dijkstra import network_distance
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.ier import (
    incremental_euclidean_restriction,
    incremental_network_expansion,
)


def build_scene(seed=0, poi_count=25, size=2.0):
    """A random network with random POIs snapped onto it."""
    network = generate_road_network(
        RoadNetworkSpec(width=size, height=size, secondary_spacing=size / 6, seed=seed)
    )
    rng = np.random.default_rng(seed + 100)
    pois = []
    for i in range(poi_count):
        p = Point(float(rng.uniform(0, size)), float(rng.uniform(0, size)))
        pois.append((network.snap(p), f"poi-{i}"))
    edges = list(network.edges())
    edge = edges[int(rng.integers(len(edges)))]
    origin = network.location_at(edge, float(rng.uniform(0, edge.length)))
    return network, origin, pois


def brute_force_network_knn(network, origin, pois, k):
    """Oracle: network distance to every POI, sorted."""
    distances = sorted(
        (network_distance(network, origin, loc), payload) for loc, payload in pois
    )
    return distances[:k]


def euclidean_stream(origin, pois):
    """Yield POIs in ascending Euclidean order, as NeighborResult."""
    ordered = sorted(
        (origin.point.distance_to(loc.point), payload, loc) for loc, payload in pois
    )
    for dist, payload, loc in ordered:
        yield NeighborResult(loc.point, (payload, loc), dist)


class TestIer:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_brute_force(self, seed, k):
        network, origin, pois = build_scene(seed)

        def nd_of(candidate):
            _, loc = candidate.payload
            return network_distance(network, origin, loc)

        result = incremental_euclidean_restriction(
            euclidean_stream(origin, pois), nd_of, k
        )
        expected = brute_force_network_knn(network, origin, pois, k)
        assert [r.network_distance for r in result] == pytest.approx(
            [d for d, _ in expected]
        )

    def test_k_zero(self):
        assert incremental_euclidean_restriction(iter([]), lambda c: 0.0, 0) == []

    def test_k_negative_raises(self):
        with pytest.raises(ValueError):
            incremental_euclidean_restriction(iter([]), lambda c: 0.0, -1)

    def test_empty_source(self):
        assert incremental_euclidean_restriction(iter([]), lambda c: 0.0, 3) == []

    def test_unreachable_pois_skipped(self):
        stream = iter(
            [
                NeighborResult(Point(0, 0), "reachable", 1.0),
                NeighborResult(Point(1, 0), "island", 2.0),
                NeighborResult(Point(2, 0), "far", 3.0),
            ]
        )

        def nd_of(candidate):
            if candidate.payload == "island":
                return math.inf
            return candidate.distance * 1.5

        result = incremental_euclidean_restriction(stream, nd_of, 2)
        assert [r.payload for r in result] == ["reachable", "far"]

    def test_stops_early(self):
        """IER must not consume the stream past the network bound."""
        consumed = []

        def stream():
            for i in range(100):
                r = NeighborResult(Point(float(i), 0), i, float(i))
                consumed.append(i)
                yield r

        # Network distance equals Euclidean: bound after k results is k-1,
        # so the stream stops as soon as ED exceeds it.
        result = incremental_euclidean_restriction(stream(), lambda c: c.distance, 3)
        assert len(result) == 3
        assert len(consumed) < 100

    def test_network_distance_ordering(self):
        """IER ranks by network distance, not Euclidean distance."""
        stream = iter(
            [
                NeighborResult(Point(1, 0), "euclid-close", 1.0),
                NeighborResult(Point(2, 0), "network-close", 2.0),
                NeighborResult(Point(9, 0), "far", 9.0),
            ]
        )
        nd_map = {"euclid-close": 5.0, "network-close": 2.5, "far": 9.5}
        result = incremental_euclidean_restriction(
            stream, lambda c: nd_map[c.payload], 2
        )
        assert [r.payload for r in result] == ["network-close", "euclid-close"]


class TestIne:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_matches_brute_force(self, seed, k):
        network, origin, pois = build_scene(seed)
        result = incremental_network_expansion(network, origin, pois, k)
        expected = brute_force_network_knn(network, origin, pois, k)
        assert [r.network_distance for r in result] == pytest.approx(
            [d for d, _ in expected]
        )

    def test_matches_ier(self):
        network, origin, pois = build_scene(3)

        def nd_of(candidate):
            _, loc = candidate.payload
            return network_distance(network, origin, loc)

        ine = incremental_network_expansion(network, origin, pois, 4)
        ier = incremental_euclidean_restriction(
            euclidean_stream(origin, pois), nd_of, 4
        )
        assert [r.network_distance for r in ine] == pytest.approx(
            [r.network_distance for r in ier]
        )

    def test_k_zero(self):
        network, origin, pois = build_scene(0, poi_count=3)
        assert incremental_network_expansion(network, origin, pois, 0) == []

    def test_no_pois(self):
        network, origin, _ = build_scene(0, poi_count=1)
        assert incremental_network_expansion(network, origin, [], 3) == []

    def test_k_negative_raises(self):
        network, origin, pois = build_scene(0, poi_count=3)
        with pytest.raises(ValueError):
            incremental_network_expansion(network, origin, pois, -1)

    def test_poi_on_same_edge(self):
        network, origin, _ = build_scene(1, poi_count=1)
        same_edge_poi = network.location_at(origin.edge, origin.edge.length * 0.9)
        result = incremental_network_expansion(
            network, origin, [(same_edge_poi, "here")], 1
        )
        assert result[0].payload == "here"
        assert result[0].network_distance == pytest.approx(
            abs(origin.offset - same_edge_poi.offset)
        )

    def test_results_sorted(self):
        network, origin, pois = build_scene(4)
        result = incremental_network_expansion(network, origin, pois, 8)
        distances = [r.network_distance for r in result]
        assert distances == sorted(distances)

    def test_euclidean_reported(self):
        network, origin, pois = build_scene(5)
        for r in incremental_network_expansion(network, origin, pois, 5):
            assert r.euclidean_distance <= r.network_distance + 1e-9
