"""Round-trip tests for the persistence package."""

import json

import pytest

from repro.experiments.runner import FigureResult
from repro.geometry.point import Point
from repro.io import (
    figure_from_dict,
    figure_to_csv_rows,
    figure_to_dict,
    load_figure,
    load_network,
    load_pois,
    network_from_dict,
    network_to_dict,
    pois_from_dict,
    pois_to_dict,
    save_figure,
    save_network,
    save_pois,
    write_figure_csv,
)
from repro.network.dijkstra import shortest_path_lengths
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.graph import RoadClass, SpatialNetwork


def sample_network():
    return generate_road_network(
        RoadNetworkSpec(width=2.0, height=2.0, secondary_spacing=0.5, seed=3)
    )


class TestNetworkIo:
    def test_round_trip_structure(self):
        original = sample_network()
        restored = network_from_dict(network_to_dict(original))
        assert restored.node_count == original.node_count
        assert restored.edge_count == original.edge_count
        assert restored.total_length() == pytest.approx(original.total_length())

    def test_round_trip_road_classes(self):
        original = sample_network()
        restored = network_from_dict(network_to_dict(original))
        count_by_class = {}
        for edge in original.edges():
            count_by_class[edge.road_class] = count_by_class.get(edge.road_class, 0) + 1
        restored_counts = {}
        for edge in restored.edges():
            restored_counts[edge.road_class] = restored_counts.get(edge.road_class, 0) + 1
        assert count_by_class == restored_counts

    def test_round_trip_preserves_distances(self):
        original = sample_network()
        restored = network_from_dict(network_to_dict(original))
        source_o = min(original.node_ids())
        source_r = min(restored.node_ids())
        d_o = sorted(shortest_path_lengths(original, [(source_o, 0.0)]).values())
        d_r = sorted(shortest_path_lengths(restored, [(source_r, 0.0)]).values())
        assert d_o == pytest.approx(d_r)

    def test_curved_edge_length_preserved(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        net.add_edge(a, b, RoadClass.RURAL_ROAD, length=2.5)
        restored = network_from_dict(network_to_dict(net))
        edge = next(restored.edges())
        assert edge.length == 2.5
        assert edge.road_class is RoadClass.RURAL_ROAD

    def test_file_round_trip(self, tmp_path):
        original = sample_network()
        path = tmp_path / "network.json"
        save_network(original, path)
        restored = load_network(path)
        assert restored.edge_count == original.edge_count

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            network_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        data = network_to_dict(sample_network())
        data["version"] = 999
        with pytest.raises(ValueError):
            network_from_dict(data)


class TestPoiIo:
    def test_round_trip(self):
        pois = [(Point(1.5, 2.5), "a"), (Point(3.0, 4.0), {"name": "b"})]
        restored = pois_from_dict(pois_to_dict(pois))
        assert restored == pois

    def test_file_round_trip(self, tmp_path):
        pois = [(Point(0, 0), "x")]
        path = tmp_path / "pois.json"
        save_pois(pois, path)
        assert load_pois(path) == pois

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            pois_from_dict({"format": "nope"})


class TestFigureIo:
    def sample_figure(self):
        result = FigureResult("fig9", "title", "Tx (m)", [50.0, 100.0], notes="n")
        result.series["LA"] = {"server": [60.0, 40.0], "single_peer": [40.0, 60.0]}
        result.series["RV"] = {"server": [80.0, 70.0], "single_peer": [20.0, 30.0]}
        return result

    def test_round_trip(self):
        original = self.sample_figure()
        restored = figure_from_dict(figure_to_dict(original))
        assert restored.figure_id == original.figure_id
        assert restored.xs == original.xs
        assert restored.series == original.series
        assert restored.notes == original.notes

    def test_json_serializable(self):
        text = json.dumps(figure_to_dict(self.sample_figure()))
        assert "fig9" in text

    def test_file_round_trip(self, tmp_path):
        original = self.sample_figure()
        path = tmp_path / "fig.json"
        save_figure(original, path)
        restored = load_figure(path)
        assert restored.series == original.series

    def test_csv_rows(self):
        rows = figure_to_csv_rows(self.sample_figure())
        assert len(rows) == 8  # 2 regions x 2 series x 2 xs
        assert ("fig9", "LA", "server", 50.0, 60.0) in rows

    def test_csv_file(self, tmp_path):
        path = tmp_path / "fig.csv"
        write_figure_csv(self.sample_figure(), path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "figure,region,series,x,value"
        assert len(lines) == 9

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            figure_from_dict({"format": "nope"})
