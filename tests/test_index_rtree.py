"""Structural and behavioral tests for repro.index.rtree."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.node import ChildEntry, LeafEntry
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree, RTreeConfig, SplitPolicy

coord = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)
point_strategy = st.builds(Point, coord, coord)


def make_points(n, seed=7, extent=100.0):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, extent, n)
    ys = rng.uniform(0, extent, n)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def check_invariants(tree: RTree) -> int:
    """Validate MBR containment, levels and fill factors; return leaf count."""
    config = tree.config
    leaf_count = 0
    stack = [(tree.root, None)]
    while stack:
        node, expected_bbox = stack.pop()
        if node is not tree.root:
            assert config.min_entries <= len(node.entries) <= config.max_entries
        else:
            assert len(node.entries) <= config.max_entries
        if expected_bbox is not None and node.entries:
            assert expected_bbox.contains_box(node.compute_bbox())
        if node.is_leaf:
            leaf_count += len(node.entries)
            assert all(isinstance(e, LeafEntry) for e in node.entries)
        else:
            for entry in node.entries:
                assert isinstance(entry, ChildEntry)
                assert entry.child.level == node.level - 1
                assert entry.bbox.contains_box(entry.child.compute_bbox())
                stack.append((entry.child, entry.bbox))
    return leaf_count


class TestConfig:
    def test_defaults_match_paper(self):
        config = RTreeConfig()
        assert config.max_entries == 30
        assert config.split_policy is SplitPolicy.RSTAR

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            RTreeConfig(max_entries=3)

    def test_invalid_min_fill(self):
        with pytest.raises(ValueError):
            RTreeConfig(min_fill=0.8)

    def test_invalid_reinsert_fraction(self):
        with pytest.raises(ValueError):
            RTreeConfig(reinsert_fraction=1.5)

    def test_min_entries_at_least_two(self):
        assert RTreeConfig(max_entries=4, min_fill=0.1).min_entries == 2


class TestInsertion:
    @pytest.mark.parametrize("policy", [SplitPolicy.QUADRATIC, SplitPolicy.RSTAR])
    def test_invariants_after_many_inserts(self, policy):
        tree = RTree(RTreeConfig(max_entries=8, split_policy=policy))
        points = make_points(500)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        assert len(tree) == 500
        assert check_invariants(tree) == 500

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search(BoundingBox(0, 0, 1, 1)) == []

    def test_height_grows(self):
        tree = RTree(RTreeConfig(max_entries=4))
        for p in make_points(200):
            tree.insert(p)
        assert tree.height >= 3

    def test_duplicate_points_allowed(self):
        tree = RTree(RTreeConfig(max_entries=4))
        for i in range(50):
            tree.insert(Point(1.0, 1.0), payload=i)
        assert len(tree) == 50
        found = tree.range_search(BoundingBox(0, 0, 2, 2))
        assert len(found) == 50

    def test_rstar_reinserts_happen(self):
        tree = RTree(RTreeConfig(max_entries=6, split_policy=SplitPolicy.RSTAR))
        for p in make_points(300):
            tree.insert(p)
        assert tree.reinsert_count > 0

    def test_all_payloads_preserved(self):
        tree = RTree(RTreeConfig(max_entries=5))
        points = make_points(120)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        payloads = sorted(entry.payload for entry in tree.iter_entries())
        assert payloads == list(range(120))


class TestBulkLoad:
    def test_bulk_load_small(self):
        points = make_points(10)
        tree = RTree.bulk_load([(p, i) for i, p in enumerate(points)])
        assert len(tree) == 10
        assert tree.height == 1

    def test_bulk_load_large_invariant_leafcount(self):
        points = make_points(2000)
        tree = RTree.bulk_load(
            [(p, i) for i, p in enumerate(points)],
            RTreeConfig(max_entries=16),
        )
        assert len(tree) == 2000
        # Bulk-loaded trees may have underfull nodes; only check coverage.
        assert sorted(e.payload for e in tree.iter_entries()) == list(range(2000))
        assert tree.height >= 2

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_bbox_containment(self):
        points = make_points(800)
        tree = RTree.bulk_load([(p, None) for p in points], RTreeConfig(max_entries=10))
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                for entry in node.entries:
                    assert entry.bbox.contains_box(entry.child.compute_bbox())
                    stack.append(entry.child)


class TestRangeSearch:
    def test_matches_brute_force(self):
        points = make_points(400)
        tree = RTree(RTreeConfig(max_entries=10))
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        window = BoundingBox(20, 20, 60, 70)
        expected = sorted(i for i, p in enumerate(points) if window.contains_point(p))
        found = sorted(e.payload for e in tree.range_search(window))
        assert found == expected

    def test_circle_search_matches_brute_force(self):
        points = make_points(400, seed=3)
        tree = RTree(RTreeConfig(max_entries=10))
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        center, radius = Point(50, 50), 18.0
        expected = sorted(
            i for i, p in enumerate(points) if center.distance_to(p) <= radius
        )
        found = sorted(e.payload for e in tree.circle_search(center, radius))
        assert found == expected

    def test_circle_search_negative_radius_raises(self):
        with pytest.raises(ValueError):
            RTree().circle_search(Point(0, 0), -1.0)

    def test_counter_records_accesses(self):
        points = make_points(300)
        tree = RTree(RTreeConfig(max_entries=8))
        for p in points:
            tree.insert(p)
        counter = PageAccessCounter()
        counter.start_query()
        tree.range_search(BoundingBox(0, 0, 100, 100), counter)
        breakdown = counter.finish_query()
        assert breakdown.total == tree.node_count()

    def test_selective_search_touches_fewer_pages(self):
        points = make_points(1000)
        tree = RTree(RTreeConfig(max_entries=8))
        for p in points:
            tree.insert(p)
        counter = PageAccessCounter()
        counter.start_query()
        tree.range_search(BoundingBox(0, 0, 5, 5), counter)
        small = counter.finish_query().total
        counter.start_query()
        tree.range_search(BoundingBox(0, 0, 100, 100), counter)
        big = counter.finish_query().total
        assert small < big


class TestPropertyBased:
    @given(st.lists(point_strategy, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_insert_then_range_equals_brute_force(self, points):
        tree = RTree(RTreeConfig(max_entries=6))
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        window = BoundingBox(-250, -250, 250, 250)
        expected = sorted(i for i, p in enumerate(points) if window.contains_point(p))
        found = sorted(e.payload for e in tree.range_search(window))
        assert found == expected

    @given(st.lists(point_strategy, max_size=120), st.sampled_from(list(SplitPolicy)))
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_for_any_input(self, points, policy):
        tree = RTree(RTreeConfig(max_entries=5, split_policy=policy))
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        assert check_invariants(tree) == len(points)
