"""Tests for repro.network.loaders: TIGER/OSM parsing, the committed
extract, and the deterministic downsampler.

Malformed-input tests assert on the *precise* error text (file, line,
field) because those messages are the loader's user interface: a
truncated download must be diagnosable from the exception alone.
"""

import gzip
import math
import random

import pytest

from repro.geometry.point import Point
from repro.network.dijkstra import network_distance
from repro.network.graph import RoadClass, SpatialNetwork
from repro.network.index import DijkstraIndex, HierarchicalIndex
from repro.network.loaders import (
    LOS_ANGELES,
    MILES_PER_DEGREE,
    RIVERSIDE,
    RegionFrame,
    bundled_extract_paths,
    downsample,
    load_bundled_extract,
    load_osm_xml,
    load_tiger,
    write_tiger,
)
from repro.testing import oracles

SAMPLE_OSM = bundled_extract_paths()[0].replace(
    "la_extract_5k.cnode.gz", "sample.osm"
)


def small_network() -> SpatialNetwork:
    network = SpatialNetwork()
    a = network.add_node(Point(0.0, 0.0))
    b = network.add_node(Point(1.0, 0.0))
    c = network.add_node(Point(1.0, 1.0))
    network.add_edge(a, b, RoadClass.PRIMARY_HIGHWAY)
    network.add_edge(b, c, RoadClass.RURAL_ROAD, length=1.5)
    return network


# ----------------------------------------------------------------------
# region frames
# ----------------------------------------------------------------------


class TestRegionFrame:
    def test_anchor_projects_to_origin(self):
        for frame in (LOS_ANGELES, RIVERSIDE):
            origin = frame.project(frame.anchor_lon, frame.anchor_lat)
            assert origin.x == pytest.approx(0.0)
            assert origin.y == pytest.approx(0.0)

    def test_one_degree_north_is_69_miles(self):
        point = LOS_ANGELES.project(
            LOS_ANGELES.anchor_lon, LOS_ANGELES.anchor_lat + 1.0
        )
        assert point.y == pytest.approx(MILES_PER_DEGREE)

    def test_longitude_shrinks_with_latitude(self):
        east = LOS_ANGELES.project(
            LOS_ANGELES.anchor_lon + 1.0, LOS_ANGELES.anchor_lat
        )
        assert east.x < MILES_PER_DEGREE
        assert east.x == pytest.approx(
            MILES_PER_DEGREE * math.cos(math.radians(34.02))
        )


# ----------------------------------------------------------------------
# TIGER round trip
# ----------------------------------------------------------------------


class TestTigerRoundTrip:
    def test_plain_round_trip(self, tmp_path):
        network = small_network()
        nodes, edges = tmp_path / "g.cnode", tmp_path / "g.cedge"
        write_tiger(network, nodes, edges)
        reloaded = load_tiger(nodes, edges)
        assert reloaded.node_count == network.node_count
        assert reloaded.edge_count == network.edge_count
        for edge in network.edges():
            twin = reloaded.edge_between(edge.u, edge.v)
            assert twin is not None
            assert twin.length == edge.length  # repro: noqa(RPR001)
            assert twin.road_class is edge.road_class

    def test_gzip_round_trip_and_byte_determinism(self, tmp_path):
        network = small_network()
        first_n, first_e = tmp_path / "a.cnode.gz", tmp_path / "a.cedge.gz"
        second_n, second_e = tmp_path / "b.cnode.gz", tmp_path / "b.cedge.gz"
        write_tiger(network, first_n, first_e)
        write_tiger(network, second_n, second_e)
        assert first_n.read_bytes() == second_n.read_bytes()
        assert first_e.read_bytes() == second_e.read_bytes()
        reloaded = load_tiger(first_n, first_e)
        assert reloaded.node_count == 3
        assert reloaded.edge_count == 2

    def test_scale_applies_to_coordinates_and_lengths(self, tmp_path):
        network = small_network()
        nodes, edges = tmp_path / "g.cnode", tmp_path / "g.cedge"
        write_tiger(network, nodes, edges)
        doubled = load_tiger(nodes, edges, scale=2.0)
        assert doubled.node_position(1).x == pytest.approx(2.0)
        assert doubled.total_length() == pytest.approx(
            2.0 * network.total_length()
        )

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        nodes = tmp_path / "g.cnode"
        edges = tmp_path / "g.cedge"
        nodes.write_text("# header\n\n0 0.0 0.0\n1 1.0 0.0\n")
        edges.write_text("# header\n\n0 0 1 1.0\n")
        network = load_tiger(nodes, edges)
        assert network.node_count == 2
        assert network.edge_count == 1


class TestTigerErrors:
    def _files(self, tmp_path, node_text, edge_text="0 0 1 1.0\n"):
        nodes = tmp_path / "bad.cnode"
        edges = tmp_path / "bad.cedge"
        nodes.write_text(node_text)
        edges.write_text(edge_text)
        return nodes, edges

    def test_truncated_node_line(self, tmp_path):
        nodes, edges = self._files(tmp_path, "0 0.0 0.0\n1 1.0\n")
        with pytest.raises(ValueError, match=r"bad\.cnode:2: expected 3 fields"):
            load_tiger(nodes, edges)

    def test_non_numeric_node(self, tmp_path):
        nodes, edges = self._files(tmp_path, "0 zero 0.0\n")
        with pytest.raises(ValueError, match=r"bad\.cnode:1: non-numeric"):
            load_tiger(nodes, edges)

    def test_duplicate_node_id(self, tmp_path):
        nodes, edges = self._files(tmp_path, "0 0.0 0.0\n0 1.0 0.0\n")
        with pytest.raises(
            ValueError, match=r"bad\.cnode:2: duplicate node id 0"
        ):
            load_tiger(nodes, edges)

    def test_truncated_edge_line(self, tmp_path):
        nodes, edges = self._files(
            tmp_path, "0 0.0 0.0\n1 1.0 0.0\n", "0 0 1\n"
        )
        with pytest.raises(
            ValueError, match=r"bad\.cedge:1: expected 4 or 5 fields"
        ):
            load_tiger(nodes, edges)

    def test_unknown_node_reference(self, tmp_path):
        nodes, edges = self._files(
            tmp_path, "0 0.0 0.0\n1 1.0 0.0\n", "0 0 9 1.0\n"
        )
        with pytest.raises(
            ValueError, match=r"bad\.cedge:1: edge references unknown node id 9"
        ):
            load_tiger(nodes, edges)

    def test_self_loop(self, tmp_path):
        nodes, edges = self._files(
            tmp_path, "0 0.0 0.0\n1 1.0 0.0\n", "0 0 0 1.0\n"
        )
        with pytest.raises(ValueError, match=r"bad\.cedge:1: self-loop"):
            load_tiger(nodes, edges)

    def test_unknown_cfcc_class(self, tmp_path):
        nodes, edges = self._files(
            tmp_path, "0 0.0 0.0\n1 1.0 0.0\n", "0 0 1 1.0 Z9\n"
        )
        with pytest.raises(
            ValueError, match=r"bad\.cedge:1: unknown CFCC class 'Z9'"
        ):
            load_tiger(nodes, edges)

    def test_sub_euclidean_length_carries_line_context(self, tmp_path):
        nodes, edges = self._files(
            tmp_path, "0 0.0 0.0\n1 1.0 0.0\n", "0 0 1 0.5\n"
        )
        with pytest.raises(
            ValueError, match=r"bad\.cedge:1: .*Euclidean"
        ):
            load_tiger(nodes, edges)


# ----------------------------------------------------------------------
# OSM XML
# ----------------------------------------------------------------------


class TestOsmXml:
    def test_sample_fixture_parses(self):
        network = load_osm_xml(SAMPLE_OSM, frame=LOS_ANGELES)
        # 8 road nodes (the building-only way and its 2 nodes are
        # dropped), 8 segments across the four highway-tagged ways.
        assert network.node_count == 8
        assert network.edge_count == 8
        classes = {edge.road_class for edge in network.edges()}
        assert classes == {
            RoadClass.PRIMARY_HIGHWAY,
            RoadClass.SECONDARY_ROAD,
            RoadClass.RURAL_ROAD,
        }
        assert network.is_connected()

    def test_keep_untagged_ways(self):
        network = load_osm_xml(
            SAMPLE_OSM, frame=LOS_ANGELES, keep_untagged_ways=True
        )
        assert network.node_count == 10
        assert network.edge_count == 9

    def test_auto_frame_anchors_at_mean(self):
        auto = load_osm_xml(SAMPLE_OSM)
        anchored = load_osm_xml(SAMPLE_OSM, frame=LOS_ANGELES)
        assert auto.node_count == anchored.node_count
        # Same chords, different anchor: total length agrees closely.
        assert auto.total_length() == pytest.approx(
            anchored.total_length(), rel=1e-4
        )

    def test_pbf_suffix_rejected(self, tmp_path):
        path = tmp_path / "extract.osm.pbf"
        path.write_bytes(b"\x00\x00\x00\x0dmockpbf")
        with pytest.raises(ValueError, match="PBF extracts are not supported"):
            load_osm_xml(path)

    def test_pbf_magic_rejected_despite_suffix(self, tmp_path):
        path = tmp_path / "extract.osm"
        path.write_bytes(b"\x00\x00\x00\x0dmockpbf")
        with pytest.raises(ValueError, match="osmium cat"):
            load_osm_xml(path)

    def test_malformed_xml(self, tmp_path):
        path = tmp_path / "broken.osm"
        path.write_text("<osm><node id='1' lon='0' lat='0'/>")
        with pytest.raises(ValueError, match="not well-formed OSM XML"):
            load_osm_xml(path)

    def test_wrong_root_element(self, tmp_path):
        path = tmp_path / "wrong.osm"
        path.write_text("<gpx></gpx>")
        with pytest.raises(ValueError, match="root element is <gpx>"):
            load_osm_xml(path)

    def test_truncated_extract_names_missing_node(self, tmp_path):
        path = tmp_path / "truncated.osm"
        path.write_text(
            "<osm>"
            "<node id='1' lon='-118.41' lat='34.02'/>"
            "<way id='7'><nd ref='1'/><nd ref='2'/>"
            "<tag k='highway' v='primary'/></way>"
            "</osm>"
        )
        with pytest.raises(
            ValueError,
            match=r"way 7 references node 2 absent.*truncated file\?",
        ):
            load_osm_xml(path)

    def test_non_numeric_node_attributes(self, tmp_path):
        path = tmp_path / "nan.osm"
        path.write_text("<osm><node id='1' lon='west' lat='34'/></osm>")
        with pytest.raises(
            ValueError, match="missing or non-numeric id/lon/lat"
        ):
            load_osm_xml(path)

    def test_gzipped_osm(self, tmp_path):
        gz_path = tmp_path / "sample.osm.gz"
        with open(SAMPLE_OSM, "rb") as src:
            gz_path.write_bytes(gzip.compress(src.read()))
        network = load_osm_xml(gz_path, frame=LOS_ANGELES)
        assert network.node_count == 8


# ----------------------------------------------------------------------
# downsampler + committed extract
# ----------------------------------------------------------------------


class TestDownsample:
    def test_connected_and_sized(self):
        full = load_osm_xml(SAMPLE_OSM, frame=LOS_ANGELES)
        extract = downsample(full, target_nodes=5, seed=3)
        assert extract.node_count == 5
        assert extract.is_connected()

    def test_byte_deterministic(self, tmp_path):
        full = load_osm_xml(SAMPLE_OSM, frame=LOS_ANGELES)
        for run in ("a", "b"):
            write_tiger(
                downsample(full, target_nodes=6, seed=9),
                tmp_path / f"{run}.cnode.gz",
                tmp_path / f"{run}.cedge.gz",
            )
        assert (tmp_path / "a.cnode.gz").read_bytes() == (
            tmp_path / "b.cnode.gz"
        ).read_bytes()
        assert (tmp_path / "a.cedge.gz").read_bytes() == (
            tmp_path / "b.cedge.gz"
        ).read_bytes()

    def test_seed_varies_start(self):
        full = load_osm_xml(SAMPLE_OSM, frame=LOS_ANGELES)
        picks = {
            tuple(
                sorted(
                    (
                        downsample(full, 3, seed=s).node_position(i).x,
                        downsample(full, 3, seed=s).node_position(i).y,
                    )
                    for i in range(3)
                )
            )
            for s in range(4)
        }
        assert len(picks) > 1

    def test_target_larger_than_graph(self):
        full = load_osm_xml(SAMPLE_OSM, frame=LOS_ANGELES)
        extract = downsample(full, target_nodes=10_000, seed=0)
        assert extract.node_count == full.node_count

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="target_nodes must be positive"):
            downsample(SpatialNetwork(), 0)


class TestBundledExtract:
    def test_loads_and_is_connected(self):
        network = load_bundled_extract()
        assert network.node_count == 5000
        assert network.edge_count == 8927
        assert network.is_connected()

    def test_hierarchy_matches_oracle_on_extract(self):
        """End-to-end: the committed extract + hierarchy vs the oracle."""
        network = load_bundled_extract()
        rng = random.Random(1234)
        edges = list(network.edges())
        pois = []
        for i in range(40):
            edge = rng.choice(edges)
            pois.append(
                (
                    network.location_at(edge, rng.uniform(0.0, edge.length)),
                    f"poi-{i}",
                )
            )
        hierarchy = HierarchicalIndex(network, leaf_size=64)
        reference = DijkstraIndex(network)
        hierarchy.register_pois(pois)
        reference.register_pois(pois)
        adjacency = {
            node: [
                (other, edge.length)
                for other, edge in network.neighbors(node)
            ]
            for node in network.node_ids()
        }
        flat = [
            (("edge", loc.edge.u, loc.edge.v, loc.offset, loc.edge.length), p)
            for loc, p in pois
        ]
        origin_edge = rng.choice(edges)
        origin = network.location_at(origin_edge, origin_edge.length / 2)
        expected = oracles.oracle_network_knn(
            adjacency,
            ("edge", origin.edge.u, origin.edge.v, origin.offset,
             origin.edge.length),
            flat,
            8,
        )
        got = [
            (n.payload, n.network_distance)
            for n in hierarchy.knn(origin, 8)
        ]
        ref = [
            (n.payload, n.network_distance)
            for n in reference.knn(origin, 8)
        ]
        assert got == expected  # repro: noqa(RPR001)
        assert got == ref  # repro: noqa(RPR001)
        # A sparse 40-POI set forces wide refinement, so the reduction
        # here is modest; the >= 10x gate on the bench's dense POI set
        # lives in validate_baseline.
        assert (
            hierarchy.stats.settled_vertices
            < reference.stats.settled_vertices / 2
        )

    def test_spot_distance_matches_direct_dijkstra(self):
        network = load_bundled_extract()
        edges = list(network.edges())
        hierarchy = HierarchicalIndex(network, leaf_size=64)
        rng = random.Random(99)
        for _ in range(3):
            ea, eb = rng.sample(edges, 2)
            a = network.location_at(ea, ea.length * 0.5)
            b = network.location_at(eb, eb.length * 0.25)
            assert hierarchy.network_distance(a, b) == network_distance(  # repro: noqa(RPR001)
                network, a, b
            )
