"""Unit and property tests for repro.geometry.circle."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point

coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
radius = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
circles = st.builds(Circle, st.builds(Point, coord, coord), radius)


class TestCircleBasics:
    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_contains_point(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.contains_point(Point(1, 1))
        assert c.contains_point(Point(2, 0))
        assert not c.contains_point(Point(2.1, 0))

    def test_strict_containment_excludes_boundary(self):
        c = Circle(Point(0, 0), 2.0)
        assert not c.strictly_contains_point(Point(2, 0))
        assert c.strictly_contains_point(Point(1, 0))

    def test_area(self):
        assert Circle(Point(0, 0), 1.0).area == pytest.approx(math.pi)

    def test_bounding_box(self):
        box = Circle(Point(1, 2), 3.0).bounding_box()
        assert box.min_x == -2 and box.max_x == 4
        assert box.min_y == -1 and box.max_y == 5

    def test_point_at_angle(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.point_at_angle(0.0).x == pytest.approx(2.0)
        p = c.point_at_angle(math.pi / 2)
        assert p.y == pytest.approx(2.0)
        assert p.x == pytest.approx(0.0, abs=1e-12)

    def test_through_point(self):
        c = Circle.through_point(Point(0, 0), Point(3, 4))
        assert c.radius == pytest.approx(5.0)


class TestContainsCircle:
    def test_nested(self):
        outer = Circle(Point(0, 0), 5.0)
        inner = Circle(Point(1, 0), 2.0)
        assert outer.contains_circle(inner)
        assert not inner.contains_circle(outer)

    def test_internal_tangency_counts(self):
        outer = Circle(Point(0, 0), 5.0)
        inner = Circle(Point(3, 0), 2.0)
        assert outer.contains_circle(inner)

    def test_overlap_not_contained(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(3, 0), 2.0)
        assert not a.contains_circle(b)

    def test_lemma_3_2_form(self):
        """contains_circle expresses Dist(Q,n_i) + delta <= Dist(P,n_k)."""
        p = Point(0, 0)  # peer query location
        q = Point(1, 0)  # querier
        certain = Circle(p, 4.0)  # Dist(P, n_k) = 4
        candidate_dist = 2.5  # Dist(Q, n_i)
        delta = p.distance_to(q)
        target = Circle(q, candidate_dist)
        assert (candidate_dist + delta <= 4.0) == certain.contains_circle(target)


class TestIntersections:
    def test_two_point_intersection(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(2, 0), 2.0)
        pts = a.boundary_intersections(b)
        assert len(pts) == 2
        for p in pts:
            assert a.center.distance_to(p) == pytest.approx(2.0)
            assert b.center.distance_to(p) == pytest.approx(2.0)

    def test_tangent_single_point(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(2, 0), 1.0)
        pts = a.boundary_intersections(b)
        assert len(pts) == 1
        assert pts[0].x == pytest.approx(1.0)

    def test_disjoint_no_intersection(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(5, 0), 1.0)
        assert a.boundary_intersections(b) == []

    def test_nested_no_intersection(self):
        a = Circle(Point(0, 0), 5.0)
        b = Circle(Point(0.5, 0), 1.0)
        assert a.boundary_intersections(b) == []

    def test_coincident_returns_empty(self):
        a = Circle(Point(0, 0), 1.0)
        assert a.boundary_intersections(a) == []

    @given(circles, circles)
    def test_intersections_lie_on_both_boundaries(self, a, b):
        for p in a.boundary_intersections(b):
            assert a.center.distance_to(p) == pytest.approx(a.radius, rel=1e-6, abs=1e-6)
            assert b.center.distance_to(p) == pytest.approx(b.radius, rel=1e-6, abs=1e-6)


class TestArcCoverage:
    def test_full_coverage(self):
        small = Circle(Point(0, 0), 1.0)
        big = Circle(Point(0.5, 0), 5.0)
        cov = small.boundary_arc_covered_by(big)
        assert cov.full and not cov.empty

    def test_no_coverage_disjoint(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(10, 0), 1.0)
        cov = a.boundary_arc_covered_by(b)
        assert cov.empty and not cov.full

    def test_no_coverage_inner(self):
        a = Circle(Point(0, 0), 5.0)
        b = Circle(Point(0, 0), 1.0)
        cov = a.boundary_arc_covered_by(b)
        assert cov.empty

    def test_partial_coverage_symmetric(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(2, 0), 2.0)
        cov = a.boundary_arc_covered_by(b)
        assert not cov.full and not cov.empty
        assert cov.center == pytest.approx(0.0)
        # Intersection points at angle +-pi/3 on circle a.
        assert cov.half_width == pytest.approx(math.pi / 3)

    @given(circles, circles, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_arc_membership_matches_pointwise(self, a, b, theta):
        """A boundary point is in the covered arc iff it is in the disk."""
        cov = a.boundary_arc_covered_by(b)
        point = a.point_at_angle(theta)
        in_disk = b.contains_point(point)
        if cov.full:
            assert in_disk or a.center.distance_to(point) == pytest.approx(a.radius)
        elif cov.empty:
            # Allow boundary-grazing numerical slack.
            assert not b.strictly_contains_point(point, tolerance=1e-7)
        else:
            delta = abs(_angdiff(theta, cov.center))
            if delta < cov.half_width - 1e-6:
                assert b.contains_point(point, tolerance=1e-6)
            elif delta > cov.half_width + 1e-6:
                assert not b.contains_point(point, tolerance=-1e-6)


class TestOverlapArea:
    def test_disjoint_zero(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(3, 0), 1.0)
        assert a.overlap_area(b) == 0.0

    def test_nested_is_smaller_area(self):
        a = Circle(Point(0, 0), 3.0)
        b = Circle(Point(0.5, 0), 1.0)
        assert a.overlap_area(b) == pytest.approx(b.area)

    def test_identical_is_full_area(self):
        a = Circle(Point(0, 0), 2.0)
        assert a.overlap_area(a) == pytest.approx(a.area)

    def test_half_offset_known_value(self):
        # Two unit circles, centers distance 1 apart: lens area formula.
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(1, 0), 1.0)
        expected = 2.0 * math.acos(0.5) - math.sin(2.0 * math.acos(0.5))
        assert a.overlap_area(b) == pytest.approx(expected)

    @given(circles, circles)
    def test_overlap_bounded_by_smaller_disk(self, a, b):
        overlap = a.overlap_area(b)
        assert -1e-9 <= overlap <= min(a.area, b.area) + 1e-6

    @given(circles, circles)
    def test_overlap_symmetric(self, a, b):
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a), rel=1e-6, abs=1e-9)


def _angdiff(a: float, b: float) -> float:
    """Signed smallest angular difference."""
    d = a - b
    while d > math.pi:
        d -= 2 * math.pi
    while d < -math.pi:
        d += 2 * math.pi
    return d
