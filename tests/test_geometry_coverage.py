"""Unit and property tests for repro.geometry.coverage.

The central invariant tested here is *soundness*: whenever a coverage
backend answers True, dense sampling of the target disk must not find an
uncovered point.  Soundness is what guarantees the paper's "certain"
nearest neighbors are never wrong.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.coverage import (
    CertainRegion,
    CoverageMethod,
    disk_covered_by_disks,
    disk_covered_by_polygons,
    polygon_covered_by_polygons,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

coord = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
radius = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
circle_strategy = st.builds(Circle, st.builds(Point, coord, coord), radius)


def sample_disk(target: Circle, rings: int = 12, spokes: int = 24):
    """Deterministic dense sample of a disk (center, rings of points)."""
    yield target.center
    for ring in range(1, rings + 1):
        r = target.radius * ring / rings
        for spoke in range(spokes):
            theta = 2.0 * math.pi * spoke / spokes
            yield Point(
                target.center.x + r * math.cos(theta),
                target.center.y + r * math.sin(theta),
            )


class TestDiskCoveredByDisks:
    def test_empty_cover_is_uncovered(self):
        assert not disk_covered_by_disks(Circle(Point(0, 0), 1.0), [])

    def test_single_containing_disk(self):
        target = Circle(Point(0, 0), 1.0)
        assert disk_covered_by_disks(target, [Circle(Point(0.5, 0), 3.0)])

    def test_single_overlapping_disk_insufficient(self):
        target = Circle(Point(0, 0), 2.0)
        assert not disk_covered_by_disks(target, [Circle(Point(2, 0), 2.0)])

    def test_two_half_disks_cover(self):
        """Two disks, one left one right, jointly covering the target.

        Neither contains the whole target disk alone (1 + 1 > 1.8), but
        each covers an arc of half-width acos((1 + 1 - 1.8^2)/2) ~ 128
        degrees, so together they cover the boundary and the interior.
        """
        target = Circle(Point(0, 0), 1.0)
        cover = [Circle(Point(-1.0, 0), 1.8), Circle(Point(1.0, 0), 1.8)]
        assert not any(c.contains_circle(target) for c in cover)
        assert disk_covered_by_disks(target, cover)

    def test_three_disks_with_center_hole(self):
        """Ring of three disks covering the boundary but not the center.

        Centers at distance 1.2 with radius 1.15: each covers an arc of
        half-width ~62 degrees (> 60, so the boundary is covered) while the
        center of the target stays uncovered (1.2 > 1.15).
        """
        target = Circle(Point(0, 0), 1.0)
        cover = [
            Circle(Point(1.2 * math.cos(a), 1.2 * math.sin(a)), 1.15)
            for a in (0.0, 2.0 * math.pi / 3.0, 4.0 * math.pi / 3.0)
        ]
        assert not any(c.contains_point(Point(0, 0)) for c in cover)
        assert not disk_covered_by_disks(target, cover)

    def test_three_disks_plus_center_cover(self):
        target = Circle(Point(0, 0), 1.0)
        cover = [
            Circle(Point(1.2 * math.cos(a), 1.2 * math.sin(a)), 1.15)
            for a in (0.0, 2.0 * math.pi / 3.0, 4.0 * math.pi / 3.0)
        ]
        cover.append(Circle(Point(0, 0), 0.7))
        assert disk_covered_by_disks(target, cover)

    def test_point_target(self):
        target = Circle(Point(0.5, 0.5), 0.0)
        assert disk_covered_by_disks(target, [Circle(Point(0, 0), 1.0)])
        assert not disk_covered_by_disks(target, [Circle(Point(5, 5), 1.0)])

    def test_boundary_gap_detected(self):
        """Cover that misses a sliver of the boundary."""
        target = Circle(Point(0, 0), 1.0)
        # One disk covering almost everything but leaving the far-right
        # boundary outside.
        cover = [Circle(Point(-0.2, 0), 1.1)]
        assert not disk_covered_by_disks(target, cover)

    def test_paper_figure7_multi_peer_scenario(self):
        """Reconstruction of the paper's Fig. 7: a candidate verifiable only
        by merging two peers' certain circles."""
        q = Point(0.0, 0.0)
        p3 = Point(-1.2, 0.0)
        p4 = Point(1.2, 0.0)
        certain_p3 = Circle(p3, 2.0)
        certain_p4 = Circle(p4, 2.0)
        candidate = Point(0.0, 1.0)
        target = Circle.through_point(q, candidate)
        # Neither single peer verifies it (Lemma 3.2 fails for both)...
        assert not certain_p3.contains_circle(target)
        assert not certain_p4.contains_circle(target)
        # ...but the merged certain region does (Lemma 3.8).
        assert disk_covered_by_disks(target, [certain_p3, certain_p4])

    @given(circle_strategy, st.lists(circle_strategy, max_size=5))
    @settings(max_examples=150, deadline=None)
    def test_soundness_against_sampling(self, target, cover):
        """If the exact test says covered, no sampled point is uncovered."""
        if disk_covered_by_disks(target, cover):
            for point in sample_disk(target):
                assert any(
                    disk.contains_point(point, tolerance=1e-6) for disk in cover
                )

    @given(circle_strategy, st.lists(circle_strategy, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_completeness_single_disk_fastpath(self, target, cover):
        """If any one disk safely contains the target, the test says covered."""
        if any(disk.contains_circle(target, tolerance=-1e-6) for disk in cover):
            assert disk_covered_by_disks(target, cover)


class TestDiskCoveredByPolygons:
    def test_empty_cover(self):
        assert not disk_covered_by_polygons(Circle(Point(0, 0), 1.0), [])

    def test_single_large_polygon(self):
        target = Circle(Point(0, 0), 1.0)
        big = Polygon.inscribed_in_circle(Circle(Point(0, 0), 5.0), sides=32)
        assert disk_covered_by_polygons(target, [big])

    def test_two_overlapping_polygons(self):
        target = Circle(Point(0, 0), 1.0)
        cover = [
            Polygon.inscribed_in_circle(Circle(Point(-1.0, 0), 2.5), sides=48),
            Polygon.inscribed_in_circle(Circle(Point(1.0, 0), 2.5), sides=48),
        ]
        assert disk_covered_by_polygons(target, cover, sides=48)

    def test_insufficient_cover(self):
        target = Circle(Point(0, 0), 2.0)
        cover = [Polygon.inscribed_in_circle(Circle(Point(3, 0), 2.0), sides=32)]
        assert not disk_covered_by_polygons(target, cover)

    def test_point_target(self):
        poly = Polygon.inscribed_in_circle(Circle(Point(0, 0), 1.0), sides=16)
        assert disk_covered_by_polygons(Circle(Point(0.1, 0.1), 0.0), [poly])
        assert not disk_covered_by_polygons(Circle(Point(5, 5), 0.0), [poly])

    @given(circle_strategy, st.lists(circle_strategy, min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_polygon_conservative_wrt_exact(self, target, cover_circles):
        """The paper's polygon approximation never certifies more than the
        exact disk test does."""
        polygons = [
            Polygon.inscribed_in_circle(c, sides=24)
            for c in cover_circles
            if c.radius > 0
        ]
        if disk_covered_by_polygons(target, polygons, sides=24):
            assert disk_covered_by_disks(target, cover_circles, tolerance=1e-12)


class TestPolygonCoveredByPolygons:
    def test_identical_cover(self):
        sq = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert polygon_covered_by_polygons(sq, [sq])

    def test_two_halves(self):
        sq = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        left = Polygon([Point(-0.1, -0.1), Point(1.2, -0.1), Point(1.2, 2.1), Point(-0.1, 2.1)])
        right = Polygon([Point(0.8, -0.1), Point(2.1, -0.1), Point(2.1, 2.1), Point(0.8, 2.1)])
        assert polygon_covered_by_polygons(sq, [left, right])

    def test_two_halves_with_gap(self):
        sq = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        left = Polygon([Point(-0.1, -0.1), Point(0.9, -0.1), Point(0.9, 2.1), Point(-0.1, 2.1)])
        right = Polygon([Point(1.1, -0.1), Point(2.1, -0.1), Point(2.1, 2.1), Point(1.1, 2.1)])
        assert not polygon_covered_by_polygons(sq, [left, right])

    def test_hole_in_middle_detected(self):
        """Four rectangles forming a picture frame leave the middle open."""
        sq = Polygon([Point(0, 0), Point(3, 0), Point(3, 3), Point(0, 3)])
        frame = [
            Polygon([Point(-0.1, -0.1), Point(3.1, -0.1), Point(3.1, 1.0), Point(-0.1, 1.0)]),
            Polygon([Point(-0.1, 2.0), Point(3.1, 2.0), Point(3.1, 3.1), Point(-0.1, 3.1)]),
            Polygon([Point(-0.1, -0.1), Point(1.0, -0.1), Point(1.0, 3.1), Point(-0.1, 3.1)]),
            Polygon([Point(2.0, -0.1), Point(3.1, -0.1), Point(3.1, 3.1), Point(2.0, 3.1)]),
        ]
        assert not polygon_covered_by_polygons(sq, frame)

    def test_frame_plus_middle_covers(self):
        sq = Polygon([Point(0, 0), Point(3, 0), Point(3, 3), Point(0, 3)])
        frame = [
            Polygon([Point(-0.1, -0.1), Point(3.1, -0.1), Point(3.1, 1.0), Point(-0.1, 1.0)]),
            Polygon([Point(-0.1, 2.0), Point(3.1, 2.0), Point(3.1, 3.1), Point(-0.1, 3.1)]),
            Polygon([Point(-0.1, -0.1), Point(1.0, -0.1), Point(1.0, 3.1), Point(-0.1, 3.1)]),
            Polygon([Point(2.0, -0.1), Point(3.1, -0.1), Point(3.1, 3.1), Point(2.0, 3.1)]),
            Polygon([Point(0.5, 0.5), Point(2.5, 0.5), Point(2.5, 2.5), Point(0.5, 2.5)]),
        ]
        assert polygon_covered_by_polygons(sq, frame)


class TestCertainRegion:
    def test_empty_region(self):
        region = CertainRegion()
        assert region.is_empty()
        assert not region.covers_disk(Circle(Point(0, 0), 1.0))
        assert not region.contains_point(Point(0, 0))

    def test_zero_radius_circles_ignored(self):
        region = CertainRegion()
        region.add_circle(Circle(Point(0, 0), 0.0))
        assert region.is_empty()

    def test_exact_backend(self):
        region = CertainRegion(method=CoverageMethod.EXACT)
        region.add_circle(Circle(Point(-1, 0), 2.5))
        region.add_circle(Circle(Point(1, 0), 2.5))
        assert region.covers_disk(Circle(Point(0, 0), 1.0))
        assert len(region) == 2

    def test_polygon_backend(self):
        region = CertainRegion(method=CoverageMethod.POLYGON, polygon_sides=48)
        region.add_circle(Circle(Point(-1, 0), 2.5))
        region.add_circle(Circle(Point(1, 0), 2.5))
        assert region.covers_disk(Circle(Point(0, 0), 1.0))

    def test_contains_point_both_backends(self):
        for method in (CoverageMethod.EXACT, CoverageMethod.POLYGON):
            region = CertainRegion(method=method)
            region.add_circle(Circle(Point(0, 0), 1.0))
            assert region.contains_point(Point(0.2, 0.2))
            assert not region.contains_point(Point(5, 5))

    def test_polygon_cache_invalidated_on_add(self):
        region = CertainRegion(method=CoverageMethod.POLYGON)
        region.add_circle(Circle(Point(0, 0), 1.0))
        assert not region.covers_disk(Circle(Point(3, 0), 0.5))
        region.add_circle(Circle(Point(3, 0), 2.0))
        assert region.covers_disk(Circle(Point(3, 0), 0.5))
