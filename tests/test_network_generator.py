"""Tests for repro.network.generator."""

import pytest

from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.graph import RoadClass


class TestSpecValidation:
    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            RoadNetworkSpec(width=0.0, height=1.0)

    def test_bad_spacing(self):
        with pytest.raises(ValueError):
            RoadNetworkSpec(width=1.0, height=1.0, secondary_spacing=0.0)

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            RoadNetworkSpec(width=1.0, height=1.0, jitter=0.7)

    def test_bad_removal(self):
        with pytest.raises(ValueError):
            RoadNetworkSpec(width=1.0, height=1.0, removal_fraction=1.0)

    def test_bad_primary_every(self):
        with pytest.raises(ValueError):
            RoadNetworkSpec(width=1.0, height=1.0, primary_every=0)

    def test_bad_overpass_count(self):
        with pytest.raises(ValueError):
            RoadNetworkSpec(width=1.0, height=1.0, overpass_count=-1)


class TestGeneration:
    def test_deterministic(self):
        spec = RoadNetworkSpec(width=2.0, height=2.0, seed=42)
        net1 = generate_road_network(spec)
        net2 = generate_road_network(spec)
        assert net1.node_count == net2.node_count
        assert net1.edge_count == net2.edge_count
        assert net1.total_length() == pytest.approx(net2.total_length())

    def test_different_seeds_differ(self):
        net1 = generate_road_network(RoadNetworkSpec(width=2.0, height=2.0, seed=1))
        net2 = generate_road_network(RoadNetworkSpec(width=2.0, height=2.0, seed=2))
        assert net1.total_length() != pytest.approx(net2.total_length())

    def test_always_connected(self):
        for seed in range(6):
            spec = RoadNetworkSpec(
                width=2.0, height=2.0, removal_fraction=0.3, seed=seed
            )
            net = generate_road_network(spec)
            assert net.is_connected()

    def test_nodes_within_area(self):
        spec = RoadNetworkSpec(width=3.0, height=2.0, seed=0)
        net = generate_road_network(spec)
        for node in net.node_ids():
            p = net.node_position(node)
            assert 0.0 <= p.x <= 3.0
            assert 0.0 <= p.y <= 2.0

    def test_contains_all_road_classes(self):
        spec = RoadNetworkSpec(width=3.0, height=3.0, rural_fraction=0.3, seed=7)
        net = generate_road_network(spec)
        classes = {edge.road_class for edge in net.edges()}
        assert RoadClass.PRIMARY_HIGHWAY in classes
        assert RoadClass.SECONDARY_ROAD in classes
        assert RoadClass.RURAL_ROAD in classes

    def test_no_jitter_regular_grid(self):
        spec = RoadNetworkSpec(
            width=1.0, height=1.0, secondary_spacing=0.5, jitter=0.0,
            removal_fraction=0.0, rural_fraction=0.0, overpass_count=0, seed=0,
        )
        net = generate_road_network(spec)
        assert net.node_count == 9  # 3x3 grid
        assert net.edge_count == 12

    def test_overpasses_add_long_edges(self):
        base = RoadNetworkSpec(
            width=4.0, height=4.0, secondary_spacing=0.25,
            removal_fraction=0.0, overpass_count=0, seed=3,
        )
        with_op = RoadNetworkSpec(
            width=4.0, height=4.0, secondary_spacing=0.25,
            removal_fraction=0.0, overpass_count=3, seed=3,
        )
        net_base = generate_road_network(base)
        net_op = generate_road_network(with_op)
        assert net_op.edge_count > net_base.edge_count
        longest = max(edge.length for edge in net_op.edges())
        assert longest > 2.0  # diagonal freeway across quadrants

    def test_scales_with_area(self):
        small = generate_road_network(RoadNetworkSpec(width=1.0, height=1.0, seed=0))
        large = generate_road_network(RoadNetworkSpec(width=4.0, height=4.0, seed=0))
        assert large.node_count > small.node_count
