"""Unit and property tests for repro.geometry.intervals."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.intervals import AngularIntervalSet, normalize_angle

angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


class TestNormalizeAngle:
    def test_in_range_unchanged(self):
        assert normalize_angle(0.5) == pytest.approx(0.5)

    def test_wraps_positive(self):
        assert normalize_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_wraps_negative(self):
        assert normalize_angle(-math.pi - 0.1) == pytest.approx(math.pi - 0.1)

    @given(angles)
    def test_result_in_range(self, theta):
        result = normalize_angle(theta)
        assert -math.pi <= result < math.pi + 1e-12

    @given(angles)
    def test_idempotent(self, theta):
        once = normalize_angle(theta)
        assert normalize_angle(once) == pytest.approx(once, abs=1e-9)


class TestAngularIntervalSet:
    def test_empty_set_not_full(self):
        s = AngularIntervalSet()
        assert not s.covers_full_circle()
        assert s.covered_fraction() == 0.0
        assert s.gaps() == [(-math.pi, math.pi)]

    def test_full_sweep_covers(self):
        s = AngularIntervalSet()
        s.add(0.0, 2.0 * math.pi)
        assert s.covers_full_circle()
        assert s.covered_fraction() == 1.0
        assert s.gaps() == []

    def test_two_halves_cover(self):
        s = AngularIntervalSet()
        s.add(-math.pi, 0.0)
        s.add(0.0, math.pi)
        assert s.covers_full_circle()

    def test_gap_detected(self):
        s = AngularIntervalSet()
        s.add(-math.pi, 0.0)
        s.add(0.5, math.pi)
        assert not s.covers_full_circle()
        gaps = s.gaps()
        assert len(gaps) == 1
        lo, hi = gaps[0]
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(0.5)

    def test_wrap_around_interval(self):
        s = AngularIntervalSet()
        # Arc from 3/4 pi sweeping through pi to -3/4 pi.
        s.add(0.75 * math.pi, 1.25 * math.pi)
        assert s.covers_angle(math.pi)
        assert s.covers_angle(-math.pi)
        assert s.covers_angle(0.8 * math.pi)
        assert not s.covers_angle(0.0)

    def test_wrap_gap_midpoint(self):
        s = AngularIntervalSet()
        s.add(-0.5 * math.pi, 0.5 * math.pi)
        mids = s.gap_midpoints()
        assert len(mids) == 1
        assert abs(mids[0]) == pytest.approx(math.pi, abs=1e-9)

    def test_add_centered(self):
        s = AngularIntervalSet()
        s.add_centered(0.0, math.pi)
        assert s.covers_full_circle()

    def test_zero_sweep_ignored(self):
        s = AngularIntervalSet()
        s.add(1.0, 1.0)
        assert s.covered_fraction() == 0.0

    def test_negative_sweep_ignored(self):
        s = AngularIntervalSet()
        s.add(1.0, 0.5)
        assert s.covered_fraction() == 0.0

    def test_overlapping_merge(self):
        s = AngularIntervalSet()
        s.add(0.0, 1.0)
        s.add(0.5, 1.5)
        merged = s.merged()
        assert len(merged) == 1
        assert merged[0][0] == pytest.approx(0.0)
        assert merged[0][1] == pytest.approx(1.5)

    def test_covered_fraction_half(self):
        s = AngularIntervalSet()
        s.add(0.0, math.pi)
        assert s.covered_fraction() == pytest.approx(0.5)

    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            AngularIntervalSet(tolerance=-1.0)

    def test_from_arcs(self):
        s = AngularIntervalSet.from_arcs([(0.0, 1.0), (2.0, 3.0)])
        assert s.covers_angle(0.5)
        assert s.covers_angle(2.5)
        assert not s.covers_angle(1.5)


class TestIntervalProperties:
    @given(st.lists(st.tuples(angles, st.floats(min_value=0.0, max_value=3.0)), max_size=8))
    def test_covered_fraction_bounded(self, arcs):
        s = AngularIntervalSet()
        for start, sweep in arcs:
            s.add(start, start + sweep)
        assert 0.0 <= s.covered_fraction() <= 1.0

    @given(
        st.lists(
            st.tuples(angles, st.floats(min_value=0.01, max_value=3.0)),
            min_size=1,
            max_size=8,
        )
    )
    def test_added_arc_midpoints_covered(self, arcs):
        s = AngularIntervalSet()
        for start, sweep in arcs:
            s.add(start, start + sweep)
        for start, sweep in arcs:
            assert s.covers_angle(start + sweep / 2.0)

    @given(
        st.lists(
            st.tuples(angles, st.floats(min_value=0.0, max_value=3.0)), max_size=8
        ),
        angles,
    )
    def test_gap_midpoints_uncovered(self, arcs, _):
        s = AngularIntervalSet()
        for start, sweep in arcs:
            s.add(start, start + sweep)
        for lo, hi in s.gaps():
            # Gaps at the tolerance scale are covered-within-tolerance by
            # construction; only meaningfully wide gaps must test clean.
            if hi - lo > 100.0 * s.tolerance:
                midpoint = normalize_angle((lo + hi) / 2.0)
                assert not s.covers_angle(midpoint)

    @given(st.floats(min_value=6.2832, max_value=20.0))
    def test_oversized_sweep_is_full(self, sweep):
        s = AngularIntervalSet()
        s.add(0.0, sweep)
        assert s.covers_full_circle()
