"""Tests for repro.core.snnn (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.cache import CachedQueryResult
from repro.core.senn import SennConfig
from repro.core.server import SpatialDatabaseServer
from repro.core.snnn import snnn_query
from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.network.dijkstra import network_distance
from repro.network.generator import RoadNetworkSpec, generate_road_network


def build_world(seed=0, poi_count=20, size=2.0):
    network = generate_road_network(
        RoadNetworkSpec(width=size, height=size, secondary_spacing=size / 6, seed=seed)
    )
    rng = np.random.default_rng(seed + 500)
    pois = []
    for i in range(poi_count):
        raw = Point(float(rng.uniform(0, size)), float(rng.uniform(0, size)))
        snapped = network.snap(raw)
        pois.append((snapped.point, f"poi-{i}"))
    return network, pois, rng


def true_network_knn(network, pois, query, k):
    origin = network.snap(query)
    ordered = sorted(
        (network_distance(network, origin, network.snap(p)), payload)
        for p, payload in pois
    )
    return ordered[:k]


def true_euclid_knn(pois, location, k):
    ordered = sorted((location.distance_to(p), i, p) for i, (p, _) in enumerate(pois))
    return [NeighborResult(p, pois[i][1], d) for d, i, p in ordered[:k]]


class TestSnnn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 3])
    def test_matches_brute_force_with_server(self, seed, k):
        network, pois, rng = build_world(seed)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(float(rng.uniform(0.2, 1.8)), float(rng.uniform(0.2, 1.8)))
        config = SennConfig(k=k)
        result = snnn_query(q, k, network, None, [], config, server=server)
        expected = true_network_knn(network, pois, q, k)
        assert [r.network_distance for r in result.neighbors] == pytest.approx(
            [d for d, _ in expected]
        )

    def test_peer_assisted_query(self):
        """A well-stocked nearby peer lets SNNN avoid the server entirely
        when its certain set already covers the network search bound."""
        network, pois, _ = build_world(3, poi_count=30)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(1.0, 1.0)
        peer_loc = Point(1.02, 1.0)
        cache = CachedQueryResult(
            peer_loc, tuple(true_euclid_knn(pois, peer_loc, 15))
        )
        config = SennConfig(k=2, cache_capacity=15)
        result = snnn_query(q, 2, network, None, [cache], config, server=server)
        expected = true_network_knn(network, pois, q, 2)
        assert [r.network_distance for r in result.neighbors] == pytest.approx(
            [d for d, _ in expected]
        )
        assert result.candidates_from_peers > 0

    def test_k_validation(self):
        network, pois, _ = build_world(0, poi_count=3)
        with pytest.raises(ValueError):
            snnn_query(Point(0, 0), 0, network, None, [], SennConfig(k=1))

    def test_results_sorted_by_network_distance(self):
        network, pois, rng = build_world(4)
        server = SpatialDatabaseServer.from_points(pois)
        result = snnn_query(
            Point(1.0, 1.0), 5, network, None, [], SennConfig(k=5), server=server
        )
        nds = [r.network_distance for r in result.neighbors]
        assert nds == sorted(nds)

    def test_euclidean_lower_bound_in_results(self):
        network, pois, _ = build_world(5)
        server = SpatialDatabaseServer.from_points(pois)
        result = snnn_query(
            Point(0.5, 0.5), 4, network, None, [], SennConfig(k=4), server=server
        )
        for r in result.neighbors:
            assert r.euclidean_distance <= r.network_distance + 1e-9

    def test_used_server_flag(self):
        network, pois, _ = build_world(6)
        server = SpatialDatabaseServer.from_points(pois)
        result = snnn_query(
            Point(1.0, 1.0), 3, network, None, [], SennConfig(k=3), server=server
        )
        assert result.used_server
