"""Acceptance tests for ``repro-lint --concurrency`` (RPR015-RPR020).

Mirrors the structure of ``test_analysis_deep.py``:

- fixture projects built with ``project_from_sources`` exercise each
  rule in isolation (positive and negative cases);
- the real tree is analyzed once per module and must be clean at HEAD;
- the acceptance-criteria fault injections (dropping the ``with
  self._lock:`` guard in ``TcpTransport.request``, adding an ``await``
  under a held ``threading.Lock`` in the dispatcher) must surface as
  RPR015/RPR017 findings *statically*;
- the runtime half (tracked locks, the race sanitizer's lock-order
  graph and metric owning-context check) is driven directly here; the
  static-vs-runtime graph comparison over a live server lives in
  ``test_service_concurrency.py``.
"""

import asyncio
import os
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import deep
from repro.analysis.concurrency import (
    CONCURRENCY_RULES,
    analyze_concurrency,
    concurrency_report,
    run_concurrency,
)
from repro.analysis.locks import LockOrderGraph, LockSite, canonical_lock_name
from repro.analysis.project import load_project, project_from_sources
from repro.analysis.runtime import (
    SANITIZER,
    named_async_lock,
    named_lock,
    sanitized,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def head_concurrency():
    """One full concurrency run over the real tree, shared by this module."""
    return run_concurrency([SRC_ROOT], deep.default_reference_roots(REPO_ROOT))


@pytest.fixture(scope="module")
def head_project():
    """The real tree as a Project, for fault-injection mutations."""
    return load_project([SRC_ROOT], deep.default_reference_roots(REPO_ROOT))


def violations_of(analysis, code):
    return [v for v in analysis.violations if v.code == code]


# ----------------------------------------------------------------------
# RPR015: unguarded shared write
# ----------------------------------------------------------------------
RACY_BOX = {
    "repro.conc.box": (
        "import threading\n"
        "\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.items = []\n"
        "\n"
        "    def locked_add(self, item):\n"
        "        with self._lock:\n"
        "            self.items.append(item)\n"
        "\n"
        "    def racy_add(self, item):\n"
        "        self.items.append(item)\n"
    ),
}


class TestSharedWrites:
    def test_mixed_locked_unlocked_write_is_rpr015(self):
        analysis = analyze_concurrency(project_from_sources(RACY_BOX))
        flagged = violations_of(analysis, "RPR015")
        assert len(flagged) == 1
        assert "Box.items" in flagged[0].message
        assert "racy_add" in flagged[0].message
        assert flagged[0].line == 14

    def test_all_writes_locked_is_clean_and_inferred(self):
        sources = {
            "repro.conc.box": RACY_BOX["repro.conc.box"].replace(
                "    def racy_add(self, item):\n"
                "        self.items.append(item)\n",
                "",
            )
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert analysis.violations == []
        assert analysis.guarded_by["Box.items"] == "Box._lock"

    def test_init_writes_are_exempt(self):
        sources = {
            "repro.conc.initonly": (
                "import threading\n"
                "\n"
                "\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.config = {}\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert analysis.violations == []

    def test_write_outside_declared_guard_is_rpr015(self):
        sources = {
            "repro.conc.declared": (
                "import threading\n"
                "\n"
                "\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.state = 0  # repro: guarded-by(self._lock)\n"
                "\n"
                "    def poke(self):\n"
                "        self.state = 1\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR015")
        assert len(flagged) == 1
        assert "declared guard" in flagged[0].message
        assert flagged[0].line == 10

    def test_unrelated_class_without_locks_is_ignored(self):
        sources = {
            "repro.conc.plain": (
                "class PerQueryScratch:\n"
                "    def __init__(self):\n"
                "        self.acc = []\n"
                "\n"
                "    def push(self, x):\n"
                "        self.acc.append(x)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert analysis.violations == []
        assert analysis.shared_classes == {}


# ----------------------------------------------------------------------
# RPR020: unannotated shared field / guarded-by annotations
# ----------------------------------------------------------------------
class TestGuardedBy:
    def test_all_unlocked_writes_demand_annotation(self):
        sources = {
            "repro.conc.naked": (
                "import threading\n"
                "\n"
                "\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def poke(self):\n"
                "        self.counter = 1\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR020")
        assert len(flagged) == 1
        assert "counter" in flagged[0].message
        assert "guarded-by" in flagged[0].message

    def test_owner_sentinel_annotation_clears_the_field(self):
        sources = {
            "repro.conc.owned": (
                "import threading\n"
                "\n"
                "\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def poke(self):\n"
                "        self.counter = 1  # repro: guarded-by(setup)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert analysis.violations == []
        assert analysis.guarded_by["Holder.counter"] == "owner:setup"

    def test_unknown_spec_is_rpr020(self):
        sources = {
            "repro.conc.typo": (
                "import threading\n"
                "\n"
                "\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def poke(self):\n"
                "        self.counter = 1  # repro: guarded-by(no_such_lock)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR020")
        assert len(flagged) == 1
        assert "unknown guarded-by spec" in flagged[0].message

    def test_thread_target_class_is_shared(self):
        sources = {
            "repro.conc.worker": (
                "import threading\n"
                "\n"
                "\n"
                "class Worker:\n"
                "    def __init__(self):\n"
                "        self._thread = threading.Thread(target=self._run)\n"
                "\n"
                "    def _run(self):\n"
                "        self.result = 42\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        shared = analysis.shared_classes["repro.conc.worker.Worker"]
        assert "threading.Thread" in shared.reason
        assert violations_of(analysis, "RPR020")


# ----------------------------------------------------------------------
# RPR016: blocking call reachable from a coroutine
# ----------------------------------------------------------------------
class TestAsyncBlocking:
    def test_time_sleep_in_coroutine_is_rpr016(self):
        sources = {
            "repro.conc.aio": (
                "import time\n"
                "\n"
                "\n"
                "async def tick():\n"
                "    time.sleep(0.1)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR016")
        assert len(flagged) == 1
        assert "tick" in flagged[0].message

    def test_blocking_reached_through_sync_helper(self):
        sources = {
            "repro.conc.aio2": (
                "import time\n"
                "\n"
                "\n"
                "def settle():\n"
                "    time.sleep(0.1)\n"
                "\n"
                "\n"
                "async def tick():\n"
                "    settle()\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR016")
        assert len(flagged) == 1
        assert "tick" in flagged[0].message

    def test_run_in_executor_dispatch_is_clean(self):
        sources = {
            "repro.conc.aio3": (
                "import asyncio\n"
                "import time\n"
                "\n"
                "\n"
                "def settle():\n"
                "    time.sleep(0.1)\n"
                "\n"
                "\n"
                "async def tick():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, settle)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert violations_of(analysis, "RPR016") == []

    def test_asyncio_sleep_is_not_blocking(self):
        sources = {
            "repro.conc.aio4": (
                "import asyncio\n"
                "\n"
                "\n"
                "async def tick():\n"
                "    await asyncio.sleep(0.1)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert violations_of(analysis, "RPR016") == []


# ----------------------------------------------------------------------
# RPR017: await under a held threading.Lock
# ----------------------------------------------------------------------
class TestAwaitUnderLock:
    def test_await_inside_thread_lock_is_rpr017(self):
        sources = {
            "repro.conc.stall": (
                "import asyncio\n"
                "import threading\n"
                "\n"
                "\n"
                "class Pump:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    async def flush(self):\n"
                "        with self._lock:\n"
                "            await asyncio.sleep(0)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR017")
        assert len(flagged) == 1
        assert "flush" in flagged[0].message
        assert flagged[0].line == 11

    def test_async_with_asyncio_lock_is_clean(self):
        sources = {
            "repro.conc.ok": (
                "import asyncio\n"
                "\n"
                "\n"
                "class Pump:\n"
                "    def __init__(self):\n"
                "        self._lock = asyncio.Lock()\n"
                "\n"
                "    async def flush(self):\n"
                "        async with self._lock:\n"
                "            await asyncio.sleep(0)\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert violations_of(analysis, "RPR017") == []


# ----------------------------------------------------------------------
# RPR018: dropped task
# ----------------------------------------------------------------------
class TestDroppedTask:
    def test_bare_ensure_future_is_rpr018(self):
        sources = {
            "repro.conc.fire": (
                "import asyncio\n"
                "\n"
                "\n"
                "async def work():\n"
                "    return 1\n"
                "\n"
                "\n"
                "async def fire():\n"
                "    asyncio.ensure_future(work())\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        flagged = violations_of(analysis, "RPR018")
        assert len(flagged) == 1
        assert "ensure_future" in flagged[0].message

    def test_retained_task_is_clean(self):
        sources = {
            "repro.conc.kept": (
                "import asyncio\n"
                "\n"
                "\n"
                "async def work():\n"
                "    return 1\n"
                "\n"
                "\n"
                "async def fire():\n"
                "    task = asyncio.create_task(work())\n"
                "    await task\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert violations_of(analysis, "RPR018") == []


# ----------------------------------------------------------------------
# RPR019: lock-order cycles
# ----------------------------------------------------------------------
CYCLE_SOURCES = {
    "repro.conc.ab": (
        "import threading\n"
        "\n"
        "\n"
        "class AB:\n"
        "    def __init__(self):\n"
        "        self.a_lock = threading.Lock()\n"
        "        self.b_lock = threading.Lock()\n"
        "\n"
        "    def one(self):\n"
        "        with self.a_lock:\n"
        "            with self.b_lock:\n"
        "                pass\n"
        "\n"
        "    def two(self):\n"
        "        with self.b_lock:\n"
        "            with self.a_lock:\n"
        "                pass\n"
    ),
}


class TestLockOrder:
    def test_opposite_orders_are_a_cycle(self):
        analysis = analyze_concurrency(project_from_sources(CYCLE_SOURCES))
        flagged = violations_of(analysis, "RPR019")
        assert len(flagged) == 1
        assert "AB.a_lock" in flagged[0].message
        assert "AB.b_lock" in flagged[0].message

    def test_consistent_order_is_clean(self):
        sources = {
            "repro.conc.ab": CYCLE_SOURCES["repro.conc.ab"].replace(
                "        with self.b_lock:\n"
                "            with self.a_lock:\n",
                "        with self.a_lock:\n"
                "            with self.b_lock:\n",
            )
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert analysis.violations == []
        assert ("AB.a_lock", "AB.b_lock") in analysis.lock_graph.edges

    def test_interprocedural_nesting_builds_edges(self):
        sources = {
            "repro.conc.indirect": (
                "import threading\n"
                "\n"
                "\n"
                "class AB:\n"
                "    def __init__(self):\n"
                "        self.a_lock = threading.Lock()\n"
                "        self.b_lock = threading.Lock()\n"
                "\n"
                "    def inner(self):\n"
                "        with self.b_lock:\n"
                "            pass\n"
                "\n"
                "    def outer(self):\n"
                "        with self.a_lock:\n"
                "            self.inner()\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert ("AB.a_lock", "AB.b_lock") in analysis.lock_graph.edges

    def test_reacquiring_plain_lock_is_self_deadlock(self):
        sources = {
            "repro.conc.selfdl": (
                "import threading\n"
                "\n"
                "\n"
                "class S:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def twice(self):\n"
                "        with self._lock:\n"
                "            with self._lock:\n"
                "                pass\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert len(violations_of(analysis, "RPR019")) == 1

    def test_reacquiring_rlock_is_fine(self):
        sources = {
            "repro.conc.rl": (
                "import threading\n"
                "\n"
                "\n"
                "class S:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.RLock()\n"
                "\n"
                "    def twice(self):\n"
                "        with self._lock:\n"
                "            with self._lock:\n"
                "                pass\n"
            ),
        }
        analysis = analyze_concurrency(project_from_sources(sources))
        assert violations_of(analysis, "RPR019") == []


class TestLockOrderGraph:
    def test_cycles_and_witness(self):
        graph = LockOrderGraph()
        graph.add_edge("a", "b", LockSite("m", 1))
        graph.add_edge("b", "a", LockSite("m", 2))
        graph.add_edge("a", "c", LockSite("m", 3))
        assert graph.cycles() == [["a", "b"]]
        assert graph.witness("a", "b")[0].lineno == 1
        assert graph.missing_edges([("a", "b"), ("c", "a")]) == [("c", "a")]

    def test_aliases_fold_onto_one_node(self):
        assert canonical_lock_name("Counter._lock") == "MetricsRegistry._lock"
        graph = LockOrderGraph()
        graph.add_edge("x", "Counter._lock", LockSite("m", 1))
        assert ("x", "MetricsRegistry._lock") in graph.edges

    def test_render_lists_sorted_edges(self):
        graph = LockOrderGraph()
        graph.add_edge("b", "c", LockSite("mod", 9))
        graph.add_edge("a", "b", LockSite("mod", 4))
        assert graph.render() == ["a -> b  (mod:4)", "b -> c  (mod:9)"]


# ----------------------------------------------------------------------
# the real tree
# ----------------------------------------------------------------------
class TestHeadTree:
    def test_head_is_clean(self, head_concurrency):
        assert head_concurrency.violations == []

    def test_head_guarded_by_table(self, head_concurrency):
        table = head_concurrency.guarded_by
        assert table["TcpTransport._sock"] == "TcpTransport._lock"
        assert table["Counter._value"] == "MetricsRegistry._lock"
        assert table["BackgroundServer._address"] == "owner:handshake"

    def test_head_lock_graph_has_transport_metrics_edge(self, head_concurrency):
        assert (
            "TcpTransport._lock",
            "MetricsRegistry._lock",
        ) in head_concurrency.lock_graph.edges
        assert head_concurrency.lock_graph.cycles() == []

    def test_head_thread_entries(self, head_concurrency):
        entries = " ".join(head_concurrency.thread_entries)
        assert "thread -> self._run" in entries
        assert "executor -> _client_worker" in entries

    def test_background_server_is_shared(self, head_concurrency):
        shared = head_concurrency.shared_classes[
            "repro.service.asyncserver.BackgroundServer"
        ]
        assert "threading.Thread" in shared.reason

    def test_report_renders(self, head_concurrency):
        lines = concurrency_report(head_concurrency)
        text = "\n".join(lines)
        assert "guarded-by table" in text
        assert "lock-order graph" in text
        assert "TcpTransport._lock -> MetricsRegistry._lock" in text


# ----------------------------------------------------------------------
# acceptance fault injections (static, no execution of mutated code)
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_removing_transport_lock_guard_is_rpr015(self, head_project):
        module = head_project.get("repro.service.transport")
        mutated = module.source.replace("with self._lock:", "if True:")
        assert mutated != module.source
        analysis = analyze_concurrency(
            head_project.replace_source("repro.service.transport", mutated)
        )
        flagged = violations_of(analysis, "RPR015")
        assert any("_sock" in v.message for v in flagged)

    def test_await_under_thread_lock_in_dispatcher_is_rpr017(self, head_project):
        module = head_project.get("repro.service.asyncserver")
        mutated = module.source.replace(
            "    async def _dispatch_loop(self) -> None:\n"
            "        loop = asyncio.get_running_loop()\n",
            "    async def _dispatch_loop(self) -> None:\n"
            "        loop = asyncio.get_running_loop()\n"
            "        self._batch_lock = threading.Lock()\n",
        ).replace(
            "            await self._execute_batch(batch, loop.time())\n",
            "            with self._batch_lock:\n"
            "                await self._execute_batch(batch, loop.time())\n",
        )
        assert mutated != module.source
        analysis = analyze_concurrency(
            head_project.replace_source("repro.service.asyncserver", mutated)
        )
        flagged = violations_of(analysis, "RPR017")
        assert any("_dispatch_loop" in v.message for v in flagged)


# ----------------------------------------------------------------------
# the runtime half: tracked locks and the race sanitizer
# ----------------------------------------------------------------------
class TestRuntimeSanitizer:
    def test_nesting_records_an_edge(self):
        lock_a = named_lock("test.A")
        lock_b = named_lock("test.B")
        SANITIZER.reset_concurrency()
        try:
            with sanitized():
                with lock_a:
                    with lock_b:
                        pass
            assert ("test.A", "test.B") in SANITIZER.lock_order_edges()
            assert SANITIZER.lock_order_violations == []
        finally:
            SANITIZER.reset_concurrency()

    def test_inversion_is_reported(self):
        lock_a = named_lock("test.A")
        lock_b = named_lock("test.B")
        SANITIZER.reset_concurrency()
        try:
            with sanitized():
                with lock_a:
                    with lock_b:
                        pass
                with lock_b:
                    with lock_a:
                        pass
            assert any(
                "inversion" in report
                for report in SANITIZER.lock_order_violations
            )
        finally:
            SANITIZER.reset_concurrency()

    def test_async_locks_are_tracked_per_task(self):
        async def workload():
            async_lock = named_async_lock("test.AL")
            thread_lock = named_lock("test.TL")
            async with async_lock:
                with thread_lock:
                    pass

        SANITIZER.reset_concurrency()
        try:
            with sanitized():
                asyncio.run(workload())
            assert ("test.AL", "test.TL") in SANITIZER.lock_order_edges()
            assert SANITIZER.lock_order_violations == []
        finally:
            SANITIZER.reset_concurrency()

    def test_disabled_sanitizer_records_nothing(self):
        lock_a = named_lock("test.quiet.A")
        lock_b = named_lock("test.quiet.B")
        SANITIZER.reset_concurrency()
        try:
            before = SANITIZER.lock_order_edges()
            if not SANITIZER.enabled:
                with lock_a:
                    with lock_b:
                        pass
                assert SANITIZER.lock_order_edges() == before
        finally:
            SANITIZER.reset_concurrency()

    def test_metric_mutation_owner_check(self):
        from repro.obs.metrics import Counter

        counter = Counter("test.counter", ())
        SANITIZER.reset_concurrency()
        try:
            with sanitized():
                counter.inc()
                assert SANITIZER.metric_violations == []
                # Reporting a mutation without holding the guard (what an
                # un-locked write path would do) is flagged.
                SANITIZER.note_metric_mutation("test.counter", "ghost._lock")
            assert len(SANITIZER.metric_violations) == 1
            assert "ghost._lock" in SANITIZER.metric_violations[0]
        finally:
            SANITIZER.reset_concurrency()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestCli:
    def test_concurrency_flag_is_clean_at_head(self):
        result = _run_cli("--concurrency")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 new findings" in result.stderr

    def test_report_flag_prints_tables(self):
        result = _run_cli("--concurrency", "--report", "--quiet")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "guarded-by table" in result.stdout
        assert "lock-order graph" in result.stdout

    def test_list_rules_includes_concurrency_catalogue(self):
        result = _run_cli("--list-rules", "--concurrency")
        assert result.returncode == 0
        for code in CONCURRENCY_RULES:
            assert code in result.stdout

    def test_composes_with_deep(self):
        result = _run_cli("--deep", "--concurrency")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "--deep --concurrency" in result.stderr
