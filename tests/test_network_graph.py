"""Tests for repro.network.graph."""

import math

import pytest

from repro.geometry.point import Point
from repro.network.graph import Edge, NetworkLocation, RoadClass, SpatialNetwork


def simple_square_network():
    """Four nodes in a unit square with edges along the sides."""
    net = SpatialNetwork()
    a = net.add_node(Point(0, 0))
    b = net.add_node(Point(1, 0))
    c = net.add_node(Point(1, 1))
    d = net.add_node(Point(0, 1))
    net.add_edge(a, b)
    net.add_edge(b, c)
    net.add_edge(c, d)
    net.add_edge(d, a)
    return net, (a, b, c, d)


class TestRoadClass:
    def test_speed_limits(self):
        assert RoadClass.PRIMARY_HIGHWAY.speed_limit_mph == 65.0
        assert RoadClass.SECONDARY_ROAD.speed_limit_mph == 45.0
        assert RoadClass.RURAL_ROAD.speed_limit_mph == 30.0


class TestEdge:
    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Edge(0, 1, 0.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Edge(2, 2, 1.0)

    def test_other_end(self):
        edge = Edge(3, 7, 1.0)
        assert edge.other_end(3) == 7
        assert edge.other_end(7) == 3
        with pytest.raises(ValueError):
            edge.other_end(9)

    def test_key_canonical(self):
        assert Edge(7, 3, 1.0).key() == (3, 7)
        assert Edge(3, 7, 1.0).key() == (3, 7)


class TestSpatialNetwork:
    def test_counts(self):
        net, _ = simple_square_network()
        assert net.node_count == 4
        assert net.edge_count == 4
        assert net.total_length() == pytest.approx(4.0)

    def test_add_edge_requires_nodes(self):
        net = SpatialNetwork()
        with pytest.raises(KeyError):
            net.add_edge(0, 1)

    def test_edge_length_defaults_to_euclidean(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(3, 4))
        edge = net.add_edge(a, b)
        assert edge.length == pytest.approx(5.0)

    def test_curved_edge_longer_allowed(self):
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(1, 0))
        edge = net.add_edge(a, b, length=2.5)
        assert edge.length == 2.5

    def test_edge_shorter_than_euclidean_rejected(self):
        """Shorter-than-chord lengths would break the lower-bound property."""
        net = SpatialNetwork()
        a = net.add_node(Point(0, 0))
        b = net.add_node(Point(2, 0))
        with pytest.raises(ValueError):
            net.add_edge(a, b, length=1.0)

    def test_coincident_nodes_rejected(self):
        net = SpatialNetwork()
        a = net.add_node(Point(1, 1))
        b = net.add_node(Point(1, 1))
        with pytest.raises(ValueError):
            net.add_edge(a, b)

    def test_neighbors_and_degree(self):
        net, (a, b, c, d) = simple_square_network()
        assert net.degree(a) == 2
        neighbor_ids = {n for n, _ in net.neighbors(a)}
        assert neighbor_ids == {b, d}

    def test_edges_iterated_once(self):
        net, _ = simple_square_network()
        assert len(list(net.edges())) == 4

    def test_connectivity(self):
        net, (a, b, c, d) = simple_square_network()
        assert net.is_connected()
        lonely = net.add_node(Point(5, 5))
        assert not net.is_connected()
        assert lonely not in net.largest_component_nodes()

    def test_empty_network_connected(self):
        assert SpatialNetwork().is_connected()


class TestLocations:
    def test_location_at(self):
        net, (a, b, _, _) = simple_square_network()
        edge = net.edge_between(a, b)
        loc = net.location_at(edge, 0.25)
        assert loc.point == Point(0.25, 0.0)
        assert loc.offset_from_v == pytest.approx(0.75)

    def test_location_at_clamps(self):
        net, (a, b, _, _) = simple_square_network()
        edge = net.edge_between(a, b)
        assert net.location_at(edge, -1.0).offset == 0.0
        assert net.location_at(edge, 99.0).offset == edge.length

    def test_location_at_node(self):
        net, (a, _, _, _) = simple_square_network()
        loc = net.location_at_node(a)
        assert loc.point == Point(0, 0)
        assert loc.offset in (0.0, loc.edge.length)

    def test_location_at_isolated_node_raises(self):
        net = SpatialNetwork()
        lonely = net.add_node(Point(0, 0))
        with pytest.raises(ValueError):
            net.location_at_node(lonely)

    def test_invalid_offset_raises(self):
        edge = Edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            NetworkLocation(edge, 2.0, Point(0, 0))

    def test_snap_onto_edge(self):
        net, (a, b, _, _) = simple_square_network()
        loc = net.snap(Point(0.5, -0.3))
        assert loc.edge.key() == net.edge_between(a, b).key()
        assert loc.point.x == pytest.approx(0.5)
        assert loc.point.y == pytest.approx(0.0)

    def test_snap_onto_vertex(self):
        net, _ = simple_square_network()
        loc = net.snap(Point(-1, -1))
        assert loc.point == Point(0, 0)

    def test_snap_empty_raises(self):
        with pytest.raises(ValueError):
            SpatialNetwork().snap(Point(0, 0))

    def test_nearest_node(self):
        net, (a, _, c, _) = simple_square_network()
        assert net.nearest_node(Point(0.1, 0.1)) == a
        assert net.nearest_node(Point(0.9, 0.9)) == c

    def test_nearest_node_empty_raises(self):
        with pytest.raises(ValueError):
            SpatialNetwork().nearest_node(Point(0, 0))
