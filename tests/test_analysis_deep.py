"""Acceptance tests for ``repro-lint --deep`` (rules RPR008-RPR013).

Two layers of coverage:

- fixture projects built with ``project_from_sources`` exercise each
  pass in isolation (positive and negative cases per rule);
- the real tree is analyzed once per module and must be clean at HEAD,
  and seeded soundness mutations (the Lemma 3.2 ``<=`` -> ``<`` flip,
  dropping the Lemma 3.8 ``covers_disk`` call) must surface as RPR012
  findings *statically* -- no test execution of the mutated code.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import deep
from repro.analysis.callgraph import build_call_graph, build_import_graph
from repro.analysis.floatcheck import (
    LEMMA_TABLE,
    SELF_CHECK_SCOPES,
    collect_comparison_sites,
    float_comparison_violations,
    lemma_conformance_violations,
    lemma_table_lines,
)
from repro.analysis.layers import cycle_violations, layer_violations
from repro.analysis.lint import Violation
from repro.analysis.project import project_from_sources
from repro.analysis.purity import (
    Effect,
    determinism_violations,
    infer_effects,
    purity_violations,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def head_analysis():
    """One full deep run over the real tree, shared by this module."""
    return deep.run_deep([SRC_ROOT], deep.default_reference_roots(REPO_ROOT))


def violations_of(analysis, code):
    return [v for v in analysis.violations if v.code == code]


# ----------------------------------------------------------------------
# RPR008: dead code
# ----------------------------------------------------------------------
DEAD_CODE_SOURCES = {
    "repro.core.alpha": (
        '__all__ = ["used"]\n'
        "\n"
        "\n"
        "def helper():\n"
        "    return 1\n"
        "\n"
        "\n"
        "def used():\n"
        "    return helper()\n"
        "\n"
        "\n"
        "def abandoned():\n"
        "    return 2\n"
    ),
}


class TestDeadCode:
    def test_unreferenced_function_is_flagged(self):
        analysis = deep.analyze_project(project_from_sources(DEAD_CODE_SOURCES))
        flagged = violations_of(analysis, "RPR008")
        assert len(flagged) == 1
        assert "`repro.core.alpha.abandoned`" in flagged[0].message

    def test_transitive_callee_of_export_is_live(self):
        analysis = deep.analyze_project(project_from_sources(DEAD_CODE_SOURCES))
        messages = " ".join(v.message for v in violations_of(analysis, "RPR008"))
        assert "helper" not in messages
        assert "used" not in messages

    def test_head_dead_code_report_is_empty(self, head_analysis):
        assert list(head_analysis.graph.dead()) == []


# ----------------------------------------------------------------------
# RPR009: purity zones
# ----------------------------------------------------------------------
class TestPurityZones:
    def test_argument_mutation_in_oracle_zone(self):
        project = project_from_sources(
            {
                "repro.testing.oracles": (
                    "def sneaky(items):\n"
                    "    items.append(1)\n"
                    "    return items\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        flagged = violations_of(analysis, "RPR009")
        assert len(flagged) == 1
        assert "sneaky" in flagged[0].message
        assert flagged[0].line == 2

    def test_mutation_reaches_zone_through_call_chain(self):
        project = project_from_sources(
            {
                "repro.testing.oracles": (
                    "def outer(acc):\n"
                    "    fill(acc)\n"
                    "\n"
                    "\n"
                    "def fill(acc):\n"
                    "    acc.append(1)\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert {"outer", "fill"} <= {
            v.message.split("`")[1].rsplit(".", 1)[-1]
            for v in violations_of(analysis, "RPR009")
        }

    def test_geometry_self_mutation_is_allowed(self):
        project = project_from_sources(
            {
                "repro.geometry.builder": (
                    "class RegionBuilder:\n"
                    "    def __init__(self):\n"
                    "        self.circles = []\n"
                    "\n"
                    "    def add_circle(self, circle):\n"
                    "        self.circles.append(circle)\n"
                    "        return self\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR009") == []

    def test_local_mutation_is_not_an_effect(self):
        project = project_from_sources(
            {
                "repro.testing.oracles": (
                    "def collect(count):\n"
                    "    out = []\n"
                    "    for i in range(count):\n"
                    "        out.append(i)\n"
                    "    return out\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR009") == []

    def test_origin_noqa_kills_propagated_chain(self):
        project = project_from_sources(
            {
                "repro.testing.oracles": (
                    "def outer(acc):\n"
                    "    fill(acc)\n"
                    "\n"
                    "\n"
                    "def fill(acc):\n"
                    "    acc.append(1)  # repro: noqa(RPR009)\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR009") == []


# ----------------------------------------------------------------------
# RPR010: determinism zones
# ----------------------------------------------------------------------
class TestDeterminismZones:
    def test_wall_clock_read_and_propagation(self):
        project = project_from_sources(
            {
                "repro.core.clockwork": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                    "\n"
                    "\n"
                    "def caller():\n"
                    "    return stamp()\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        flagged = violations_of(analysis, "RPR010")
        assert {"stamp", "caller"} <= {
            v.message.split("`")[1].rsplit(".", 1)[-1] for v in flagged
        }
        chained = next(v for v in flagged if "caller" in v.message)
        assert "calls repro.core.clockwork.stamp" in chained.message

    def test_set_iteration_is_nondeterministic(self):
        project = project_from_sources(
            {
                "repro.core.setwalk": (
                    "def drain(pending):\n"
                    "    bag = {1, 2, 3}\n"
                    "    return [item for item in bag]\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        flagged = violations_of(analysis, "RPR010")
        assert len(flagged) == 1
        assert "hash order" in flagged[0].message

    def test_sorted_set_is_deterministic(self):
        project = project_from_sources(
            {
                "repro.core.setwalk": (
                    "def drain():\n"
                    "    bag = {1, 2, 3}\n"
                    "    return sorted(bag)\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR010") == []

    def test_origin_noqa_kills_propagated_chain(self):
        project = project_from_sources(
            {
                "repro.core.clockwork": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def stamp():\n"
                    "    return time.time()  # repro: noqa(RPR010)\n"
                    "\n"
                    "\n"
                    "def caller():\n"
                    "    return stamp()\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR010") == []

    def test_outside_zone_is_not_reported(self):
        project = project_from_sources(
            {
                "repro.experiments.timing": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                )
            }
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR010") == []


# ----------------------------------------------------------------------
# RPR011: float-comparison dataflow
# ----------------------------------------------------------------------
class TestFloatComparisons:
    # ``repro.core.bounds`` is in STRICT_FLOAT_MODULES and carries no
    # lemma-table entries, so it makes a clean fixture namespace.
    def fixture(self, body):
        return project_from_sources({"repro.core.bounds": body})

    def test_raw_comparison_is_flagged(self):
        project = self.fixture(
            "def check(distance, limit):\n"
            "    return distance < limit\n"
        )
        found = list(float_comparison_violations(project))
        assert len(found) == 1
        site, message = found[0]
        assert site.lineno == 2
        assert "raw `<`" in message

    def test_tolerance_routed_comparison_is_exempt(self):
        project = self.fixture(
            "def check(distance, limit, tol):\n"
            "    return distance <= limit + tol\n"
        )
        assert list(float_comparison_violations(project)) == []

    def test_zero_sign_guard_is_exempt(self):
        project = self.fixture(
            "def check(distance):\n"
            "    return distance > 0.0\n"
        )
        assert list(float_comparison_violations(project)) == []

    def test_equality_against_zero_is_not_a_sign_guard(self):
        project = self.fixture(
            "def check(distance):\n"
            "    return distance == 0.0\n"
        )
        assert len(list(float_comparison_violations(project))) == 1

    def test_taint_flows_through_assignment(self):
        project = self.fixture(
            "def check(query, poi, limit):\n"
            "    gap = query.distance_to(poi)\n"
            "    doubled = gap * 2.0\n"
            "    return doubled < limit\n"
        )
        found = list(float_comparison_violations(project))
        assert len(found) == 1
        assert found[0][0].lineno == 4

    def test_untainted_comparison_is_ignored(self):
        project = self.fixture(
            "def check(count, limit):\n"
            "    return count < limit\n"
        )
        assert list(float_comparison_violations(project)) == []

    def test_noqa_suppresses_through_the_driver(self):
        project = self.fixture(
            "def check(distance, limit):\n"
            "    return distance < limit  # repro: noqa(RPR011)\n"
        )
        analysis = deep.analyze_project(project)
        assert violations_of(analysis, "RPR011") == []

    def test_head_tree_is_clean(self, head_analysis):
        assert violations_of(head_analysis, "RPR011") == []


# ----------------------------------------------------------------------
# RPR012: lemma conformance
# ----------------------------------------------------------------------
class TestLemmaConformance:
    def test_head_tree_conforms(self, head_analysis):
        assert list(lemma_conformance_violations(head_analysis.project)) == []

    def test_self_check_scopes_are_not_vacuous(self, head_analysis):
        """Taint rot would silently hollow out the self-check; guard it.

        Each scope must be pinned by real evidence: collected comparison
        sites, or (for the multi-peer verifier, which certifies through
        a delegated call instead of a comparison) a call entry in the
        lemma table.
        """
        sites = []
        for module in head_analysis.project.modules.values():
            sites.extend(collect_comparison_sites(module))
        for scope in SELF_CHECK_SCOPES:
            has_site = any(
                site.qualname == scope or site.qualname.startswith(scope + ".")
                for site in sites
            )
            has_call_entry = any(
                entry.is_call_entry and entry.qualname == scope
                for entry in LEMMA_TABLE
            )
            assert has_site or has_call_entry, f"nothing pins {scope}"

    def test_lemma_32_direction_flip_is_caught_statically(self, head_analysis):
        """The acceptance mutation: ``<=`` -> ``<`` in _verify_single_peer.

        The comparison appears once per batch branch (the small-batch
        list path and the ndarray path); the global replace flips both
        and the conformance check must report each flipped site.
        """
        source = head_analysis.project.get("repro.core.verification").source
        site_count = source.count("distance + delta <= certain_radius")
        assert site_count == 2
        mutated = head_analysis.project.replace_source(
            "repro.core.verification",
            source.replace(
                "distance + delta <= certain_radius",
                "distance + delta < certain_radius",
            ),
        )
        findings = [
            message
            for _, _, message in lemma_conformance_violations(mutated)
            if "Lemma 3.2" in message
        ]
        assert len(findings) == site_count
        for finding in findings:
            assert "direction violates" in finding
            assert "requires `<=`" in finding

    def test_direction_flip_surfaces_through_full_driver(self, head_analysis):
        source = head_analysis.project.get("repro.core.verification").source
        mutated = head_analysis.project.replace_source(
            "repro.core.verification",
            source.replace(
                "distance + delta <= certain_radius",
                "distance + delta < certain_radius",
            ),
        )
        analysis = deep.analyze_project(mutated, cached=head_analysis.graph)
        flagged = violations_of(analysis, "RPR012")
        assert any("Lemma 3.2" in v.message for v in flagged)
        # The flip must not double-report as a raw comparison.
        assert violations_of(analysis, "RPR011") == []

    def test_dropping_covers_disk_is_caught(self, head_analysis):
        source = head_analysis.project.get("repro.core.verification").source
        assert "region.covers_disk(target)" in source
        mutated = head_analysis.project.replace_source(
            "repro.core.verification",
            source.replace("region.covers_disk(target)", "True"),
        )
        findings = [
            message
            for _, _, message in lemma_conformance_violations(mutated)
            if "covers_disk" in message
        ]
        assert len(findings) == 1
        assert "Lemma 3.8" in findings[0]

    def test_deleting_a_pinned_comparison_reports_stale_entry(self, head_analysis):
        source = head_analysis.project.get("repro.core.heap").source
        mutated = head_analysis.project.replace_source(
            "repro.core.heap",
            source.replace(
                "entry.distance < worst.distance", "bool(entry.distance)"
            ),
        )
        findings = [
            message
            for _, _, message in lemma_conformance_violations(mutated)
            if "stale lemma table entry" in message
        ]
        assert len(findings) == 1
        assert "CandidateHeap._insert" in findings[0]

    def test_uncovered_comparison_in_scope_is_reported(self, head_analysis):
        source = head_analysis.project.get("repro.core.heap").source
        mutated = head_analysis.project.replace_source(
            "repro.core.heap",
            source.replace(
                "entry.distance < worst.distance",
                "entry.distance < worst.distance + 1e-12",
            ),
        )
        findings = [
            message
            for _, _, message in lemma_conformance_violations(mutated)
            if "not covered by the lemma table" in message
        ]
        assert len(findings) == 1

    def test_table_and_rendering_cover_both_entry_kinds(self):
        lines = lemma_table_lines()
        assert len(lines) == len(LEMMA_TABLE)
        assert any("must call `covers_disk`" in line for line in lines)
        assert any("Lemma 3.2" in line for line in lines)


# ----------------------------------------------------------------------
# RPR013: layering contracts
# ----------------------------------------------------------------------
class TestLayering:
    def test_upward_import_is_flagged_once_per_line(self):
        project = project_from_sources(
            {
                "repro.geometry.gadget": (
                    "from repro.core.heap import alpha, beta, gamma\n"
                ),
                "repro.core.heap": "alpha = beta = gamma = 1\n",
            }
        )
        found = list(layer_violations(build_import_graph(project)))
        assert len(found) == 1
        record, message = found[0]
        assert record.source == "repro.geometry.gadget"
        assert "layer" in message

    def test_deferred_import_is_sanctioned(self):
        project = project_from_sources(
            {
                "repro.geometry.gadget": (
                    "def lazy():\n"
                    "    from repro.core.heap import alpha\n"
                    "    return alpha\n"
                ),
                "repro.core.heap": "alpha = 1\n",
            }
        )
        assert list(layer_violations(build_import_graph(project))) == []

    def test_static_analysis_zone_may_not_import_product_code(self):
        project = project_from_sources(
            {
                "repro.analysis.callgraph": "import repro.core.heap\n",
                "repro.core.heap": "alpha = 1\n",
            }
        )
        found = list(layer_violations(build_import_graph(project)))
        assert len(found) == 1
        assert "must run on broken trees" in found[0][1]

    def test_top_level_cycle_is_reported(self):
        project = project_from_sources(
            {
                "repro.core.ping": "import repro.core.pong\n",
                "repro.core.pong": "import repro.core.ping\n",
            }
        )
        found = list(cycle_violations(build_import_graph(project)))
        assert len(found) == 1
        assert "import cycle" in found[0][1]

    def test_head_tree_has_no_layer_violations(self, head_analysis):
        assert violations_of(head_analysis, "RPR013") == []

    def test_importing_repro_io_does_not_load_experiments(self):
        """The lazy figures export keeps repro.io at its declared layer."""
        code = (
            "import sys\n"
            "import repro.io\n"
            "assert 'repro.experiments' not in sys.modules\n"
            "from repro.io import save_figure\n"
            "assert callable(save_figure)\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr


# ----------------------------------------------------------------------
# effects engine details (unit level)
# ----------------------------------------------------------------------
class TestEffectInference:
    def effects_for(self, sources):
        project = project_from_sources(sources)
        graph = build_call_graph(project)
        return infer_effects(
            project, graph, import_graph=build_import_graph(project)
        )

    def test_mutation_propagates_only_through_mutated_parameter(self):
        effects = self.effects_for(
            {
                "repro.testing.oracles": (
                    "def probe(region, point):\n"
                    "    return region.classify(point)\n"
                    "\n"
                    "\n"
                    "class Region:\n"
                    "    def classify(self, point):\n"
                    "        self.cache = {}\n"
                    "        return point\n"
                )
            }
        )
        probe = effects["repro.testing.oracles.probe"]
        assert probe.has(Effect.MUTATES_ARG)
        # Only the receiver is tainted: ``point`` lands on an unmutated
        # parameter of ``classify``.
        assert probe.mutated_params == {"region"}

    def test_name_match_requires_import_reachability(self):
        effects = self.effects_for(
            {
                # Same method name as the mutator below, but the module
                # never imports it, so the call cannot dispatch there.
                "repro.geometry.shapes": (
                    "def collect(result, value):\n"
                    "    result.add(value)\n"
                    "    return result\n"
                ),
                "repro.core.heap": (
                    "class CandidateHeap:\n"
                    "    def add(self, entry):\n"
                    "        self.entries += [entry]\n"
                ),
            }
        )
        collect = effects["repro.geometry.shapes.collect"]
        # ``result.add`` matches the builtin set/list mutator catalogue,
        # so the direct effect stays; the point is that the *chain* must
        # not cite the unreachable CandidateHeap.
        witness = collect.effects[Effect.MUTATES_ARG]
        assert "CandidateHeap" not in witness.description

    def test_purity_and_determinism_front_ends_agree_with_driver(self):
        sources = {
            "repro.testing.oracles": (
                "def sneaky(items):\n"
                "    items.append(1)\n"
            ),
            "repro.core.clockwork": (
                "import time\n"
                "\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
        }
        project = project_from_sources(sources)
        graph = build_call_graph(project)
        effects = infer_effects(
            project, graph, import_graph=build_import_graph(project)
        )
        impure = [info.qualname for info, _, _ in purity_violations(graph, effects)]
        nondet = [info.qualname for info, _ in determinism_violations(graph, effects)]
        assert impure == ["repro.testing.oracles.sneaky"]
        assert nondet == ["repro.core.clockwork.stamp"]


# ----------------------------------------------------------------------
# baseline ratchet and facts cache
# ----------------------------------------------------------------------
class TestBaseline:
    def make(self, path, line, code, message):
        return Violation(path, line, 0, code, message)

    def test_key_is_line_number_free(self):
        a = self.make("src/x.py", 3, "RPR008", "dead")
        b = self.make("src/x.py", 99, "RPR008", "dead")
        assert deep.baseline_key(a) == deep.baseline_key(b)

    def test_partition_new_baselined_stale(self):
        known = self.make("src/x.py", 1, "RPR008", "known finding")
        fresh = self.make("src/y.py", 2, "RPR011", "fresh finding")
        baseline = [deep.baseline_key(known), "src/gone.py: RPR009 vanished"]
        new, baselined, stale = deep.partition_violations([known, fresh], baseline)
        assert new == [fresh]
        assert baselined == [known]
        assert stale == ["src/gone.py: RPR009 vanished"]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.txt"
        violations = [self.make("src/x.py", 5, "RPR010", "probe")]
        deep.save_baseline(path, violations)
        assert deep.load_baseline(path) == [deep.baseline_key(violations[0])]
        # Comment header lines are skipped on load.
        assert path.read_text().startswith("#")

    def test_missing_baseline_is_empty(self, tmp_path):
        assert deep.load_baseline(tmp_path / "absent.txt") == []


class TestFactsCache:
    def test_round_trip_preserves_liveness(self, head_analysis):
        from repro.analysis.callgraph import CallGraph

        restored = CallGraph.facts_from_json(head_analysis.graph.facts_to_json())
        rebuilt = build_call_graph(head_analysis.project, restored)
        assert {i.qualname for i in rebuilt.dead()} == {
            i.qualname for i in head_analysis.graph.dead()
        }

    def test_stale_cache_degrades_to_rebuild(self, head_analysis):
        source = head_analysis.project.get("repro.core.heap").source
        mutated = head_analysis.project.replace_source(
            "repro.core.heap", source + "\n\ndef freshly_dead():\n    return 0\n"
        )
        rebuilt = build_call_graph(mutated, head_analysis.graph)
        assert "repro.core.heap.freshly_dead" in {
            i.qualname for i in rebuilt.dead()
        }

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        assert deep.load_cached_graph(path) is None


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------
class TestDeepCli:
    def run_cli(self, *args, cwd=None):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis.cli", *args],
            cwd=cwd or REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )

    def test_list_rules_includes_deep_catalogue(self):
        proc = self.run_cli("--list-rules", "--deep")
        assert proc.returncode == 0
        for code in ("RPR008", "RPR011", "RPR013"):
            assert code in proc.stdout

    def test_head_is_clean_and_stale_entries_fail(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        clean = self.run_cli("--deep", "--quiet", "--baseline", str(baseline))
        assert clean.returncode == 0, clean.stdout + clean.stderr
        baseline.write_text("src/repro/core/heap.py: RPR008 long gone\n")
        stale = self.run_cli("--deep", "--baseline", str(baseline))
        assert stale.returncode == 1
        assert "stale baseline entry" in stale.stderr

    def test_deep_outside_repo_root_is_a_usage_error(self, tmp_path):
        proc = self.run_cli("--deep", cwd=tmp_path)
        assert proc.returncode == 2
        assert "src/repro not found" in proc.stderr
