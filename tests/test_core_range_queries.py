"""Tests for repro.core.range_queries (Section 5 future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachedQueryResult
from repro.core.host import MobileHost
from repro.core.range_queries import sharing_range_query
from repro.core.senn import ResolutionTier, SennConfig
from repro.core.server import SpatialDatabaseServer
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def random_world(seed, poi_count=40, extent=10.0):
    rng = np.random.default_rng(seed)
    pois = [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, poi_count), rng.uniform(0, extent, poi_count))
        )
    ]
    return rng, pois


def true_range(pois, location, radius):
    return sorted(
        (location.distance_to(p), payload)
        for p, payload in pois
        if location.distance_to(p) <= radius
    )


def knn_cache(pois, location, k):
    ordered = sorted((location.distance_to(p), i, p) for i, (p, _) in enumerate(pois))
    neighbors = tuple(NeighborResult(p, pois[i][1], d) for d, i, p in ordered[:k])
    return CachedQueryResult(location, neighbors)


def range_cache(pois, location, radius):
    within = sorted(
        (location.distance_to(p), i, p)
        for i, (p, _) in enumerate(pois)
        if location.distance_to(p) <= radius
    )
    neighbors = tuple(NeighborResult(p, pois[i][1], d) for d, i, p in within)
    return CachedQueryResult(location, neighbors, known_radius=radius)


CONFIG = SennConfig(k=3, transmission_range=5.0, cache_capacity=10)


class TestKnownRadius:
    def test_range_cache_certain_radius(self):
        _, pois = random_world(0)
        cache = range_cache(pois, Point(5, 5), 2.0)
        assert cache.certain_radius == 2.0

    def test_empty_range_cache_still_certifies(self):
        """Knowing a region is empty is knowledge."""
        cache = CachedQueryResult(Point(0, 0), (), known_radius=3.0)
        assert not cache.is_empty()
        assert cache.certain_radius == 3.0

    def test_known_radius_below_farthest_rejected(self):
        neighbors = (NeighborResult(Point(2, 0), "a", 2.0),)
        with pytest.raises(ValueError):
            CachedQueryResult(Point(0, 0), neighbors, known_radius=1.0)

    def test_negative_known_radius_rejected(self):
        with pytest.raises(ValueError):
            CachedQueryResult(Point(0, 0), (), known_radius=-1.0)


class TestSharingRangeQuery:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            sharing_range_query(Point(0, 0), -1.0, None, [], CONFIG)

    def test_single_peer_covering(self):
        _, pois = random_world(1)
        q = Point(5, 5)
        peer = range_cache(pois, Point(5.1, 5.0), 3.0)
        result = sharing_range_query(q, 1.0, None, [peer], CONFIG)
        assert result.tier is ResolutionTier.SINGLE_PEER
        got = sorted((n.distance, n.payload) for n in result.neighbors)
        want = true_range(pois, q, 1.0)
        assert [p for _, p in got] == [p for _, p in want]

    def test_own_cache_covering(self):
        _, pois = random_world(2)
        q = Point(5, 5)
        own = range_cache(pois, Point(5.05, 5.0), 3.0)
        result = sharing_range_query(q, 1.0, own, [], CONFIG)
        assert result.tier is ResolutionTier.LOCAL_CACHE

    def test_multi_peer_covering(self):
        """Two half-covering peers jointly answer the range query."""
        _, pois = random_world(3)
        q = Point(5, 5)
        left = range_cache(pois, Point(3.8, 5.0), 2.0)
        right = range_cache(pois, Point(6.2, 5.0), 2.0)
        # Neither covers disk(q, 1.4) alone (1.4 + 1.2 > 2.0).
        result = sharing_range_query(q, 1.4, None, [left, right], CONFIG)
        assert result.tier is ResolutionTier.MULTI_PEER
        got = [n.payload for n in result.neighbors]
        want = [p for _, p in true_range(pois, q, 1.4)]
        assert sorted(got) == sorted(want)

    def test_server_fallback(self):
        _, pois = random_world(4)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(5, 5)
        result = sharing_range_query(q, 2.0, None, [], CONFIG, server=server)
        assert result.tier is ResolutionTier.SERVER
        assert result.server_pages > 0
        got = [(round(n.distance, 9), n.payload) for n in result.neighbors]
        want = [(round(d, 9), p) for d, p in true_range(pois, q, 2.0)]
        assert got == want

    def test_no_server_returns_empty(self):
        result = sharing_range_query(Point(0, 0), 1.0, None, [], CONFIG)
        assert result.tier is ResolutionTier.SERVER
        assert result.neighbors == []

    def test_knn_cache_usable_for_small_radius(self):
        """A plain kNN cache covers range queries inside Dist(P, n_k)."""
        _, pois = random_world(5)
        q = Point(5, 5)
        peer = knn_cache(pois, Point(5.02, 5.0), 10)
        radius = peer.certain_radius - q.distance_to(peer.query_location) - 0.01
        assert radius > 0
        result = sharing_range_query(q, radius, None, [peer], CONFIG)
        assert result.answered_by_peers
        got = sorted(n.payload for n in result.neighbors)
        want = sorted(p for _, p in true_range(pois, q, radius))
        assert got == want

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_peer_answers_always_exact(self, seed):
        """Whenever peers answer, the range result equals brute force."""
        rng, pois = random_world(seed)
        q = Point(float(rng.uniform(2, 8)), float(rng.uniform(2, 8)))
        caches = []
        for _ in range(int(rng.integers(0, 4))):
            loc = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            if rng.uniform() < 0.5:
                caches.append(range_cache(pois, loc, float(rng.uniform(0.5, 3.0))))
            else:
                caches.append(knn_cache(pois, loc, int(rng.integers(1, 10))))
        radius = float(rng.uniform(0.1, 2.5))
        result = sharing_range_query(q, radius, None, caches, CONFIG)
        if result.answered_by_peers:
            got = sorted(n.payload for n in result.neighbors)
            want = sorted(p for _, p in true_range(pois, q, radius))
            assert got == want


class TestHostRangeQueries:
    def test_host_range_flow_and_cache_reuse(self):
        _, pois = random_world(9)
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(k=3, transmission_range=1.0, cache_capacity=50)
        host = MobileHost(1, Point(5, 5), config)
        first = host.query_range(2.0, peers=[], server=server)
        assert first.tier is ResolutionTier.SERVER
        # Second, smaller-radius query answered from the own cached disk.
        second = host.query_range(1.0, peers=[], server=server)
        assert second.tier is ResolutionTier.LOCAL_CACHE
        assert server.queries_served == 1

    def test_host_range_result_shared_with_peer(self):
        _, pois = random_world(10)
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(k=3, transmission_range=1.0, cache_capacity=50)
        veteran = MobileHost(1, Point(5, 5), config)
        veteran.query_range(2.0, peers=[], server=server)
        newcomer = MobileHost(2, Point(5.1, 5.0), config)
        result = newcomer.query_range(1.0, peers=[veteran], server=server)
        assert result.tier is ResolutionTier.SINGLE_PEER
        assert server.queries_served == 1

    def test_range_cache_boosts_knn_sharing(self):
        """A cached range result also verifies kNN queries (wider circle)."""
        _, pois = random_world(11)
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(k=2, transmission_range=1.0, cache_capacity=50)
        veteran = MobileHost(1, Point(5, 5), config)
        veteran.query_range(3.0, peers=[], server=server)
        newcomer = MobileHost(2, Point(5.05, 5.0), config)
        result = newcomer.query_knn(k=2, peers=[veteran], server=server)
        assert result.tier in (
            ResolutionTier.SINGLE_PEER,
            ResolutionTier.MULTI_PEER,
        )
        q = newcomer.position
        want = sorted(q.distance_to(p) for p, _ in pois)[:2]
        assert [n.distance for n in result.neighbors][:2] == pytest.approx(want)
