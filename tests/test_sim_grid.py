"""Tests for repro.sim.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.sim.grid import UniformGrid

coord = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestUniformGrid:
    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            UniformGrid(0.0)

    def test_insert_and_len(self):
        grid = UniformGrid(1.0)
        grid.insert("a", Point(0, 0))
        grid.insert("b", Point(5, 5))
        assert len(grid) == 2
        assert "a" in grid

    def test_reinsert_moves(self):
        grid = UniformGrid(1.0)
        grid.insert("a", Point(0, 0))
        grid.insert("a", Point(10, 10))
        assert len(grid) == 1
        assert grid.position_of("a") == Point(10, 10)
        assert grid.within_range(Point(0, 0), 1.0) == []

    def test_remove(self):
        grid = UniformGrid(1.0)
        grid.insert("a", Point(0, 0))
        grid.remove("a")
        assert len(grid) == 0
        grid.remove("missing")  # no error

    def test_update_same_cell(self):
        grid = UniformGrid(10.0)
        grid.insert("a", Point(1, 1))
        grid.update("a", Point(2, 2))
        assert grid.position_of("a") == Point(2, 2)
        assert grid.within_range(Point(2, 2), 0.5) == ["a"]

    def test_update_cross_cell(self):
        grid = UniformGrid(1.0)
        grid.insert("a", Point(0.5, 0.5))
        grid.update("a", Point(5.5, 5.5))
        assert grid.within_range(Point(5.5, 5.5), 0.1) == ["a"]
        assert grid.within_range(Point(0.5, 0.5), 0.1) == []

    def test_update_unknown_inserts(self):
        grid = UniformGrid(1.0)
        grid.update("new", Point(1, 1))
        assert "new" in grid

    def test_within_range_excludes(self):
        grid = UniformGrid(1.0)
        grid.insert("me", Point(0, 0))
        grid.insert("you", Point(0.1, 0))
        found = grid.within_range(Point(0, 0), 1.0, exclude="me")
        assert found == ["you"]

    def test_within_range_negative_radius(self):
        grid = UniformGrid(1.0)
        with pytest.raises(ValueError):
            grid.within_range(Point(0, 0), -1.0)

    def test_boundary_inclusion(self):
        grid = UniformGrid(1.0)
        grid.insert("edge", Point(2.0, 0.0))
        assert grid.within_range(Point(0, 0), 2.0) == ["edge"]

    def test_clear(self):
        grid = UniformGrid(1.0)
        grid.insert("a", Point(0, 0))
        grid.clear()
        assert len(grid) == 0

    @given(
        st.lists(st.tuples(coord, coord), max_size=60),
        st.tuples(coord, coord),
        st.floats(min_value=0.0, max_value=30.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, items, center, radius, cell_size):
        grid = UniformGrid(cell_size)
        for i, (x, y) in enumerate(items):
            grid.insert(i, Point(x, y))
        center_point = Point(*center)
        expected = sorted(
            i
            for i, (x, y) in enumerate(items)
            if center_point.distance_to(Point(x, y)) <= radius
        )
        found = sorted(grid.within_range(center_point, radius))
        assert found == expected
