"""Golden regression: page-access histories are pinned byte-for-byte.

The vectorized index rewrite promises that *page counts stay exactly
unchanged* (the paper's Figure 17 metric).  This suite freezes the full
:class:`~repro.index.pagestats.PageAccessCounter` history — every
per-query ``AccessBreakdown``, in order — for a fixed workload over the
golden scenario corpus plus two larger seed trees, and compares the live
code against the committed snapshot ``tests/golden/page_histories.json``.

The snapshot was generated from the scalar (pre-vectorization)
implementation, so a green run proves the rewrite is page-identical,
not just statistically close.  Regenerate (only when the workload
itself changes, never to paper over a drift) with::

    PYTHONPATH=src python tests/test_golden_page_history.py --regen
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Tuple

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import (
    NeighborResult,
    PruningBounds,
    incremental_nearest,
    k_nearest_depth_first,
    k_nearest_einn,
    poi_tie_key,
)
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree, RTreeConfig
from repro.obs import OBS
from repro.testing.scenarios import Scenario, ScenarioGen, decode_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
SNAPSHOT_PATH = GOLDEN_DIR / "page_histories.json"

#: Generated scenarios folded into the corpus (fixed seed, one per family,
#: plus a second lap so both tree build paths appear per family).
_GEN_SEED = 20260808
_GEN_INDICES = tuple(range(10))


def _golden_scenarios() -> List[Tuple[str, Scenario]]:
    items: List[Tuple[str, Scenario]] = []
    for path in sorted(GOLDEN_DIR.glob("*.scenario")):
        text = "\n".join(
            line
            for line in path.read_text().splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        )
        items.append((path.stem, decode_scenario(text)))
    gen = ScenarioGen(seed=_GEN_SEED)
    for index in _GEN_INDICES:
        items.append((f"gen-{_GEN_SEED}-{index}", gen.generate(index)))
    return items


def _build_tree(pois: List[Tuple[Point, Any]]) -> RTree:
    # Same alternation rule as the difftest harness: even POI counts take
    # the STR bulk path, odd counts the dynamic R* insert path.
    if len(pois) % 2 == 0:
        return RTree.bulk_load(list(pois))
    tree = RTree()
    for point, payload in pois:
        tree.insert(point, payload)
    return tree


def _brute_force(
    query: Point, pois: List[Tuple[Point, Any]]
) -> List[NeighborResult]:
    ranked = sorted(
        (
            NeighborResult(point, payload, math.hypot(point.x - query.x, point.y - query.y))
            for point, payload in pois
        ),
        key=lambda r: (r.distance, poi_tie_key(r.payload)),
    )
    return ranked


def _scenario_history(scenario: Scenario) -> Dict[str, Any]:
    pois = [(Point(x, y), pid) for x, y, pid in scenario.pois]
    query = Point(*scenario.query)
    tree = _build_tree(pois)
    counter = PageAccessCounter()
    k = scenario.k
    ranked = _brute_force(query, pois)
    kth = ranked[min(k, len(ranked)) - 1].distance

    counter.start_query()
    list(incremental_nearest(tree, query, counter))
    counter.finish_query()

    counter.start_query()
    k_nearest_depth_first(tree, query, k, counter)
    counter.finish_query()

    counter.start_query()
    k_nearest_einn(tree, query, k, counter=counter)
    counter.finish_query()

    # EINN with genuine pruning bounds: everything strictly inside half
    # the k-th distance is client-known (certain), the k-th distance caps
    # the search from above.
    lower = kth / 2.0
    known = [r for r in ranked if r.distance < lower]
    counter.start_query()
    k_nearest_einn(
        tree,
        query,
        k,
        bounds=PruningBounds(lower=lower, upper=kth),
        known_certain=known,
        counter=counter,
    )
    counter.finish_query()

    counter.start_query()
    tree.range_search(
        BoundingBox(query.x - kth, query.y - kth, query.x + kth, query.y + kth),
        counter,
    )
    counter.finish_query()

    counter.start_query()
    tree.circle_search(query, kth, counter)
    counter.finish_query()

    return {"history": [_breakdown_row(b) for b in counter.history]}


def _breakdown_row(breakdown: Any) -> List[int]:
    return [
        breakdown.total,
        breakdown.index_nodes,
        breakdown.leaf_nodes,
        breakdown.data_records,
        breakdown.buffer_hits,
        breakdown.buffer_misses,
    ]


def _seed_tree_workloads() -> Dict[str, Any]:
    """Two larger trees (multi-level) with a fixed query battery.

    Also pins the global ``rtree.node_reads`` observability counters for
    the whole battery — the regression demanded by the pagestats fix: a
    vectorized whole-node scan must still bill exactly one node read.
    """
    import numpy as np

    out: Dict[str, Any] = {}
    rng = np.random.default_rng(987123)
    bulk_coords = rng.uniform(0.0, 30.0, size=(3000, 2))
    insert_coords = rng.uniform(0.0, 30.0, size=(701, 2))
    queries = [
        (float(x), float(y)) for x, y in rng.uniform(0.0, 30.0, size=(25, 2))
    ]

    trees = {
        "bulk-3000": RTree.bulk_load(
            [(Point(float(x), float(y)), i) for i, (x, y) in enumerate(bulk_coords)],
            RTreeConfig(max_entries=30),
        ),
    }
    dynamic = RTree(RTreeConfig(max_entries=30))
    for i, (x, y) in enumerate(insert_coords):
        dynamic.insert(Point(float(x), float(y)), i)
    trees["insert-701"] = dynamic

    for name, tree in trees.items():
        counter = PageAccessCounter()
        previous_enabled = OBS.enabled
        OBS.enabled = True
        registry = OBS.registry
        leaf_counter = registry.counter("rtree.node_reads", kind="leaf")
        index_counter = registry.counter("rtree.node_reads", kind="index")
        base_leaf, base_index = leaf_counter.value, index_counter.value
        try:
            for qx, qy in queries:
                query = Point(qx, qy)
                counter.start_query()
                k_nearest_depth_first(tree, query, 8, counter)
                counter.finish_query()
                counter.start_query()
                k_nearest_einn(tree, query, 8, counter=counter)
                counter.finish_query()
                counter.start_query()
                tree.circle_search(query, 2.0, counter)
                counter.finish_query()
                counter.start_query()
                tree.range_search(
                    BoundingBox(qx - 1.5, qy - 1.5, qx + 1.5, qy + 1.5), counter
                )
                counter.finish_query()
            node_reads = {
                "leaf": leaf_counter.value - base_leaf,
                "index": index_counter.value - base_index,
            }
        finally:
            OBS.enabled = previous_enabled
        out[name] = {
            "height": tree.height,
            "history": [_breakdown_row(b) for b in counter.history],
            "node_reads": node_reads,
        }
    return out


def build_snapshot() -> Dict[str, Any]:
    return {
        "scenarios": {
            name: _scenario_history(scenario)
            for name, scenario in _golden_scenarios()
        },
        "seed_trees": _seed_tree_workloads(),
    }


@pytest.fixture(scope="module")
def snapshot() -> Dict[str, Any]:
    if not SNAPSHOT_PATH.exists():
        pytest.fail(f"missing golden snapshot {SNAPSHOT_PATH}")
    return json.loads(SNAPSHOT_PATH.read_text())


@pytest.fixture(scope="module")
def live() -> Dict[str, Any]:
    return build_snapshot()


def test_snapshot_covers_all_golden_scenarios(snapshot: Dict[str, Any]) -> None:
    expected = {name for name, _ in _golden_scenarios()}
    assert set(snapshot["scenarios"]) == expected


@pytest.mark.parametrize("name", [name for name, _ in _golden_scenarios()])
def test_scenario_page_history_is_byte_identical(
    name: str, snapshot: Dict[str, Any], live: Dict[str, Any]
) -> None:
    assert live["scenarios"][name] == snapshot["scenarios"][name]


@pytest.mark.parametrize("tree_name", ["bulk-3000", "insert-701"])
def test_seed_tree_page_history_is_byte_identical(
    tree_name: str, snapshot: Dict[str, Any], live: Dict[str, Any]
) -> None:
    assert live["seed_trees"][tree_name] == snapshot["seed_trees"][tree_name]


def test_seed_tree_node_reads_pinned(
    snapshot: Dict[str, Any], live: Dict[str, Any]
) -> None:
    for tree_name, data in snapshot["seed_trees"].items():
        assert live["seed_trees"][tree_name]["node_reads"] == data["node_reads"]


def main() -> None:
    SNAPSHOT_PATH.write_text(
        json.dumps(build_snapshot(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {SNAPSHOT_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        main()
    else:
        print("pass --regen to rewrite the golden snapshot")
