"""Tests for repro.service.batching: shared traversals stay exact.

The batching contract has two halves: answers are *bit-identical* to
what each request would get from ``knn_query_detailed`` on its own, and
the page bill amortizes -- node reads split across the group while
shipped records stay exact per client.
"""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.service.batching import BatchExecutor
from repro.service.protocol import KnnRequest

CELL = 0.25


def make_pois(count=400, seed=0, extent=4.0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, extent, size=(count, 2))
    return [(Point(float(x), float(y)), f"poi-{i}") for i, (x, y) in enumerate(coords)]


def make_server(pois):
    return SpatialDatabaseServer.from_points(pois, algorithm=ServerAlgorithm.EINN)


def cluster(seed, n, anchor=Point(2.05, 2.05), spread=CELL / 8.0):
    rng = np.random.default_rng(seed)
    return [
        anchor.translated(float(rng.uniform(0, spread)), float(rng.uniform(0, spread)))
        for _ in range(n)
    ]


def answer_key(neighbors):
    return tuple((n.point.x, n.point.y, n.payload, n.distance) for n in neighbors)


class TestExactness:
    def test_batched_answers_match_direct_bit_for_bit(self):
        pois = make_pois()
        batched = BatchExecutor(make_server(pois), cell_size=CELL)
        direct = make_server(pois)
        points = cluster(seed=1, n=6)
        requests = [KnnRequest(i + 1, p, 5) for i, p in enumerate(points)]
        answers = batched.execute(requests)
        assert all(a.batch_size == len(points) for a in answers)
        for point, answer in zip(points, answers):
            expected = direct.knn_query_detailed(point, 5)
            assert answer_key(answer.neighbors) == answer_key(expected.neighbors)

    def test_batched_respects_bounds_and_known_certain(self):
        pois = make_pois(seed=3)
        direct = make_server(pois)
        points = cluster(seed=4, n=4)
        requests = []
        for i, p in enumerate(points):
            base = direct.knn_query(p, 3)
            known = tuple(base[:1])
            bounds = PruningBounds(0.0, base[-1].distance * 1.5)
            requests.append(KnnRequest(i + 1, p, 3, bounds, known))
        batched = BatchExecutor(make_server(pois), cell_size=CELL)
        reference = make_server(pois)
        for request, answer in zip(requests, batched.execute(requests)):
            expected = reference.knn_query_detailed(
                request.query, request.k, request.bounds, request.known_certain
            )
            assert answer_key(answer.neighbors) == answer_key(expected.neighbors)

    def test_tight_upper_bound_truncates_in_batch_too(self):
        pois = make_pois(seed=5)
        direct = make_server(pois)
        points = cluster(seed=6, n=3)
        # An upper bound below the 2nd NN leaves at most one neighbor.
        requests = [
            KnnRequest(
                i + 1, p, 4, PruningBounds(0.0, direct.knn_query(p, 2)[1].distance * 0.99)
            )
            for i, p in enumerate(points)
        ]
        reference = make_server(pois)
        for request, answer in zip(requests, BatchExecutor(make_server(pois), cell_size=CELL).execute(requests)):
            expected = reference.knn_query_detailed(
                request.query, request.k, request.bounds
            )
            assert answer_key(answer.neighbors) == answer_key(expected.neighbors)
            assert len(answer.neighbors) <= 1

    def test_singleton_group_is_the_direct_path(self):
        pois = make_pois(seed=7)
        served = make_server(pois)
        reference = make_server(pois)
        query = Point(1.3, 2.7)
        answer = BatchExecutor(served, cell_size=CELL).execute(
            [KnnRequest(1, query, 5)]
        )[0]
        expected = reference.knn_query_detailed(query, 5)
        assert answer.batch_size == 1
        assert answer_key(answer.neighbors) == answer_key(expected.neighbors)
        assert answer.pages == expected.pages

    def test_far_apart_requests_do_not_merge(self):
        pois = make_pois(seed=8)
        served = make_server(pois)
        requests = [
            KnnRequest(1, Point(0.3, 0.3), 4),
            KnnRequest(2, Point(3.6, 3.6), 4),
        ]
        answers = BatchExecutor(served, cell_size=CELL).execute(requests)
        assert [a.batch_size for a in answers] == [1, 1]


class TestAmortization:
    def test_shares_sum_to_the_shared_traversal(self):
        pois = make_pois(seed=9)
        server = make_server(pois)
        executor = BatchExecutor(server, cell_size=CELL)
        requests = [KnnRequest(i + 1, p, 5) for i, p in enumerate(cluster(seed=10, n=5))]
        before = len(server.counter.history)
        answers = executor.execute(requests)
        recorded = server.counter.history[before:]
        assert len(recorded) == 1  # one shared traversal, one history entry
        assert sum(a.pages.index_nodes for a in answers) == recorded[0].index_nodes
        assert sum(a.pages.leaf_nodes for a in answers) == recorded[0].leaf_nodes
        assert sum(a.pages.data_records for a in answers) == recorded[0].data_records
        for answer in answers:
            pages = answer.pages
            assert pages.total == pages.index_nodes + pages.leaf_nodes + pages.data_records

    def test_amortized_pages_decrease_with_concurrency(self):
        pois = make_pois(count=800, seed=11)
        points = cluster(seed=12, n=8)
        costs = []
        for level in (1, 2, 4, 8):
            executor = BatchExecutor(make_server(pois), cell_size=CELL)
            answers = executor.execute(
                [KnnRequest(i + 1, p, 6) for i, p in enumerate(points[:level])]
            )
            costs.append(sum(a.pages.total for a in answers) / level)
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] < costs[0]

    def test_known_certain_records_are_not_billed(self):
        pois = make_pois(seed=13)
        direct = make_server(pois)
        points = cluster(seed=14, n=3)
        known = {p: tuple(direct.knn_query(p, 2)) for p in points}
        executor = BatchExecutor(make_server(pois), cell_size=CELL)
        requests = [
            KnnRequest(i + 1, p, 4, PruningBounds(), known[p])
            for i, p in enumerate(points)
        ]
        for request, answer in zip(requests, executor.execute(requests)):
            shipped = sum(
                1 for n in answer.neighbors
                if n not in request.known_certain
            )
            assert answer.pages.data_records == shipped


class TestValidation:
    def test_cell_size_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchExecutor(make_server(make_pois()), cell_size=0.0)

    def test_empty_wave_is_empty(self):
        executor = BatchExecutor(make_server(make_pois()), cell_size=CELL)
        assert executor.execute([]) == []
