"""The differential runner: smoke budget, fault injection, shrinking, CLI."""

import pytest

import repro.core.verification as verification
from repro.analysis.runtime import SANITIZER
from repro.testing.cli import main as difftest_main
from repro.testing.difftest import (
    CheckFailure,
    repro_snippet,
    run_scenario,
    shrink_scenario,
)
from repro.testing.scenarios import ScenarioGen, decode_scenario, encode_scenario

#: A handcrafted Lemma 3.2 boundary-equality scenario: peer at 0, query at
#: 0.25, candidate at 0.5, all on one horizontal line, so
#: ``Dist(Q, n_i) + Dist(Q, P) == Dist(P, n_i)`` holds bit-for-bit.
BOUNDARY = (
    "repro1;k=1;cap=8;cov=exact;sides=32;own=0;exact=1;net=0;"
    "q=0.25:0.0;pois=0.5:0.0:p0;peers=0.0:0.0:1"
)


def flipped_verify_single(query, cache, heap):
    """``_verify_single_peer`` with Lemma 3.2's ``<=`` flipped to ``<``."""
    if cache.is_empty():
        return 0
    delta = query.distance_to(cache.query_location)
    certain_radius = cache.certain_radius
    certified = 0
    candidates = sorted(cache.neighbors, key=lambda n: query.distance_to(n.point))
    for neighbor in candidates:
        distance = query.distance_to(neighbor.point)
        certain = distance + delta < certain_radius  # injected off-by-one
        if certain:
            certified += 1
        heap.add(neighbor.point, neighbor.payload, distance, certain)
    return certified


class TestSmoke:
    def test_difftest_budget_is_green(self, difftest_report):
        """The PR-gate smoke: the configured budget must pass all checks."""
        assert difftest_report.ok, getattr(difftest_report, "log", "")
        assert difftest_report.scenarios_run > 0

    def test_all_core_checks_exercised(self):
        """A modest budget must reach every always-on check family."""
        stats = {}
        for _, scenario in ScenarioGen(seed=3).stream(60):
            run_scenario(scenario, stats)
        for check in (
            "server-inn",
            "server-depth-first",
            "server-einn-plain",
            "single-peer-lemma",
            "multi-peer-lemma",
            "vectorized-verify",
            "senn",
            "senn-certified-ranks",
            "einn-bounds",
            "einn-page-accesses",
            "naive-sharing",
            "range-query",
            "window-query",
            "snnn",
        ):
            assert stats.get(check, 0) > 0, f"{check} never ran"


class TestFaultInjection:
    def test_flipped_lemma32_is_caught_and_shrinks_small(self, monkeypatch):
        """The acceptance gate: ``<=`` -> ``<`` in verify_single must be
        detected and shrink to a tiny reproduction."""
        monkeypatch.setattr(SANITIZER, "enabled", False)
        monkeypatch.setattr(
            verification, "_verify_single_peer", flipped_verify_single
        )
        caught = None
        for index, scenario in ScenarioGen(seed=7).stream(100):
            failures = run_scenario(scenario)
            if failures:
                caught = (scenario, failures)
                break
        assert caught is not None, "flipped Lemma 3.2 not detected in 100 scenarios"
        scenario, failures = caught
        assert any(f.check == "single-peer-completeness" for f in failures)
        shrunk = shrink_scenario(scenario, failures[0].check)
        assert len(shrunk.pois) <= 6
        assert len(shrunk.peers) <= 2
        assert any(
            f.check == failures[0].check for f in run_scenario(shrunk)
        ), "shrunk scenario no longer reproduces the failure"

    def test_handcrafted_boundary_scenario_catches_flip(self, monkeypatch):
        scenario = decode_scenario(BOUNDARY)
        assert run_scenario(scenario) == []
        monkeypatch.setattr(SANITIZER, "enabled", False)
        monkeypatch.setattr(
            verification, "_verify_single_peer", flipped_verify_single
        )
        checks = {f.check for f in run_scenario(scenario)}
        assert "single-peer-completeness" in checks


class TestShrinking:
    def test_shrink_preserves_failure_and_validity(self, monkeypatch):
        monkeypatch.setattr(SANITIZER, "enabled", False)
        monkeypatch.setattr(
            verification, "_verify_single_peer", flipped_verify_single
        )
        scenario = next(
            s for _, s in ScenarioGen(seed=7).stream(100) if run_scenario(s)
        )
        check = run_scenario(scenario)[0].check
        shrunk = shrink_scenario(scenario, check)
        # Still a valid, encodable scenario that fails the same check.
        assert decode_scenario(encode_scenario(shrunk)) == shrunk
        assert any(f.check == check for f in run_scenario(shrunk))
        assert len(shrunk.pois) <= len(scenario.pois)
        assert len(shrunk.peers) <= len(scenario.peers)

    def test_shrink_of_green_scenario_is_identity(self):
        scenario = decode_scenario(BOUNDARY)
        assert shrink_scenario(scenario, "senn") == scenario

    def test_repro_snippet_is_executable(self):
        snippet = repro_snippet(decode_scenario(BOUNDARY), "single-peer-completeness")
        namespace = {}
        exec(snippet, namespace)  # the printed regression test must run
        namespace["test_difftest_regression"]()

    def test_check_failure_render(self):
        failure = CheckFailure("senn", "rank 0 differs")
        assert failure.render() == "[senn] rank 0 differs"


class TestCli:
    def test_budget_run_green(self, capsys):
        assert difftest_main(["--budget", "40", "--seed", "3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "40 scenarios" in out
        assert "0 failing" in out

    def test_replay_green_scenario(self, capsys):
        assert difftest_main(["--replay", BOUNDARY]) == 0
        assert "passed all checks" in capsys.readouterr().out

    def test_replay_invalid_string(self, capsys):
        assert difftest_main(["--replay", "not-a-scenario"]) == 2

    def test_failing_run_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(SANITIZER, "enabled", False)
        monkeypatch.setattr(
            verification, "_verify_single_peer", flipped_verify_single
        )
        artifact = tmp_path / "repros.md"
        code = difftest_main(
            [
                "--budget",
                "50",
                "--seed",
                "7",
                "--quiet",
                "--max-failures",
                "1",
                "--artifact",
                str(artifact),
            ]
        )
        assert code == 1
        text = artifact.read_text()
        assert "replay: `repro1;" in text
        assert "def test_difftest_regression" in text
        out = capsys.readouterr().out
        assert "FAIL scenario" in out

    def test_rejects_negative_budget(self):
        with pytest.raises(SystemExit):
            difftest_main(["--budget", "-1"])
