"""Tests for repro.core.heap (the candidate heap H, Table 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heap import CandidateHeap, HeapState
from repro.geometry.point import Point


def entry(x, dist, certain, payload=None):
    return (Point(x, 0.0), payload if payload is not None else f"poi-{x}", dist, certain)


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CandidateHeap(0)

    def test_negative_distance_rejected(self):
        heap = CandidateHeap(3)
        with pytest.raises(ValueError):
            heap.add(Point(0, 0), "a", -1.0, True)

    def test_empty_state(self):
        heap = CandidateHeap(3)
        assert heap.state() is HeapState.EMPTY
        assert len(heap) == 0
        assert heap.last_certain_distance() is None
        assert heap.last_entry_distance() is None
        assert heap.max_distance() is None

    def test_add_certain(self):
        heap = CandidateHeap(3)
        assert heap.add(*entry(1, 1.0, True))
        assert heap.certain_count == 1
        assert heap.is_certain(Point(1, 0), "poi-1")

    def test_table1_layout(self):
        """Reproduce Table 1: two certain then two uncertain, sorted."""
        heap = CandidateHeap(4)
        heap.add(Point(1, 0), "n2-P1", 2.0 ** 0.5, True)
        heap.add(Point(2, 0), "n1-P1", 3.0 ** 0.5, True)
        heap.add(Point(3, 0), "n3-P1", 5.0 ** 0.5, False)
        heap.add(Point(4, 0), "n3-P2", 8.0 ** 0.5, False)
        entries = heap.entries()
        assert [e.payload for e in entries] == ["n2-P1", "n1-P1", "n3-P1", "n3-P2"]
        assert [e.certain for e in entries] == [True, True, False, False]
        assert heap.state() is HeapState.FULL_MIXED


class TestOrdering:
    def test_certain_sorted_ascending(self):
        heap = CandidateHeap(5)
        for x, d in [(1, 3.0), (2, 1.0), (3, 2.0)]:
            heap.add(*entry(x, d, True))
        distances = [e.distance for e in heap.certain_entries()]
        assert distances == sorted(distances)

    def test_uncertain_sorted_ascending(self):
        heap = CandidateHeap(5)
        for x, d in [(1, 3.0), (2, 1.0), (3, 2.0)]:
            heap.add(*entry(x, d, False))
        distances = [e.distance for e in heap.entries()]
        assert distances == sorted(distances)


class TestReplacement:
    def test_certain_replaces_uncertain_when_full(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 1.0, False))
        heap.add(*entry(2, 2.0, False))
        assert heap.is_full
        heap.add(*entry(3, 3.0, True))
        assert heap.certain_count == 1
        assert heap.uncertain_count == 1
        # The farthest uncertain entry was evicted.
        payloads = {e.payload for e in heap.entries()}
        assert payloads == {"poi-1", "poi-3"}

    def test_uncertain_rejected_when_certain_full(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 1.0, True))
        heap.add(*entry(2, 2.0, True))
        assert not heap.add(*entry(3, 0.5, False))
        assert heap.uncertain_count == 0

    def test_closer_uncertain_displaces_farther(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 5.0, False))
        heap.add(*entry(2, 6.0, False))
        assert heap.add(*entry(3, 1.0, False))
        payloads = {e.payload for e in heap.entries()}
        assert payloads == {"poi-1", "poi-3"}

    def test_farther_uncertain_rejected_when_full(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 1.0, False))
        heap.add(*entry(2, 2.0, False))
        assert not heap.add(*entry(3, 9.0, False))

    def test_excess_certain_dropped(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 1.0, True))
        heap.add(*entry(2, 2.0, True))
        heap.add(*entry(3, 1.5, True))
        assert heap.certain_count == 2
        distances = [e.distance for e in heap.certain_entries()]
        assert distances == [1.0, 1.5]


class TestDeduplication:
    def test_duplicate_uncertain_is_noop(self):
        heap = CandidateHeap(3)
        heap.add(*entry(1, 1.0, False))
        assert heap.add(*entry(1, 1.0, False))
        assert len(heap) == 1

    def test_uncertain_upgraded_to_certain(self):
        heap = CandidateHeap(3)
        heap.add(*entry(1, 1.0, False))
        heap.add(*entry(1, 1.0, True))
        assert heap.certain_count == 1
        assert heap.uncertain_count == 0

    def test_certain_not_downgraded(self):
        heap = CandidateHeap(3)
        heap.add(*entry(1, 1.0, True))
        heap.add(*entry(1, 1.0, False))
        assert heap.certain_count == 1


class TestStates:
    def test_complete(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 1.0, True))
        heap.add(*entry(2, 2.0, True))
        assert heap.state() is HeapState.COMPLETE
        assert heap.is_complete()

    def test_full_uncertain(self):
        heap = CandidateHeap(2)
        heap.add(*entry(1, 1.0, False))
        heap.add(*entry(2, 2.0, False))
        assert heap.state() is HeapState.FULL_UNCERTAIN

    def test_partial_mixed(self):
        heap = CandidateHeap(3)
        heap.add(*entry(1, 1.0, True))
        heap.add(*entry(2, 2.0, False))
        assert heap.state() is HeapState.PARTIAL_MIXED

    def test_partial_certain(self):
        heap = CandidateHeap(3)
        heap.add(*entry(1, 1.0, True))
        assert heap.state() is HeapState.PARTIAL_CERTAIN

    def test_partial_uncertain(self):
        heap = CandidateHeap(3)
        heap.add(*entry(1, 1.0, False))
        assert heap.state() is HeapState.PARTIAL_UNCERTAIN


class TestHeapProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.booleans(),
            ),
            max_size=40,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants_under_arbitrary_adds(self, capacity, additions):
        heap = CandidateHeap(capacity)
        for x, dist, certain in additions:
            heap.add(Point(float(x), 0.0), f"poi-{x}", dist, certain)
        # Size bounded by capacity.
        assert len(heap) <= capacity
        # Uncertain entries only while certain slots remain.
        if heap.uncertain_count > 0:
            assert heap.certain_count < capacity
        # Each bucket sorted ascending.
        certain_d = [e.distance for e in heap.certain_entries()]
        assert certain_d == sorted(certain_d)
        all_entries = heap.entries()
        uncertain_d = [e.distance for e in all_entries if not e.certain]
        assert uncertain_d == sorted(uncertain_d)
        # No duplicate POIs.
        keys = [e.key() for e in all_entries]
        assert len(keys) == len(set(keys))
