"""Service-era concurrency stress tests under the race sanitizer.

Two claims are checked here, both against a *live* server:

1. **Runtime lock-order graph ⊆ static lock-order graph.**  Execution
   with ``REPRO_SANITIZE=1`` records every observed lock nesting; the
   static pass (``repro-lint --concurrency``) predicts a superset.  An
   observed edge the static graph lacks means either an analysis gap or
   a genuinely dynamic acquisition order -- both are test failures.
2. **Exactness under contention.**  ≥8 threads mixing per-thread
   loopback sessions and TCP clients against one shared server must
   produce bit-identical answers to a single-threaded in-process
   reference, with zero sanitizer reports (no lock inversions, no
   unguarded metric mutations).

Hypothesis drives the seed so different runs exercise different POI
sets and query mixes while any failure is replayable.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import deep
from repro.analysis.concurrency import run_concurrency
from repro.analysis.locks import canonical_lock_name
from repro.analysis.runtime import SANITIZER, sanitized
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.geometry.point import Point
from repro.obs import observed
from repro.service.asyncserver import BackgroundServer, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.engine import QueryService
from repro.service.transport import LoopbackTransport, TcpTransport

from tests.test_analysis_concurrency import REPO_ROOT, SRC_ROOT


def make_pois(count, seed, extent=4.0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, extent, size=(count, 2))
    return [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(coords)
    ]


def make_server(pois):
    return SpatialDatabaseServer.from_points(pois, algorithm=ServerAlgorithm.EINN)


def answer_key(neighbors):
    return tuple(
        (n.point.x, n.point.y, n.payload, n.distance) for n in neighbors
    )


@pytest.fixture(scope="module")
def static_lock_graph():
    analysis = run_concurrency(
        [SRC_ROOT], deep.default_reference_roots(REPO_ROOT)
    )
    assert analysis.ok
    return analysis.lock_graph


class TestRuntimeMatchesStatic:
    def test_observed_edges_are_predicted(self, static_lock_graph):
        """Drive the service, then diff runtime edges against static."""
        pois = make_pois(200, seed=3)
        reference = make_server(pois)
        SANITIZER.reset_concurrency()
        try:
            with sanitized(), observed():
                with BackgroundServer(make_server(pois), ServiceConfig()) as running:
                    client = ServiceClient(TcpTransport(*running.address))
                    try:
                        for query in (Point(1.0, 1.0), Point(3.2, 0.4)):
                            answer = client.knn_query_detailed(query, 5)
                            expected = reference.knn_query_detailed(query, 5)
                            assert answer_key(answer.neighbors) == answer_key(
                                expected.neighbors
                            )
                        # Force the reconnect-and-resend path so the
                        # transport's full locking surface executes.
                        client._transport._close_socket()
                        answer = client.knn_query_detailed(Point(2.0, 3.9), 5)
                        expected = reference.knn_query_detailed(Point(2.0, 3.9), 5)
                        assert answer_key(answer.neighbors) == answer_key(
                            expected.neighbors
                        )
                    finally:
                        client.close()
            observed_edges = [
                (canonical_lock_name(outer), canonical_lock_name(inner))
                for outer, inner in SANITIZER.lock_order_edges()
            ]
            assert observed_edges, "sanitizer recorded no lock nestings"
            assert static_lock_graph.missing_edges(observed_edges) == []
            assert SANITIZER.lock_order_violations == []
            assert SANITIZER.metric_violations == []
        finally:
            SANITIZER.reset_concurrency()

    def test_transport_metrics_edge_is_exercised(self, static_lock_graph):
        """The headline edge exists statically AND fires at runtime."""
        edge = ("TcpTransport._lock", "MetricsRegistry._lock")
        assert edge in static_lock_graph.edges
        pois = make_pois(100, seed=5)
        SANITIZER.reset_concurrency()
        try:
            with sanitized(), observed():
                with BackgroundServer(make_server(pois), ServiceConfig()) as running:
                    client = ServiceClient(TcpTransport(*running.address))
                    try:
                        client._transport._close_socket()  # force a resend
                        client.knn_query_detailed(Point(1.0, 1.0), 3)
                    finally:
                        client.close()
            observed_edges = {
                (canonical_lock_name(outer), canonical_lock_name(inner))
                for outer, inner in SANITIZER.lock_order_edges()
            }
            assert edge in observed_edges
        finally:
            SANITIZER.reset_concurrency()


class TestStress:
    @settings(
        max_examples=2,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_mixed_clients_exact_under_contention(self, seed):
        """≥8 threads, loopback + TCP mixed, bit-identical answers."""
        pois = make_pois(250, seed=seed)
        reference = make_server(pois)
        rng = np.random.default_rng(seed + 1)
        queries = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0.0, 4.0, size=(12, 2))
        ]
        expected = {
            (i, k): answer_key(reference.knn_query(q, k))
            for i, q in enumerate(queries)
            for k in (3, 7)
        }

        failures = []
        barrier = threading.Barrier(8)

        def run_client(make_transport, worker_id):
            client = ServiceClient(make_transport())
            try:
                barrier.wait(timeout=30.0)
                for i, query in enumerate(queries):
                    for k in (3, 7):
                        got = answer_key(
                            client.knn_query_detailed(query, k).neighbors
                        )
                        if got != expected[(i, k)]:
                            failures.append((worker_id, i, k))
            finally:
                client.close()

        SANITIZER.reset_concurrency()
        try:
            with sanitized(), observed():
                served = make_server(pois)
                with BackgroundServer(served, ServiceConfig()) as running:
                    def tcp_factory():
                        return TcpTransport(*running.address)

                    def loopback_factory():
                        # Per-thread server instance: loopback sessions
                        # must not race the event-loop thread's batches
                        # on one engine, only the *answers* are shared.
                        return LoopbackTransport(
                            QueryService(make_server(pois))
                        )

                    threads = []
                    for worker_id in range(8):
                        factory = (
                            tcp_factory if worker_id % 2 == 0 else loopback_factory
                        )
                        thread = threading.Thread(
                            target=run_client, args=(factory, worker_id)
                        )
                        thread.start()
                        threads.append(thread)
                    for thread in threads:
                        thread.join(timeout=60.0)
                    assert not any(t.is_alive() for t in threads)
            assert failures == []
            assert SANITIZER.lock_order_violations == []
            assert SANITIZER.metric_violations == []
        finally:
            SANITIZER.reset_concurrency()
