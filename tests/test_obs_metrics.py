"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a="x") is registry.counter("c", a="x")
        assert registry.counter("c", a="x") is not registry.counter("c", a="y")

    def test_label_order_is_canonicalized(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a="1", b="2") is registry.counter(
            "c", b="2", a="1"
        )

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        registry.counter("c", k=4).inc()
        assert registry.value("c", k="4") == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0

    def test_gauge_may_go_negative(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.dec(3.0)
        assert gauge.value == -3.0


class TestHistogramBucketEdges:
    def test_boundary_value_lands_in_boundary_bucket(self):
        histogram = MetricsRegistry().histogram("h", boundaries=(1.0, 2.0, 5.0))
        histogram.observe(1.0)  # le semantics: exactly 1.0 -> first bucket
        assert histogram.bucket_counts == [1, 0, 0, 0]
        histogram.observe(2.0)
        assert histogram.bucket_counts == [1, 1, 0, 0]
        histogram.observe(5.0)
        assert histogram.bucket_counts == [1, 1, 1, 0]

    def test_between_boundaries_goes_up(self):
        histogram = MetricsRegistry().histogram("h", boundaries=(1.0, 2.0, 5.0))
        histogram.observe(1.5)
        assert histogram.bucket_counts == [0, 1, 0, 0]

    def test_overflow_bucket_catches_above_last_boundary(self):
        histogram = MetricsRegistry().histogram("h", boundaries=(1.0, 2.0, 5.0))
        histogram.observe(5.000001)
        histogram.observe(1e9)
        assert histogram.bucket_counts == [0, 0, 0, 2]

    def test_below_first_boundary_goes_to_first_bucket(self):
        histogram = MetricsRegistry().histogram("h", boundaries=(1.0, 2.0))
        histogram.observe(0.0)
        histogram.observe(-1.0)
        assert histogram.bucket_counts == [2, 0, 0]

    def test_count_sum_mean(self):
        histogram = MetricsRegistry().histogram("h", boundaries=(10.0,))
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.count == 2
        assert histogram.sum == 6.0
        assert histogram.mean == 3.0

    def test_boundaries_must_be_strictly_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h3", boundaries=())

    def test_default_boundaries_are_time_buckets(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.boundaries == DEFAULT_TIME_BUCKETS_S

    def test_conflicting_boundaries_raise(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=DEFAULT_COUNT_BUCKETS)
        with pytest.raises(ValueError):
            registry.histogram("h", boundaries=(1.0, 2.0))
        # Re-requesting with the same boundaries (or none) is fine.
        assert registry.histogram("h", boundaries=DEFAULT_COUNT_BUCKETS).count == 0
        assert registry.histogram("h").boundaries == DEFAULT_COUNT_BUCKETS

    def test_default_bucket_ladders_are_valid(self):
        assert list(DEFAULT_TIME_BUCKETS_S) == sorted(DEFAULT_TIME_BUCKETS_S)
        assert list(DEFAULT_COUNT_BUCKETS) == sorted(DEFAULT_COUNT_BUCKETS)


class TestRegistry:
    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m")

    def test_value_of_absent_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0

    def test_value_of_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0,))
        with pytest.raises(TypeError):
            registry.value("h")

    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("q", tier="server").inc(3)
        registry.counter("q", tier="peer").inc(2)
        assert registry.total("q") == 5.0

    def test_label_values_groups_by_label(self):
        registry = MetricsRegistry()
        registry.counter("q", tier="server").inc(3)
        registry.counter("q", tier="peer").inc(2)
        registry.counter("q").inc()  # unlabelled: skipped (no tier key)
        assert registry.label_values("q", "tier") == {
            "server": 3.0,
            "peer": 2.0,
        }

    def test_iteration_and_snapshot_are_sorted_and_json_stable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", z="2", y="1").inc(2)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a{y=1,z=2}"] == 2.0
        assert snapshot["b"] == 1.0
        assert snapshot["h"] == {
            "count": 1,
            "sum": 0.5,
            "boundaries": [1.0],
            "buckets": [1, 0],
        }
        # Two identical workloads -> byte-identical JSON.
        other = MetricsRegistry()
        other.histogram("h", boundaries=(1.0,)).observe(0.5)
        other.counter("a", y="1", z="2").inc(2)
        other.counter("b").inc()
        assert json.dumps(snapshot, sort_keys=True) == json.dumps(
            other.snapshot(), sort_keys=True
        )

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.value("c") == 0.0

    def test_len_counts_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1")
        registry.counter("c", a="2")
        registry.gauge("g")
        assert len(registry) == 3

    def test_direct_construction_types(self):
        # The registry is the intended constructor, but the classes are
        # public and must agree with it.
        assert Counter("c", ()).value == 0.0
        assert Gauge("g", ()).value == 0.0
        assert Histogram("h", (), (1.0,)).count == 0


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        import threading

        registry = MetricsRegistry()
        rounds, workers = 2000, 8

        def hammer():
            counter = registry.counter("hits")
            gauge = registry.gauge("depth")
            histogram = registry.histogram("lat", boundaries=(1.0, 2.0))
            for _ in range(rounds):
                counter.inc()
                gauge.inc(2.0)
                gauge.dec(1.0)
                histogram.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("hits") == float(rounds * workers)
        assert registry.value("depth") == float(rounds * workers)
        histogram = registry.histogram("lat", boundaries=(1.0, 2.0))
        assert histogram.count == rounds * workers

    def test_instruments_share_the_registry_lock(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h", boundaries=(1.0,))
        assert counter._lock is registry._lock
        assert gauge._lock is registry._lock
        assert histogram._lock is registry._lock

    def test_direct_construction_uses_private_lock(self):
        counter = Counter("c", ())
        other = Counter("c2", ())
        assert counter._lock is not other._lock
        counter.inc(2.0)
        assert counter.value == 2.0

    def test_iteration_does_not_hold_the_lock(self):
        # The registry lock is non-reentrant; consuming the iterator
        # while creating metrics mid-iteration must not deadlock.
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("b").inc()
        for metric in registry:
            registry.counter(f"derived.{metric.name}").inc()
        assert registry.value("derived.a") == 1.0
