"""Tests for the loopback transport: served == direct, bit for bit.

The loopback transport runs the full wire codec (encode -> decode ->
engine -> encode -> decode) against the same server object a direct
call would use, so every answer -- neighbors, page breakdowns, SENN
pipelines built on top -- must match the in-process path exactly.  This
is the in-tree version of the difftest's ``service-*`` checks.
"""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import PruningBounds
from repro.core.senn import SennConfig, senn_query
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import QueryService
from repro.service.transport import LoopbackTransport, QueryTransport


def make_pois(count=350, seed=0, extent=4.0):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, extent, size=(count, 2))
    return [(Point(float(x), float(y)), f"poi-{i}") for i, (x, y) in enumerate(coords)]


def make_server(pois):
    return SpatialDatabaseServer.from_points(pois, algorithm=ServerAlgorithm.EINN)


def served_and_direct(pois):
    served = make_server(pois)
    client = ServiceClient(LoopbackTransport(QueryService(served)))
    return served, client, make_server(pois)


def answer_key(neighbors):
    return tuple((n.point.x, n.point.y, n.payload, n.distance) for n in neighbors)


class TestQueriesMatchDirect:
    def test_knn_bit_identical_including_pages(self):
        pois = make_pois()
        _, client, direct = served_and_direct(pois)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            query = Point(float(rng.uniform(0, 4)), float(rng.uniform(0, 4)))
            served_answer = client.knn_query_detailed(query, 6)
            direct_answer = direct.knn_query_detailed(query, 6)
            assert answer_key(served_answer.neighbors) == answer_key(direct_answer.neighbors)
            assert served_answer.pages == direct_answer.pages

    def test_knn_with_bounds_and_known_certain(self):
        pois = make_pois(seed=1)
        _, client, direct = served_and_direct(pois)
        query = Point(1.7, 2.3)
        seeded = direct.knn_query(query, 4)
        bounds = PruningBounds(seeded[0].distance, seeded[-1].distance * 2.0)
        known = tuple(seeded[:2])
        reference = make_server(pois)
        served_answer = client.knn_query_detailed(query, 4, bounds, known)
        direct_answer = reference.knn_query_detailed(query, 4, bounds, known)
        assert answer_key(served_answer.neighbors) == answer_key(direct_answer.neighbors)
        assert served_answer.pages == direct_answer.pages

    def test_range_and_window_match(self):
        pois = make_pois(seed=2)
        _, client, direct = served_and_direct(pois)
        ranged = client.range_query_detailed(Point(2.0, 2.0), 0.7)
        expected = direct.range_query_detailed(Point(2.0, 2.0), 0.7)
        assert answer_key(ranged.neighbors) == answer_key(expected.neighbors)
        assert ranged.pages == expected.pages
        window = BoundingBox(0.5, 0.5, 2.5, 1.5)
        windowed = client.window_query_detailed(window)
        expected = direct.window_query_detailed(window)
        assert answer_key(windowed.neighbors) == answer_key(expected.neighbors)
        assert windowed.pages == expected.pages

    def test_incremental_stream_prefix_matches(self):
        pois = make_pois(seed=3)
        _, client, direct = served_and_direct(pois)
        query = Point(3.1, 0.9)
        stream = client.incremental_query(query)
        prefix = [next(stream) for _ in range(10)]
        stream.close()
        assert answer_key(prefix) == answer_key(direct.knn_query(query, 10))


class TestSennOverLoopback:
    def test_senn_matches_direct_senn(self):
        pois = make_pois(seed=4)
        _, client, direct = served_and_direct(pois)
        config = SennConfig(k=4, cache_capacity=10)
        query = Point(1.1, 3.0)
        served_result = senn_query(query, config.k, None, [], config, server=client)
        direct_result = senn_query(query, config.k, None, [], config, server=direct)
        assert answer_key(served_result.neighbors) == answer_key(direct_result.neighbors)
        assert served_result.tier is direct_result.tier
        assert served_result.server_pages == direct_result.server_pages

    def test_senn_overfetch_trims_to_k_over_the_wire(self):
        """Cache policy 2: the surplus lives in ``prefetched``, not the answer."""
        pois = make_pois(seed=5)
        _, client, direct = served_and_direct(pois)
        config = SennConfig(k=3, cache_capacity=10)
        query = Point(2.8, 1.4)
        served_result = senn_query(
            query, config.k, None, [], config, server=client, server_k=10
        )
        direct_result = senn_query(
            query, config.k, None, [], config, server=direct, server_k=10
        )
        assert len(served_result.neighbors) == config.k
        assert answer_key(served_result.neighbors) == answer_key(direct_result.neighbors)
        assert answer_key(served_result.prefetched) == answer_key(direct_result.prefetched)
        assert len(served_result.prefetched) == 10


class TestStreamAccounting:
    def test_closed_stream_folds_into_history_once(self):
        pois = make_pois(seed=6)
        served, client, _ = served_and_direct(pois)
        before = len(served.counter.history)
        stream = client.incremental_query(Point(1.0, 1.0))
        for _ in range(5):
            next(stream)
        stream.close()
        history = served.counter.history[before:]
        assert len(history) == 1
        assert history[0].total > 0
        # Closing again (generator already finished) must not double-fold.
        stream.close()
        assert len(served.counter.history[before:]) == 1

    def test_exhausted_stream_folds_exactly_once(self):
        pois = make_pois(count=25, seed=7)
        served, client, _ = served_and_direct(pois)
        before = len(served.counter.history)
        items = list(client.incremental_query(Point(2.0, 2.0)))
        assert len(items) == len(pois)
        assert len(served.counter.history[before:]) == 1

    def test_session_close_folds_orphaned_streams(self):
        pois = make_pois(seed=8)
        served = make_server(pois)
        service = QueryService(served)
        transport = LoopbackTransport(service)
        client = ServiceClient(transport)
        stream = client.incremental_query(Point(0.5, 0.5))
        next(stream)
        before = len(served.counter.history)
        transport.close()  # closes the session without a StreamClose
        assert len(served.counter.history) == before + 1


class TestTransportContract:
    def test_loopback_satisfies_the_protocol(self):
        service = QueryService(make_server(make_pois(count=20)))
        assert isinstance(LoopbackTransport(service), QueryTransport)

    def test_error_reply_raises_service_error(self):
        pois = make_pois(count=20, seed=9)
        _, client, _ = served_and_direct(pois)
        # A stream id the session never issued.
        from repro.service.protocol import StreamPull, encode_message, decode_message
        from repro.service.protocol import ErrorCode, ErrorReply

        transport = LoopbackTransport(QueryService(make_server(pois)))
        reply = decode_message(transport.request(encode_message(StreamPull(5, 99, 3))))
        assert isinstance(reply, ErrorReply)
        assert reply.code is ErrorCode.BAD_STREAM
        # And the client surfaces it as ServiceError with the code attached.
        failing = ServiceClient(transport)
        with pytest.raises(ServiceError) as excinfo:
            failing._roundtrip(StreamPull(6, 99, 3))
        assert excinfo.value.code is ErrorCode.BAD_STREAM
