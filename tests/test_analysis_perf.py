"""Acceptance tests for ``repro-lint --perf`` (RPR021-RPR026).

Mirrors the structure of ``test_analysis_concurrency.py``:

- fixture projects built with ``project_from_sources`` exercise each
  rule in isolation (positive and negative cases);
- the real tree is analyzed once per module and must be clean at HEAD;
- the acceptance-criteria fault injections (deleting a ``read_node``
  call in the kNN hot path, dropping the session cleanup on the
  connection-drop path, widening an encoder without its decoder) must
  surface as RPR021/RPR022/RPR026 findings *statically*, and an
  undeclared ``Node.entries`` mutation as RPR023;
- the runtime half (the accounting sanitizer: billing attribution,
  subcounter fold-once, the conservation law) is driven over the golden
  scenario corpus and a live loopback server, cross-checking *runtime
  billing is a subset of the static billing model*.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis import deep
from repro.analysis.accounting import (
    ACCOUNTING_RULES,
    accounting_report,
    analyze_accounting,
    run_accounting,
)
from repro.analysis.hotpath import (
    HOTPATH_RULES,
    MUTATION_TABLE,
    MutationEntry,
    analyze_hotpath,
    hotpath_report,
    run_hotpath,
)
from repro.analysis.project import load_project, project_from_sources
from repro.analysis.runtime import SANITIZER, Sanitizer, sanitized
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import k_nearest_einn
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.service.client import ServiceClient
from repro.service.engine import QueryService
from repro.service.transport import LoopbackTransport
from repro.testing.scenarios import ScenarioGen, decode_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def head_accounting():
    """One full accounting run over the real tree, shared by this module."""
    return run_accounting([SRC_ROOT], deep.default_reference_roots(REPO_ROOT))


@pytest.fixture(scope="module")
def head_hotpath():
    """One full hot-path run over the real tree, shared by this module."""
    return run_hotpath([SRC_ROOT], deep.default_reference_roots(REPO_ROOT))


@pytest.fixture(scope="module")
def head_project():
    """The real tree as a Project, for fault-injection mutations."""
    return load_project([SRC_ROOT], deep.default_reference_roots(REPO_ROOT))


def violations_of(analysis, code):
    return [v for v in analysis.violations if v.code == code]


# ----------------------------------------------------------------------
# RPR021: billing discipline
# ----------------------------------------------------------------------
BILLING_PRELUDE = (
    "def read_node(node, counter):\n"
    "    counter.record(node.page_id, node.is_leaf)\n"
    "    return node\n"
    "\n"
    "\n"
)

BILLING_ENTRIES = frozenset(
    {
        "repro.acct.mod.search",
        "repro.acct.mod.bad_search",
        "repro.acct.mod.double",
        "repro.acct.mod.sneaky",
        "repro.acct.mod.naked",
        "repro.acct.mod.caller",
    }
)


def billing_analysis(body, entries=BILLING_ENTRIES):
    project = project_from_sources({"repro.acct.mod": BILLING_PRELUDE + body})
    return analyze_accounting(
        project,
        entry_points=frozenset(entries),
        billing_modules=("repro.acct.mod",),
        protocol_modules=(),
    )


class TestBillingDiscipline:
    def test_metered_scan_is_clean(self):
        analysis = billing_analysis(
            "def search(tree, counter):\n"
            "    node = read_node(tree.root, counter)\n"
            "    for entry in node.entries:\n"
            "        pass\n"
        )
        assert analysis.violations == []
        assert "repro.acct.mod.search" in analysis.checked

    def test_unbilled_scan_is_rpr021(self):
        analysis = billing_analysis(
            "def bad_search(tree, counter):\n"
            "    node = tree.root\n"
            "    for entry in node.entries:\n"
            "        pass\n"
        )
        flagged = violations_of(analysis, "RPR021")
        assert len(flagged) == 1
        assert "never metered" in flagged[0].message

    def test_unmetered_read_node_is_rpr021(self):
        analysis = billing_analysis(
            "def bad_search(tree, counter):\n"
            "    node = read_node(tree.root)\n"
            "    for entry in node.entries:\n"
            "        pass\n"
        )
        flagged = violations_of(analysis, "RPR021")
        # The counter-less read also leaves `node` unbilled, so the
        # follow-on scan is flagged too.
        assert len(flagged) == 2
        assert any("without a counter" in v.message for v in flagged)
        assert any("never metered" in v.message for v in flagged)

    def test_double_billing_is_rpr021(self):
        analysis = billing_analysis(
            "def double(tree, counter):\n"
            "    node = read_node(tree.root, counter)\n"
            "    again = read_node(node, counter)\n"
            "    return again\n"
        )
        flagged = violations_of(analysis, "RPR021")
        assert len(flagged) == 1
        assert "billed twice" in flagged[0].message

    def test_rebind_then_reread_is_clean(self):
        # The self-rebind idiom of a descent loop: X = read_node(X, c).
        analysis = billing_analysis(
            "def search(tree, counter):\n"
            "    node = read_node(tree.root, counter)\n"
            "    node = read_node(node.child, counter)\n"
            "    return node\n"
        )
        assert analysis.violations == []

    def test_chokepoint_bypass_is_rpr021(self):
        analysis = billing_analysis(
            "def sneaky(tree, counter):\n"
            "    counter.record(tree.root.page_id, True)\n"
        )
        flagged = violations_of(analysis, "RPR021")
        assert len(flagged) == 1
        assert "bypassing the read_node chokepoint" in flagged[0].message

    def test_unbilled_arg_to_scanning_callee_is_rpr021(self):
        analysis = billing_analysis(
            "def scan_only(node):\n"
            "    return len(node.entries)\n"
            "\n"
            "\n"
            "def caller(tree, counter):\n"
            "    node = tree.root\n"
            "    return scan_only(node)\n"
        )
        flagged = violations_of(analysis, "RPR021")
        assert len(flagged) == 1
        assert "passes unmetered `node` to `scan_only`" in flagged[0].message

    def test_billed_arg_to_scanning_callee_is_clean(self):
        analysis = billing_analysis(
            "def scan_only(node):\n"
            "    return len(node.entries)\n"
            "\n"
            "\n"
            "def caller(tree, counter):\n"
            "    node = read_node(tree.root, counter)\n"
            "    return scan_only(node)\n"
        )
        assert analysis.violations == []

    def test_unreachable_scope_is_not_checked(self):
        # Same unbilled scan, but no entry point reaches it.
        analysis = billing_analysis(
            "def cold_path(tree):\n"
            "    for entry in tree.root.entries:\n"
            "        pass\n",
            entries=frozenset(),
        )
        assert analysis.violations == []
        assert analysis.checked == set()


# ----------------------------------------------------------------------
# RPR022: subcounter fold-once
# ----------------------------------------------------------------------
def fold_analysis(sources):
    return analyze_accounting(
        project_from_sources(sources),
        entry_points=frozenset(),
        billing_modules=(),
        protocol_modules=(),
    )


class TestFoldOnce:
    def test_local_subcounter_without_finally_is_rpr022(self):
        analysis = fold_analysis(
            {
                "repro.fold.mod": (
                    "def leaky(counter):\n"
                    "    sub = counter.subcounter()\n"
                    "    sub.start_query()\n"
                )
            }
        )
        flagged = violations_of(analysis, "RPR022")
        assert len(flagged) == 1
        assert "not absorbed in a `finally`" in flagged[0].message

    def test_local_subcounter_with_finally_is_clean(self):
        analysis = fold_analysis(
            {
                "repro.fold.mod": (
                    "def careful(counter):\n"
                    "    sub = counter.subcounter()\n"
                    "    try:\n"
                    "        sub.start_query()\n"
                    "    finally:\n"
                    "        counter.absorb(sub.finish_query())\n"
                )
            }
        )
        assert analysis.violations == []

    def test_stored_subcounter_without_fold_method_is_rpr022(self):
        analysis = fold_analysis(
            {
                "repro.fold.mod": (
                    "class Stream:\n"
                    "    def __init__(self, counter):\n"
                    "        self._sub = counter.subcounter()\n"
                )
            }
        )
        flagged = violations_of(analysis, "RPR022")
        assert len(flagged) == 1
        assert "no method of the class absorbs it" in flagged[0].message

    FOLDING_STREAM = (
        "class Stream:\n"
        "    def __init__(self, counter):\n"
        "        self._parent = counter\n"
        "        self._sub = counter.subcounter()\n"
        "\n"
        "    def finalize(self):\n"
        "        self._parent.absorb(self._sub.finish_query())\n"
        "\n"
        "\n"
    )

    def test_acquirer_without_guaranteed_fold_is_rpr022(self):
        analysis = fold_analysis(
            {
                "repro.fold.mod": self.FOLDING_STREAM
                + "def handle(counter):\n"
                "    stream = Stream(counter)\n"
                "    stream.pump()\n"
            }
        )
        flagged = violations_of(analysis, "RPR022")
        assert len(flagged) == 1
        assert "never guarantees `stream.finalize()`" in flagged[0].message

    def test_acquirer_with_finally_fold_is_clean(self):
        analysis = fold_analysis(
            {
                "repro.fold.mod": self.FOLDING_STREAM
                + "def handle(counter):\n"
                "    stream = Stream(counter)\n"
                "    try:\n"
                "        stream.pump()\n"
                "    finally:\n"
                "        stream.finalize()\n"
            }
        )
        assert analysis.violations == []


# ----------------------------------------------------------------------
# RPR026: codec symmetry
# ----------------------------------------------------------------------
CODEC_TEMPLATE = (
    "class Ping:\n"
    "    pass\n"
    "\n"
    "\n"
    "def _enc_ping(w, m):\n"
    "    w.u32(m.a)\n"
    "    w.f64(m.b)\n"
    "\n"
    "\n"
    "def _dec_ping(r):\n"
    "{decoder_body}"
    "\n"
    "\n"
    "_CODECS = {{\n"
    "    Ping: (1, _enc_ping, _dec_ping),\n"
    "}}\n"
)


def codec_analysis(decoder_body):
    project = project_from_sources(
        {"repro.proto.mod": CODEC_TEMPLATE.format(decoder_body=decoder_body)}
    )
    return analyze_accounting(
        project,
        entry_points=frozenset(),
        billing_modules=(),
        protocol_modules=("repro.proto.mod",),
    )


class TestCodecSymmetry:
    def test_symmetric_pair_is_clean(self):
        analysis = codec_analysis("    return Ping(r.u32(), r.f64())\n")
        assert analysis.violations == []

    def test_missing_decoder_field_is_rpr026(self):
        analysis = codec_analysis("    return Ping(r.u32())\n")
        flagged = violations_of(analysis, "RPR026")
        assert len(flagged) == 1
        assert "encoder/decoder drift for `Ping`" in flagged[0].message
        assert "[u32, f64]" in flagged[0].message
        assert "[u32]" in flagged[0].message

    def test_reordered_decoder_fields_are_rpr026(self):
        analysis = codec_analysis("    return Ping(r.f64(), r.u32())\n")
        assert len(violations_of(analysis, "RPR026")) == 1


# ----------------------------------------------------------------------
# RPR023: mirror mutation discipline
# ----------------------------------------------------------------------
MUTATION_SOURCE = {
    "repro.mut.mod": (
        "def add(leaf, entry):\n"
        "    leaf.entries.append(entry)\n"
    )
}

DECLARED = (
    MutationEntry(
        qualname="repro.mut.mod.add",
        kind="append",
        target="leaf.entries",
        strategy="extend-in-place",
        rationale="test fixture",
    ),
)


def mutation_analysis(sources, table):
    return analyze_hotpath(
        project_from_sources(sources),
        entry_points=frozenset(),
        mutation_modules=("repro.mut.mod",),
        table=table,
    )


class TestMirrorMutations:
    def test_undeclared_site_is_rpr023(self):
        analysis = mutation_analysis(MUTATION_SOURCE, table=())
        flagged = violations_of(analysis, "RPR023")
        assert len(flagged) == 1
        assert "not declared in hotpath.MUTATION_TABLE" in flagged[0].message
        assert flagged[0].line == 2

    def test_declared_site_is_clean(self):
        analysis = mutation_analysis(MUTATION_SOURCE, table=DECLARED)
        assert analysis.violations == []
        assert len(analysis.sites) == 1

    def test_stale_table_entry_is_rpr023(self):
        stale = DECLARED + (
            MutationEntry(
                qualname="repro.mut.mod.gone",
                kind="remove",
                target="leaf.entries",
                strategy="drop",
                rationale="no longer exists",
            ),
        )
        analysis = mutation_analysis(MUTATION_SOURCE, table=stale)
        flagged = violations_of(analysis, "RPR023")
        assert len(flagged) == 1
        assert "stale MUTATION_TABLE entry" in flagged[0].message

    def test_rebind_site_is_discovered(self):
        sources = {
            "repro.mut.mod": (
                "def split(node, keep):\n"
                "    node.entries = keep\n"
            )
        }
        analysis = mutation_analysis(sources, table=())
        assert [s.kind for s in analysis.sites] == ["rebind"]
        assert len(violations_of(analysis, "RPR023")) == 1


# ----------------------------------------------------------------------
# RPR024 / RPR025: hot-loop allocations and unguarded obs
# ----------------------------------------------------------------------
def hot_analysis(body):
    project = project_from_sources({"repro.hotm.mod": body})
    return analyze_hotpath(
        project,
        entry_points=frozenset({"repro.hotm.mod.hot"}),
        mutation_modules=(),
        table=(),
    )


class TestHotLoops:
    def test_ndarray_alloc_in_loop_is_rpr024(self):
        analysis = hot_analysis(
            "import numpy as np\n"
            "\n"
            "\n"
            "def hot(items):\n"
            "    for item in items:\n"
            "        buf = np.zeros(4)\n"
            "    return buf\n"
        )
        flagged = violations_of(analysis, "RPR024")
        assert len(flagged) == 1
        assert "np.zeros(...)" in flagged[0].message

    def test_comprehension_outside_loop_is_clean(self):
        analysis = hot_analysis(
            "def hot(items):\n"
            "    out = [item for item in items]\n"
            "    for item in out:\n"
            "        pass\n"
            "    return out\n"
        )
        assert analysis.violations == []

    def test_hot_alloc_suppression_at_origin(self):
        analysis = hot_analysis(
            "def hot(items):\n"
            "    for item in items:\n"
            "        pair = [item, item]  # plain list: not an ndarray\n"
            "        scratch = {k: 0 for k in item}  # repro: hot-alloc(tiny per-item dict)\n"
            "    return scratch\n"
        )
        assert analysis.violations == []

    def test_cold_function_is_not_scanned(self):
        project = project_from_sources(
            {
                "repro.hotm.mod": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def cold(items):\n"
                    "    for item in items:\n"
                    "        buf = np.zeros(4)\n"
                    "    return buf\n"
                )
            }
        )
        analysis = analyze_hotpath(
            project,
            entry_points=frozenset({"repro.hotm.mod.hot"}),
            mutation_modules=(),
            table=(),
        )
        assert analysis.violations == []

    def test_unguarded_obs_in_loop_is_rpr025(self):
        analysis = hot_analysis(
            "def hot(items):\n"
            "    for item in items:\n"
            "        OBS.registry.counter('x').inc()\n"
        )
        flagged = violations_of(analysis, "RPR025")
        assert len(flagged) == 1
        assert "without an" in flagged[0].message

    def test_guarded_obs_in_loop_is_clean(self):
        analysis = hot_analysis(
            "def hot(items):\n"
            "    for item in items:\n"
            "        if OBS.enabled:\n"
            "            OBS.registry.counter('x').inc()\n"
        )
        assert analysis.violations == []

    def test_helper_rooted_call_is_exempt(self):
        # The generation-cache idiom: the helper is the guard.
        analysis = hot_analysis(
            "def hot(items):\n"
            "    for item in items:\n"
            "        _cached_counter().inc()\n"
        )
        assert violations_of(analysis, "RPR025") == []


# ----------------------------------------------------------------------
# the real tree
# ----------------------------------------------------------------------
class TestHeadTree:
    def test_head_accounting_is_clean(self, head_accounting):
        assert head_accounting.violations == []

    def test_head_hotpath_is_clean(self, head_hotpath):
        assert head_hotpath.violations == []

    def test_every_read_node_site_passes_a_counter(self, head_accounting):
        read_sites = [
            s for s in head_accounting.billing_sites if s.kind == "read_node"
        ]
        assert read_sites, "expected read_node billing sites in the tree"
        assert all(site.counter for site in read_sites)

    def test_checked_scopes_cover_the_query_layer(self, head_accounting):
        checked = head_accounting.checked
        assert any(q.endswith("k_nearest_einn") for q in checked)
        assert any(q.endswith("knn_query_detailed") for q in checked)
        assert any(q.endswith("_execute_shared") for q in checked)

    def test_mutation_sites_match_the_declared_table(self, head_hotpath):
        keys = {
            (site.qualname, site.kind, site.target)
            for site in head_hotpath.sites
        }
        assert keys == {(e.qualname, e.kind, e.target) for e in MUTATION_TABLE}

    def test_hot_set_covers_the_entry_points(self, head_hotpath):
        hot = head_hotpath.hot
        assert any(q.endswith("verify_single_peer") for q in hot)
        assert any(q.endswith("incremental_nearest") for q in hot)

    def test_reports_render(self, head_accounting, head_hotpath):
        acct_text = "\n".join(accounting_report(head_accounting))
        assert "billing table" in acct_text
        assert "read_node" in acct_text
        assert "checked scopes" in acct_text
        hot_text = "\n".join(hotpath_report(head_hotpath))
        assert "mutation table" in hot_text
        assert "hot set" in hot_text
        assert "extend-in-place" in hot_text


# ----------------------------------------------------------------------
# acceptance fault injections (static, no execution of mutated code)
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_deleting_a_read_node_call_is_rpr021(self, head_project):
        module = head_project.get("repro.index.knn")
        mutated = module.source.replace(
            "        tree.read_node(node, counter)\n", ""
        )
        assert mutated != module.source
        analysis = analyze_accounting(
            head_project.replace_source("repro.index.knn", mutated)
        )
        flagged = violations_of(analysis, "RPR021")
        assert len(flagged) == 1
        assert "unmetered" in flagged[0].message
        assert "visit" in flagged[0].message

    def test_dropping_session_cleanup_on_drop_path_is_rpr022(self, head_project):
        module = head_project.get("repro.service.asyncserver")
        mutated = module.source.replace(
            "            session.close()\n", "            pass\n"
        )
        assert mutated != module.source
        analysis = analyze_accounting(
            head_project.replace_source("repro.service.asyncserver", mutated)
        )
        flagged = violations_of(analysis, "RPR022")
        assert len(flagged) == 1
        assert "ServiceSession" in flagged[0].message

    def test_encoder_only_field_is_rpr026(self, head_project):
        module = head_project.get("repro.service.protocol")
        mutated = module.source.replace(
            "def _enc_stream_close(w: _Writer, m: StreamClose) -> None:\n"
            "    w.u32(m.request_id)\n"
            "    w.u32(m.stream_id)\n",
            "def _enc_stream_close(w: _Writer, m: StreamClose) -> None:\n"
            "    w.u32(m.request_id)\n"
            "    w.u32(m.stream_id)\n"
            "    w.u32(0)\n",
        )
        assert mutated != module.source
        analysis = analyze_accounting(
            head_project.replace_source("repro.service.protocol", mutated)
        )
        flagged = violations_of(analysis, "RPR026")
        assert len(flagged) == 1
        assert "_enc_stream_close" in flagged[0].message

    def test_undeclared_entries_mutation_is_rpr023(self, head_project):
        module = head_project.get("repro.index.rtree")
        mutated = module.source.replace(
            "        leaf.entries.remove(entry)\n",
            "        leaf.entries.remove(entry)\n"
            "        leaf.entries.append(entry)\n",
        )
        assert mutated != module.source
        analysis = analyze_hotpath(
            head_project.replace_source("repro.index.rtree", mutated)
        )
        flagged = violations_of(analysis, "RPR023")
        assert len(flagged) == 1
        assert "append" in flagged[0].message


# ----------------------------------------------------------------------
# the runtime half: the accounting sanitizer
# ----------------------------------------------------------------------
def _golden_scenarios():
    items = []
    for path in sorted(GOLDEN_DIR.glob("*.scenario")):
        text = "\n".join(
            line
            for line in path.read_text().splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        )
        items.append((path.stem, decode_scenario(text)))
    gen = ScenarioGen(seed=20260808)
    for index in range(10):
        items.append((f"gen-{index}", gen.generate(index)))
    return items


def _allowed_billers(head_accounting):
    """The static billing model as runtime (file, function) pairs.

    Node/scan billing always surfaces at the ``read_node`` chokepoint;
    object billing surfaces at each ``record_object`` call site the
    accounting pass discovered.
    """
    allowed = {("rtree.py", "read_node")}
    for site in head_accounting.billing_sites:
        if site.kind == "record_object":
            allowed.add(
                (
                    site.module.rsplit(".", 1)[-1] + ".py",
                    site.qualname.rsplit(".", 1)[-1],
                )
            )
    return allowed


class TestAccountingSanitizer:
    def test_golden_scenarios_conserve_and_bill_in_model(self, head_accounting):
        scenarios = _golden_scenarios()
        assert len(scenarios) >= 20
        SANITIZER.reset_accounting()
        try:
            with sanitized():
                for _name, scenario in scenarios:
                    pois = [(Point(x, y), pid) for x, y, pid in scenario.pois]
                    tree = RTree.bulk_load(list(pois))
                    counter = PageAccessCounter()
                    query = Point(*scenario.query)
                    counter.start_query()
                    k_nearest_einn(tree, query, scenario.k, counter=counter)
                    counter.finish_query()
                    counter.start_query()
                    tree.circle_search(query, 1.0, counter)
                    counter.finish_query()
                    assert Sanitizer.verify_conservation(counter) == []
            assert SANITIZER.accounting_violations == []
            assert SANITIZER.accounting_leftovers() == []
            assert SANITIZER.billing_callers <= _allowed_billers(head_accounting)
            assert ("rtree.py", "read_node") in SANITIZER.billing_callers
        finally:
            SANITIZER.reset_accounting()

    def test_live_loopback_server_accounting(self, head_accounting):
        rng = np.random.default_rng(7)
        pois = [
            (Point(float(x), float(y)), f"poi-{i}")
            for i, (x, y) in enumerate(rng.uniform(0.0, 4.0, size=(250, 2)))
        ]
        server = SpatialDatabaseServer.from_points(
            pois, algorithm=ServerAlgorithm.EINN
        )
        transport = LoopbackTransport(QueryService(server))
        client = ServiceClient(transport)
        SANITIZER.reset_accounting()
        try:
            with sanitized():
                for seed in range(3):
                    qrng = np.random.default_rng(seed)
                    query = Point(
                        float(qrng.uniform(0, 4)), float(qrng.uniform(0, 4))
                    )
                    client.knn_query_detailed(query, 5)
                client.range_query_detailed(Point(2.0, 2.0), 0.6)
                client.window_query_detailed(BoundingBox(0.5, 0.5, 2.0, 2.0))
                stream = client.incremental_query(Point(1.0, 1.0))
                for _ in range(5):
                    next(stream)
                stream.close()
                # A second stream is deliberately left open: closing the
                # transport (-> the session) must fold it too.
                dangling = client.incremental_query(Point(3.0, 3.0))
                next(dangling)
                transport.close()
            assert SANITIZER.accounting_violations == []
            assert SANITIZER.accounting_leftovers() == []
            assert SANITIZER.billing_callers <= _allowed_billers(head_accounting)
            assert Sanitizer.verify_conservation(server.counter) == []
        finally:
            SANITIZER.reset_accounting()

    def test_double_fold_is_reported(self):
        SANITIZER.reset_accounting()
        try:
            with sanitized():
                counter = PageAccessCounter()
                sub = counter.subcounter()
                sub.start_query()
                sub.record(1, is_leaf=True)
                breakdown = sub.finish_query()
                counter.absorb(breakdown)
                assert SANITIZER.accounting_violations == []
                counter.absorb(breakdown)
            assert len(SANITIZER.accounting_violations) == 1
            assert "twice" in SANITIZER.accounting_violations[0]
        finally:
            SANITIZER.reset_accounting()

    def test_unfolded_subcounter_is_a_leftover(self):
        SANITIZER.reset_accounting()
        try:
            with sanitized():
                counter = PageAccessCounter()
                sub = counter.subcounter()
                sub.start_query()
                sub.record(1, is_leaf=False)
                breakdown = sub.finish_query()
                leftovers = SANITIZER.accounting_leftovers()
                assert len(leftovers) == 1
                assert "never absorbed" in leftovers[0]
                counter.absorb(breakdown)
                assert SANITIZER.accounting_leftovers() == []
        finally:
            SANITIZER.reset_accounting()

    def test_conservation_breach_is_detected(self):
        counter = PageAccessCounter()
        counter.start_query()
        counter.record(1, is_leaf=True)
        counter.finish_query()
        counter.total_accesses += 1  # simulate a lost breakdown
        problems = Sanitizer.verify_conservation(counter)
        assert len(problems) == 1
        assert "history sums to 1" in problems[0]

    def test_reset_accounting_clears_tracking(self):
        SANITIZER.reset_accounting()
        with sanitized():
            counter = PageAccessCounter()
            counter.subcounter()
            assert SANITIZER.accounting_leftovers() != []
            SANITIZER.reset_accounting()
            assert SANITIZER.accounting_leftovers() == []
            assert SANITIZER.billing_callers == set()
            assert SANITIZER.accounting_violations == []

    def test_disabled_sanitizer_records_nothing(self):
        SANITIZER.reset_accounting()
        if not SANITIZER.enabled:
            counter = PageAccessCounter()
            counter.start_query()
            counter.record(1, is_leaf=True)
            counter.finish_query()
            sub = counter.subcounter()
            counter.absorb(sub.finish_query())
            assert SANITIZER.billing_callers == set()
            assert SANITIZER.accounting_leftovers() == []


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestCli:
    def test_perf_flag_is_clean_at_head(self):
        result = _run_cli("--perf")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 new findings" in result.stderr

    def test_report_flag_prints_tables(self):
        result = _run_cli("--perf", "--report", "--quiet")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "billing table" in result.stdout
        assert "mutation table" in result.stdout
        assert "hot set" in result.stdout

    def test_list_rules_includes_perf_catalogue(self):
        result = _run_cli("--list-rules", "--perf")
        assert result.returncode == 0
        for code in (*ACCOUNTING_RULES, *HOTPATH_RULES):
            assert code in result.stdout

    def test_composes_with_deep_and_concurrency(self):
        result = _run_cli("--deep", "--concurrency", "--perf")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "--deep --concurrency --perf" in result.stderr
