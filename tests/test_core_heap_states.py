"""Property tests for the Section 3.3 heap state machine.

Random ``add`` sequences are replayed against :class:`CandidateHeap`
while every observed state transition is checked against the legal
transition matrix :data:`repro.analysis.invariants.HEAP_TRANSITIONS`,
and a scripted battery realizes every reachable edge of the matrix so
the two stay in lock-step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import (
    HEAP_TRANSITIONS,
    check_heap_structure,
    check_heap_transition,
)
from repro.core.heap import CandidateHeap, HeapState
from repro.geometry.point import Point

# Offers drawn from a small pool of POI identities so sequences contain
# duplicate offers and certain upgrades of uncertain entries.
offer_strategy = st.tuples(
    st.integers(min_value=0, max_value=5),  # POI identity
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.booleans(),  # certain flag
)


def replay(capacity, offers):
    """Run ``offers`` through a heap, returning the observed transitions."""
    heap = CandidateHeap(capacity)
    observed = []
    for poi, distance, certain in offers:
        before = heap.state()
        heap.add(Point(float(poi), 0.0), f"poi-{poi}", distance, certain)
        after = heap.state()
        observed.append((before, after))
        check_heap_structure(heap)
    return observed


class TestTransitionMatrixShape:
    def test_matrix_is_total_over_states(self):
        assert set(HEAP_TRANSITIONS) == set(HeapState)
        for successors in HEAP_TRANSITIONS.values():
            assert successors <= set(HeapState)

    def test_complete_is_absorbing(self):
        assert HEAP_TRANSITIONS[HeapState.COMPLETE] == {HeapState.COMPLETE}

    def test_no_transition_revives_uncertainty_after_completion(self):
        for state, successors in HEAP_TRANSITIONS.items():
            if state is HeapState.COMPLETE:
                assert HeapState.FULL_MIXED not in successors


class TestRandomReplay:
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(offer_strategy, max_size=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_observed_transition_is_legal(self, capacity, offers):
        for before, after in replay(capacity, offers):
            check_heap_transition(before, after)

    @given(st.lists(offer_strategy, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_k1_heaps_only_visit_k1_states(self, offers):
        reachable = {
            HeapState.EMPTY,
            HeapState.FULL_UNCERTAIN,
            HeapState.COMPLETE,
        }
        for before, after in replay(1, offers):
            assert {before, after} <= reachable


class TestEveryEdgeIsRealizable:
    """Drive the heap through each matrix edge with a concrete script.

    ``EMPTY -> EMPTY`` is the one legal-but-unreachable edge (an offer to
    an empty heap is always stored); every other edge is realized below,
    so the matrix is exactly the reachable relation plus that self-loop.
    """

    def run_script(self, capacity, offers):
        transitions = replay(capacity, offers)
        return {t for t in transitions}

    def o(self, poi, distance, certain):
        return (poi, distance, certain)

    def test_edges_from_empty(self):
        assert (HeapState.EMPTY, HeapState.PARTIAL_UNCERTAIN) in self.run_script(
            2, [self.o(0, 1.0, False)]
        )
        assert (HeapState.EMPTY, HeapState.PARTIAL_CERTAIN) in self.run_script(
            2, [self.o(0, 1.0, True)]
        )
        assert (HeapState.EMPTY, HeapState.FULL_UNCERTAIN) in self.run_script(
            1, [self.o(0, 1.0, False)]
        )
        assert (HeapState.EMPTY, HeapState.COMPLETE) in self.run_script(
            1, [self.o(0, 1.0, True)]
        )

    def test_edges_from_partial_uncertain(self):
        s = HeapState.PARTIAL_UNCERTAIN
        assert (s, s) in self.run_script(
            3, [self.o(0, 1.0, False), self.o(1, 2.0, False)]
        )
        assert (s, HeapState.PARTIAL_MIXED) in self.run_script(
            3, [self.o(0, 2.0, False), self.o(1, 1.0, True)]
        )
        # Upgrade of the only uncertain entry: same POI re-offered certain.
        assert (s, HeapState.PARTIAL_CERTAIN) in self.run_script(
            3, [self.o(0, 1.0, False), self.o(0, 1.0, True)]
        )
        assert (s, HeapState.FULL_UNCERTAIN) in self.run_script(
            2, [self.o(0, 1.0, False), self.o(1, 2.0, False)]
        )
        assert (s, HeapState.FULL_MIXED) in self.run_script(
            2, [self.o(0, 2.0, False), self.o(1, 1.0, True)]
        )

    def test_edges_from_partial_mixed(self):
        s = HeapState.PARTIAL_MIXED
        base = [self.o(0, 1.0, True), self.o(1, 2.0, False)]
        assert (s, s) in self.run_script(4, base + [self.o(2, 3.0, False)])
        assert (s, HeapState.PARTIAL_CERTAIN) in self.run_script(
            4, base + [self.o(1, 2.0, True)]
        )
        assert (s, HeapState.FULL_MIXED) in self.run_script(
            3, base + [self.o(2, 3.0, False)]
        )

    def test_edges_from_partial_certain(self):
        s = HeapState.PARTIAL_CERTAIN
        base = [self.o(0, 1.0, True)]
        assert (s, s) in self.run_script(3, base + [self.o(1, 2.0, True)])
        assert (s, HeapState.PARTIAL_MIXED) in self.run_script(
            3, base + [self.o(1, 2.0, False)]
        )
        assert (s, HeapState.FULL_MIXED) in self.run_script(
            2, base + [self.o(1, 2.0, False)]
        )
        assert (s, HeapState.COMPLETE) in self.run_script(
            2, base + [self.o(1, 2.0, True)]
        )

    def test_edges_from_full_uncertain(self):
        s = HeapState.FULL_UNCERTAIN
        base = [self.o(0, 2.0, False), self.o(1, 3.0, False)]
        # a closer uncertain candidate displaces the farthest one
        assert (s, s) in self.run_script(2, base + [self.o(2, 1.0, False)])
        assert (s, HeapState.FULL_MIXED) in self.run_script(
            2, base + [self.o(2, 1.0, True)]
        )
        assert (s, HeapState.COMPLETE) in self.run_script(
            1, [self.o(0, 2.0, False), self.o(1, 1.0, True)]
        )

    def test_edges_from_full_mixed(self):
        s = HeapState.FULL_MIXED
        base = [self.o(0, 1.0, True), self.o(1, 3.0, False)]
        assert (s, s) in self.run_script(2, base + [self.o(2, 2.0, False)])
        assert (s, HeapState.COMPLETE) in self.run_script(
            2, base + [self.o(2, 2.0, True)]
        )

    def test_edges_from_complete(self):
        s = HeapState.COMPLETE
        base = [self.o(0, 1.0, True), self.o(1, 2.0, True)]
        # farther certain offer is rejected; closer one displaces -- both
        # leave the heap complete.
        assert (s, s) in self.run_script(2, base + [self.o(2, 3.0, True)])
        assert (s, s) in self.run_script(2, base + [self.o(2, 0.5, True)])
        assert (s, s) in self.run_script(2, base + [self.o(2, 0.5, False)])
