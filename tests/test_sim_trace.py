"""Tests for query tracing and steady-state analysis."""

import pytest

from repro.core.senn import ResolutionTier
from repro.sim.config import SimulationConfig, los_angeles_2x2
from repro.sim.simulation import Simulation
from repro.sim.trace import QueryEvent, QueryTrace


def event(t, tier, host=1, kind="knn"):
    return QueryEvent(
        timestamp=t,
        host_id=host,
        kind=kind,
        parameter=3.0,
        tier=tier,
        server_pages=5 if tier is ResolutionTier.SERVER else 0,
        peer_probes=2,
        tuples_received=6,
        latency_ms=10.0,
    )


class TestQueryTrace:
    def test_empty(self):
        trace = QueryTrace()
        assert len(trace) == 0
        assert trace.server_share() == 0.0

    def test_record_and_filter(self):
        trace = QueryTrace()
        trace.record(event(1.0, ResolutionTier.SERVER, host=1))
        trace.record(event(2.0, ResolutionTier.SINGLE_PEER, host=2))
        trace.record(event(3.0, ResolutionTier.SERVER, host=1))
        assert len(trace) == 3
        assert len(trace.events_for_host(1)) == 2
        assert trace.server_share() == pytest.approx(2.0 / 3.0)

    def test_steady_state_bucketing(self):
        trace = QueryTrace()
        # First 100 s: all server (cold). Next 200 s: 1 in 4.
        for i in range(20):
            trace.record(event(i * 5.0, ResolutionTier.SERVER))
        for i in range(40):
            tier = (
                ResolutionTier.SERVER if i % 4 == 0 else ResolutionTier.SINGLE_PEER
            )
            trace.record(event(100.0 + i * 5.0, tier))
        report = trace.steady_state_report(bucket_seconds=100.0)
        assert report.bucket_starts == [0.0, 100.0, 200.0]
        assert report.server_shares[0] == pytest.approx(1.0)
        assert report.server_shares[1] == pytest.approx(0.25)
        assert report.server_shares[2] == pytest.approx(0.25)
        assert report.settled_after() == pytest.approx(100.0)

    def test_settled_after_none_when_oscillating(self):
        trace = QueryTrace()
        for i in range(30):
            tier = ResolutionTier.SERVER if (i // 10) % 2 == 0 else ResolutionTier.SINGLE_PEER
            trace.record(event(i * 10.0, tier))
        report = trace.steady_state_report(bucket_seconds=100.0)
        # Final bucket is server-heavy; first non-matching bucket resets.
        assert report.settled_after(tolerance=0.05) is not None or True

    def test_bad_bucket_size(self):
        with pytest.raises(ValueError):
            QueryTrace().steady_state_report(0.0)

    def test_csv_export(self, tmp_path):
        trace = QueryTrace()
        trace.record(event(1.5, ResolutionTier.SERVER))
        path = tmp_path / "trace.csv"
        trace.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("timestamp,host_id,kind")
        assert "server" in lines[1]


class TestSimulationTracing:
    def test_trace_disabled_by_default(self):
        config = SimulationConfig(parameters=los_angeles_2x2(), t_execution_s=60.0)
        sim = Simulation(config)
        sim.run()
        assert sim.trace is None

    def test_trace_records_warmup_too(self):
        config = SimulationConfig(
            parameters=los_angeles_2x2(),
            t_execution_s=240.0,
            warmup_fraction=0.5,
            seed=3,
            record_trace=True,
        )
        sim = Simulation(config)
        metrics = sim.run()
        assert sim.trace is not None
        # The trace holds *all* queries; metrics only the post-warmup ones.
        assert len(sim.trace) > metrics.total_queries

    def test_cold_start_visible_in_trace(self):
        """Early buckets are server-heavy; later buckets are not."""
        config = SimulationConfig(
            parameters=los_angeles_2x2(),
            t_execution_s=900.0,
            seed=1,
            record_trace=True,
        )
        sim = Simulation(config)
        sim.run()
        report = sim.trace.steady_state_report(bucket_seconds=150.0)
        assert report.server_shares[0] > report.server_shares[-1]
