"""Unit and property tests for repro.geometry.polygon."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon, segment_intersections


def square(size=1.0, origin=Point(0, 0)):
    return Polygon(
        [
            origin,
            Point(origin.x + size, origin.y),
            Point(origin.x + size, origin.y + size),
            Point(origin.x, origin.y + size),
        ]
    )


class TestConstruction:
    def test_too_few_vertices_raises(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_degenerate_collinear_raises(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_winding_normalized_to_ccw(self):
        cw = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        ccw = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        assert cw.area > 0
        assert ccw.area > 0
        assert cw.area == pytest.approx(ccw.area)

    def test_len(self):
        assert len(square()) == 4


class TestAreaPerimeter:
    def test_unit_square(self):
        sq = square()
        assert sq.area == pytest.approx(1.0)
        assert sq.perimeter == pytest.approx(4.0)

    def test_triangle(self):
        tri = Polygon([Point(0, 0), Point(4, 0), Point(0, 3)])
        assert tri.area == pytest.approx(6.0)
        assert tri.perimeter == pytest.approx(12.0)

    def test_centroid_square(self):
        c = square(2.0).centroid()
        assert c.x == pytest.approx(1.0)
        assert c.y == pytest.approx(1.0)


class TestContainsPoint:
    def test_interior(self):
        assert square().contains_point(Point(0.5, 0.5))

    def test_exterior(self):
        assert not square().contains_point(Point(1.5, 0.5))

    def test_boundary_edge(self):
        assert square().contains_point(Point(0.5, 0.0))

    def test_boundary_vertex(self):
        assert square().contains_point(Point(0.0, 0.0))

    def test_concave_pocket(self):
        # L-shaped polygon: pocket at upper right is outside.
        ell = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        assert ell.contains_point(Point(0.5, 1.5))
        assert ell.contains_point(Point(1.5, 0.5))
        assert not ell.contains_point(Point(1.5, 1.5))


class TestConvexity:
    def test_square_convex(self):
        assert square().is_convex()

    def test_ell_not_convex(self):
        ell = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        assert not ell.is_convex()


class TestPolygonization:
    def test_inscribed_vertices_on_circle(self):
        circle = Circle(Point(1, 2), 3.0)
        poly = Polygon.inscribed_in_circle(circle, sides=16)
        assert len(poly) == 16
        for v in poly.vertices:
            assert circle.center.distance_to(v) == pytest.approx(3.0)

    def test_inscribed_is_subset_of_disk(self):
        circle = Circle(Point(0, 0), 2.0)
        poly = Polygon.inscribed_in_circle(circle, sides=12)
        assert poly.area < circle.area
        # Sample polygon interior points: all inside the disk.
        for v in poly.vertices:
            mid = Point(v.x * 0.7, v.y * 0.7)
            assert circle.contains_point(mid)

    def test_circumscribed_is_superset_of_disk(self):
        circle = Circle(Point(0, 0), 2.0)
        poly = Polygon.circumscribed_around_circle(circle, sides=12)
        assert poly.area > circle.area
        # Every boundary point of the circle is inside the polygon.
        for i in range(36):
            theta = 2 * math.pi * i / 36
            assert poly.contains_point(circle.point_at_angle(theta), tolerance=1e-9)

    def test_polygon_area_converges_to_circle(self):
        circle = Circle(Point(0, 0), 1.0)
        coarse = Polygon.inscribed_in_circle(circle, sides=8).area
        fine = Polygon.inscribed_in_circle(circle, sides=64).area
        assert coarse < fine < circle.area

    def test_bad_sides_raises(self):
        with pytest.raises(ValueError):
            Polygon.inscribed_in_circle(Circle(Point(0, 0), 1.0), sides=2)

    def test_zero_radius_raises(self):
        with pytest.raises(ValueError):
            Polygon.inscribed_in_circle(Circle(Point(0, 0), 0.0))

    @given(st.integers(min_value=3, max_value=64))
    def test_inscribed_area_formula(self, sides):
        circle = Circle(Point(0, 0), 1.0)
        poly = Polygon.inscribed_in_circle(circle, sides=sides)
        expected = 0.5 * sides * math.sin(2 * math.pi / sides)
        assert poly.area == pytest.approx(expected)


class TestContainsPolygon:
    def test_nested_squares(self):
        outer = square(4.0)
        inner = square(1.0, Point(1, 1))
        assert outer.contains_polygon(inner)
        assert not inner.contains_polygon(outer)

    def test_overlapping_not_contained(self):
        a = square(2.0)
        b = square(2.0, Point(1, 1))
        assert not a.contains_polygon(b)

    def test_concave_dip_detected(self):
        # U-shaped container: a horizontal bar spanning the opening has all
        # vertices inside the arms but dips through the notch.
        u_shape = Polygon(
            [
                Point(0, 0),
                Point(3, 0),
                Point(3, 3),
                Point(2, 3),
                Point(2, 1),
                Point(1, 1),
                Point(1, 3),
                Point(0, 3),
            ]
        )
        bar = Polygon(
            [
                Point(0.2, 2.0),
                Point(2.8, 2.0),
                Point(2.8, 2.5),
                Point(0.2, 2.5),
            ]
        )
        assert all(u_shape.contains_point(v) for v in bar.vertices)
        assert not u_shape.contains_polygon(bar)


class TestSegmentIntersections:
    def test_proper_crossing(self):
        pts = segment_intersections(
            (Point(0, 0), Point(2, 2)), (Point(0, 2), Point(2, 0))
        )
        assert len(pts) == 1
        assert pts[0].x == pytest.approx(1.0)
        assert pts[0].y == pytest.approx(1.0)

    def test_no_crossing(self):
        pts = segment_intersections(
            (Point(0, 0), Point(1, 0)), (Point(0, 1), Point(1, 1))
        )
        assert pts == []

    def test_endpoint_touch(self):
        pts = segment_intersections(
            (Point(0, 0), Point(1, 0)), (Point(1, 0), Point(2, 5))
        )
        assert len(pts) == 1
        assert pts[0].x == pytest.approx(1.0)

    def test_collinear_overlap(self):
        pts = segment_intersections(
            (Point(0, 0), Point(3, 0)), (Point(1, 0), Point(5, 0))
        )
        xs = sorted(p.x for p in pts)
        assert xs == pytest.approx([1.0, 3.0])

    def test_collinear_disjoint(self):
        pts = segment_intersections(
            (Point(0, 0), Point(1, 0)), (Point(2, 0), Point(3, 0))
        )
        assert pts == []

    def test_parallel_non_collinear(self):
        pts = segment_intersections(
            (Point(0, 0), Point(1, 0)), (Point(0, 0.5), Point(1, 0.5))
        )
        assert pts == []
