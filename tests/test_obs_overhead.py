"""The observability layer's cost contract.

Two halves:

- **Disabled means silent:** with ``observed(enabled=False)`` the global
  registry must not move at all, however hard the engine works.
- **Disabled means cheap:** the ≤2 % overhead budget on the quickstart
  scenario.  Measuring two end-to-end wall times and subtracting is
  hopelessly noisy at millisecond scale, so the budget is asserted the
  robust way: count the instrumentation events an *enabled* run records
  (every one of which corresponds to one ``if OBS.enabled`` guard in the
  disabled run), measure the per-guard cost directly with a tight loop
  (an overestimate — it includes loop overhead), and compare
  ``events x guard_cost`` against 2 % of the scenario's runtime.
"""

import time

from repro.core import MobileHost, SennConfig, SpatialDatabaseServer
from repro.geometry.point import Point
from repro.obs import OBS, MetricsRegistry, observed


def _quickstart_scenario() -> None:
    """A compressed quickstart: one warm host seeds a second host's query."""
    stations = [
        (Point(0.1 + 0.13 * i, 0.07 * ((i * 7) % 11)), f"station-{i}")
        for i in range(16)
    ]
    server = SpatialDatabaseServer.from_points(stations)
    config = SennConfig(k=3, transmission_range=0.124, cache_capacity=10)
    veteran = MobileHost(1, Point(0.5, 0.4), config)
    veteran.query_knn(peers=[], server=server)
    newcomer = MobileHost(2, Point(0.52, 0.41), config)
    for step in range(10):
        newcomer.position = Point(0.52 + 0.005 * step, 0.41)
        newcomer.query_knn(peers=[veteran], server=server)


def _time_scenario(repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _quickstart_scenario()
        best = min(best, time.perf_counter() - start)
    return best


def _guard_cost_ns(loops: int = 100_000) -> float:
    """Per-event cost of the disabled guard, loop overhead included."""
    sink = 0
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(loops):
            if OBS.enabled:
                sink += 1
        best = min(best, time.perf_counter() - start)
    assert sink == 0
    return best / loops * 1e9


class TestDisabledIsSilent:
    def test_registry_untouched_when_disabled(self):
        with observed(enabled=False):
            OBS.registry = MetricsRegistry()
            try:
                _quickstart_scenario()
                assert len(OBS.registry) == 0
                assert OBS.registry.snapshot() == {}
            finally:
                OBS.registry = MetricsRegistry()

    def test_observed_restores_previous_state(self):
        before = OBS.enabled
        with observed(enabled=not before):
            assert OBS.enabled is (not before)
        assert OBS.enabled is before


class TestOverheadBudget:
    def test_disabled_guards_stay_within_two_percent_of_quickstart(self):
        # How many instrumentation events does the scenario emit?
        with observed(enabled=True):
            previous = OBS.registry
            OBS.registry = MetricsRegistry()
            try:
                _quickstart_scenario()
                events = sum(
                    metric.value
                    for metric in OBS.registry
                    if not hasattr(metric, "bucket_counts")
                )
            finally:
                OBS.registry = previous
        assert events > 0, "the quickstart scenario must exercise hot paths"

        with observed(enabled=False):
            scenario_s = _time_scenario()
            guard_ns = _guard_cost_ns()
        overhead_s = events * guard_ns * 1e-9
        # The counter *values* overcount guards where one guarded block
        # does several inc() calls; that slack is in the budget's favor.
        assert overhead_s <= 0.02 * scenario_s, (
            f"{events:.0f} events x {guard_ns:.0f} ns = "
            f"{overhead_s * 1e6:.1f} us exceeds 2% of the "
            f"{scenario_s * 1e3:.2f} ms quickstart scenario"
        )

    def test_locked_increment_cost_stays_cheap(self):
        # The per-instrument lock (thread-safety work) rides only the
        # *enabled* path -- the disabled budget above is unaffected by
        # construction.  This pins the locked inc() cost so the lock
        # never silently grows into a syscall or contention problem
        # (an uncontended threading.Lock is ~100 ns; the bound is
        # deliberately loose to stay robust on slow CI).
        from repro.obs.metrics import Counter

        counter = Counter("overhead.probe", ())
        loops = 50_000
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(loops):
                counter.inc()
            best = min(best, time.perf_counter() - start)
        per_inc_ns = best / loops * 1e9
        assert counter.value == float(3 * loops)
        assert per_inc_ns < 5_000, f"locked inc costs {per_inc_ns:.0f} ns"
