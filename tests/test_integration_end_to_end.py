"""End-to-end integration tests spanning multiple subsystems.

These tests exercise realistic mini-scenarios across the geometry, index,
network, core and sim layers together, the way the examples do -- but
with assertions instead of prose.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MobileHost,
    ResolutionTier,
    SennConfig,
    SpatialDatabaseServer,
    snnn_query,
)
from repro.geometry.point import Point
from repro.network.dijkstra import network_distance
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.ier import incremental_network_expansion
from repro.sim.config import MovementMode, SimulationConfig, suburbia_2x2
from repro.sim.simulation import Simulation


class TestConvoyScenario:
    """A line of cars driving the same road shares almost everything."""

    def test_convoy_cache_propagation(self):
        rng = np.random.default_rng(0)
        pois = [
            (Point(float(x), float(y)), f"poi-{i}")
            for i, (x, y) in enumerate(rng.uniform(0, 4, size=(30, 2)))
        ]
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(k=3, transmission_range=0.3, cache_capacity=10)

        convoy = []
        for i in range(12):
            car = MobileHost(i, Point(0.3 * i + 0.2, 2.0), config)
            car.query_knn(peers=convoy, server=server)
            convoy.append(car)
        # The first car had no peers; later cars increasingly reuse.
        total = len(convoy)
        server_queries = server.queries_served
        assert server_queries < total
        # Every car's cache ends up warm.
        assert all(not car.cache.is_empty() for car in convoy)
        # All answers were exact (spot check the last car).
        last = convoy[-1]
        result = last.query_knn(peers=convoy[:-1], server=server)
        expected = sorted(last.position.distance_to(p) for p, _ in pois)[:3]
        assert [n.distance for n in result.neighbors][:3] == pytest.approx(expected)


class TestSnnnWithWarmPeers:
    def test_network_query_uses_peer_knowledge(self):
        network = generate_road_network(
            RoadNetworkSpec(width=3.0, height=3.0, secondary_spacing=0.3, seed=5)
        )
        rng = np.random.default_rng(5)
        pois = [
            (network.snap(Point(float(x), float(y))).point, f"poi-{i}")
            for i, (x, y) in enumerate(rng.uniform(0, 3, size=(25, 2)))
        ]
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(k=2, transmission_range=0.5, cache_capacity=12)

        scout = MobileHost(1, Point(1.5, 1.5), config)
        scout.query_knn(peers=[], server=server)

        traveller = MobileHost(2, Point(1.52, 1.5), config)
        result = traveller.query_knn_network(
            network, peers=[scout], server=server
        )
        oracle = incremental_network_expansion(
            network,
            network.snap(traveller.position),
            [(network.snap(p), payload) for p, payload in pois],
            2,
        )
        assert [r.network_distance for r in result.neighbors] == pytest.approx(
            [r.network_distance for r in oracle]
        )


class TestModesAgreeOnScale:
    def test_road_and_free_modes_same_ballpark(self):
        """Both movement modes land in the same regime (Section 4.3)."""
        shares = {}
        for mode in (MovementMode.ROAD_NETWORK, MovementMode.FREE):
            config = SimulationConfig(
                parameters=suburbia_2x2(),
                movement_mode=mode,
                t_execution_s=600.0,
                seed=9,
            )
            shares[mode] = Simulation(config).run().server_share
        assert abs(shares[MovementMode.ROAD_NETWORK] - shares[MovementMode.FREE]) < 0.25


class TestMixedWorkload:
    def test_knn_and_range_queries_interleave(self):
        config = SimulationConfig(
            parameters=suburbia_2x2(),
            t_execution_s=600.0,
            seed=4,
            range_query_fraction=0.5,
            record_trace=True,
        )
        sim = Simulation(config)
        metrics = sim.run()
        kinds = {event.kind for event in sim.trace.events}
        assert kinds == {"knn", "range"}
        assert metrics.total_queries > 0
        # Range results cached with known radius also serve kNN peers:
        # at least some queries resolve without the server.
        assert metrics.peer_share + metrics.share(ResolutionTier.LOCAL_CACHE) > 0.0


class TestSnnnPropertyMiniWorlds:
    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=12, deadline=None)
    def test_snnn_always_matches_oracle(self, seed):
        network = generate_road_network(
            RoadNetworkSpec(width=2.0, height=2.0, secondary_spacing=0.5, seed=seed)
        )
        rng = np.random.default_rng(seed + 1000)
        pois = [
            (network.snap(Point(float(x), float(y))).point, f"poi-{i}")
            for i, (x, y) in enumerate(rng.uniform(0, 2, size=(12, 2)))
        ]
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(float(rng.uniform(0.2, 1.8)), float(rng.uniform(0.2, 1.8)))
        k = int(rng.integers(1, 4))
        result = snnn_query(q, k, network, None, [], SennConfig(k=k), server=server)
        oracle = incremental_network_expansion(
            network,
            network.snap(q),
            [(network.snap(p), payload) for p, payload in pois],
            k,
        )
        assert [r.network_distance for r in result.neighbors] == pytest.approx(
            [r.network_distance for r in oracle]
        )
