"""Tests for the naive (unverified) sharing baseline."""

import numpy as np
import pytest

from repro.core.cache import CachedQueryResult
from repro.core.naive_sharing import (
    AccuracyReport,
    evaluate_accuracy,
    naive_share_query,
)
from repro.core.senn import ResolutionTier, SennConfig, senn_query
from repro.core.server import SpatialDatabaseServer
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def random_world(seed, poi_count=40, extent=10.0):
    rng = np.random.default_rng(seed)
    pois = [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, poi_count), rng.uniform(0, extent, poi_count))
        )
    ]
    return rng, pois


def knn_cache(pois, location, k):
    ordered = sorted((location.distance_to(p), i, p) for i, (p, _) in enumerate(pois))
    return CachedQueryResult(
        location, tuple(NeighborResult(p, pois[i][1], d) for d, i, p in ordered[:k])
    )


def true_knn(pois, location, k):
    return sorted(
        ((location.distance_to(p), payload) for p, payload in pois)
    )[:k]


class TestNaiveShareQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            naive_share_query(Point(0, 0), 0, [], 1.0)
        with pytest.raises(ValueError):
            naive_share_query(Point(0, 0), 1, [], -1.0)

    def test_adopts_close_peer(self):
        _, pois = random_world(0)
        q = Point(5, 5)
        peer = knn_cache(pois, Point(5.01, 5.0), 8)
        result = naive_share_query(q, 3, [peer], adoption_radius=0.5)
        assert result.tier is ResolutionTier.SINGLE_PEER
        assert result.adopted_from_distance == pytest.approx(0.01)
        assert len(result.neighbors) == 3

    def test_rejects_far_peer(self):
        _, pois = random_world(1)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(1, 1)
        peer = knn_cache(pois, Point(9, 9), 8)
        result = naive_share_query(q, 3, [peer], adoption_radius=0.5, server=server)
        assert result.tier is ResolutionTier.SERVER
        assert server.queries_served == 1

    def test_no_peers_no_server(self):
        result = naive_share_query(Point(0, 0), 3, [], adoption_radius=1.0)
        assert result.tier is ResolutionTier.SERVER
        assert result.neighbors == []

    def test_adoption_can_be_wrong(self):
        """The defining flaw: an adopted answer may miss a true NN."""
        pois = [
            (Point(0.0, 0.0), "west"),
            (Point(10.0, 0.0), "east"),
            (Point(11.0, 0.0), "far-east"),
        ]
        # Peer stood far west and cached only the western POI.
        peer = CachedQueryResult(
            Point(1.0, 0.0), (NeighborResult(Point(0, 0), "west", 1.0),)
        )
        # The querier is near the eastern POIs but adopts anyway.
        q = Point(7.0, 0.0)
        result = naive_share_query(q, 1, [peer], adoption_radius=100.0)
        assert result.tier is ResolutionTier.SINGLE_PEER
        assert result.neighbors[0].payload == "west"  # wrong: "east" is closer

    def test_senn_never_wrong_same_scenario(self):
        """SENN refuses to certify in the same scenario."""
        pois = [
            (Point(0.0, 0.0), "west"),
            (Point(10.0, 0.0), "east"),
            (Point(11.0, 0.0), "far-east"),
        ]
        server = SpatialDatabaseServer.from_points(pois)
        peer = CachedQueryResult(
            Point(1.0, 0.0), (NeighborResult(Point(0, 0), "west", 1.0),)
        )
        result = senn_query(
            Point(7.0, 0.0), 1, None, [peer], SennConfig(k=1), server=server
        )
        assert result.neighbors[0].payload == "east"


class TestAccuracyReport:
    def test_exact_answer(self):
        report = AccuracyReport()
        answer = [NeighborResult(Point(1, 0), "a", 1.0)]
        evaluate_accuracy(answer, [(1.0, "a")], report)
        assert report.exact_ratio == 1.0
        assert report.missing_neighbors == 0
        assert report.mean_distance_error == 0.0

    def test_wrong_answer(self):
        report = AccuracyReport()
        answer = [NeighborResult(Point(2, 0), "b", 2.0)]
        evaluate_accuracy(answer, [(1.0, "a")], report)
        assert report.exact_ratio == 0.0
        assert report.missing_neighbors == 1
        assert report.mean_distance_error == pytest.approx(1.0)

    def test_accumulates(self):
        report = AccuracyReport()
        evaluate_accuracy(
            [NeighborResult(Point(1, 0), "a", 1.0)], [(1.0, "a")], report
        )
        evaluate_accuracy(
            [NeighborResult(Point(3, 0), "c", 3.0)], [(1.0, "a")], report
        )
        assert report.total == 2
        assert report.exact_ratio == 0.5

    def test_empty_report(self):
        report = AccuracyReport()
        assert report.exact_ratio == 1.0
        assert report.mean_distance_error == 0.0


class TestStatisticalComparison:
    def test_naive_sharing_is_measurably_less_accurate(self):
        """Across many random queries, adoption errs; SENN never does."""
        rng, pois = random_world(7, poi_count=60)
        server = SpatialDatabaseServer.from_points(pois)
        naive_report = AccuracyReport()
        senn_report = AccuracyReport()
        k = 3
        for _ in range(60):
            q = Point(float(rng.uniform(1, 9)), float(rng.uniform(1, 9)))
            peer_loc = Point(
                q.x + float(rng.uniform(-0.8, 0.8)),
                q.y + float(rng.uniform(-0.8, 0.8)),
            )
            cache = knn_cache(pois, peer_loc, 5)
            truth = true_knn(pois, q, k)

            naive = naive_share_query(q, k, [cache], adoption_radius=2.0)
            evaluate_accuracy(naive.neighbors, truth, naive_report)

            senn = senn_query(q, k, None, [cache], SennConfig(k=k), server=server)
            evaluate_accuracy(senn.neighbors[:k], truth, senn_report)

        assert senn_report.exact_ratio == 1.0
        assert naive_report.exact_ratio < 1.0
        assert naive_report.mean_distance_error > 0.0
