"""Tests for repro.network.index: protocol, exactness, and cost.

The central contract under test is *bit-identical exactness*: for every
origin, POI set and ``k``, :class:`HierarchicalIndex` must return the
same payloads, the same network distances (as floats, not within a
tolerance) and the same tie order as the :class:`DijkstraIndex`
reference and as the flattened-adjacency oracle in
:mod:`repro.testing.oracles`.  The hierarchy is only allowed to be
*cheaper*, never *different*.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.index.knn import poi_tie_key
from repro.network.dijkstra import network_distance
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.graph import NetworkLocation, SpatialNetwork
from repro.network.index import (
    DijkstraIndex,
    HierarchicalIndex,
    IndexStats,
    NetworkIndex,
)
from repro.testing import oracles


# ----------------------------------------------------------------------
# graph builders
# ----------------------------------------------------------------------


def grid_network(side: int = 4, spacing: float = 1.0) -> SpatialNetwork:
    network = SpatialNetwork()
    nodes = {}
    for i in range(side):
        for j in range(side):
            nodes[(i, j)] = network.add_node(Point(i * spacing, j * spacing))
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                network.add_edge(nodes[(i, j)], nodes[(i + 1, j)])
            if j + 1 < side:
                network.add_edge(nodes[(i, j)], nodes[(i, j + 1)])
    return network


def random_connected_network(seed: int, n: int = 30) -> SpatialNetwork:
    """A connected graph on jittered-grid positions with stretched lengths.

    Jittering a grid keeps node positions distinct (``add_edge`` rejects
    coincident endpoints); a random spanning tree plus extra chords gives
    varied topology; random length stretch >= 1 keeps every edge above
    its Euclidean chord, as the graph contract requires.
    """
    rng = random.Random(seed)
    network = SpatialNetwork()
    cols = int(math.ceil(math.sqrt(n)))
    ids = []
    for idx in range(n):
        x = (idx % cols) + rng.uniform(-0.3, 0.3)
        y = (idx // cols) + rng.uniform(-0.3, 0.3)
        ids.append(network.add_node(Point(x, y)))
    shuffled = ids[:]
    rng.shuffle(shuffled)
    for prev, node in zip(shuffled, shuffled[1:]):
        network.add_edge(
            prev,
            node,
            length=network.node_position(prev).distance_to(
                network.node_position(node)
            )
            * rng.uniform(1.0, 1.8),
        )
    for _ in range(n // 2):
        u, v = rng.sample(ids, 2)
        if network.edge_between(u, v) is None:
            network.add_edge(
                u,
                v,
                length=network.node_position(u).distance_to(
                    network.node_position(v)
                )
                * rng.uniform(1.0, 1.8),
            )
    return network


def two_component_network() -> SpatialNetwork:
    """Two disjoint triangles far apart."""
    network = SpatialNetwork()
    a = [network.add_node(Point(x, y)) for x, y in [(0, 0), (1, 0), (0, 1)]]
    b = [
        network.add_node(Point(x, y))
        for x, y in [(10, 10), (11, 10), (10, 11)]
    ]
    for tri in (a, b):
        network.add_edge(tri[0], tri[1])
        network.add_edge(tri[1], tri[2])
        network.add_edge(tri[0], tri[2])
    return network


def random_pois(network, rng, count):
    edges = list(network.edges())
    pois = []
    for i in range(count):
        edge = rng.choice(edges)
        offset = rng.uniform(0.0, edge.length)
        pois.append((network.location_at(edge, offset), f"poi-{i}"))
    return pois


def random_origin(network, rng):
    edges = list(network.edges())
    edge = rng.choice(edges)
    return network.location_at(edge, rng.uniform(0.0, edge.length))


def flatten(location: NetworkLocation) -> oracles.NetworkLoc:
    edge = location.edge
    return ("edge", edge.u, edge.v, location.offset, edge.length)


def adjacency_of(network):
    adjacency = {}
    for node in network.node_ids():
        adjacency[node] = [
            (other, edge.length) for other, edge in network.neighbors(node)
        ]
    return adjacency


def answers(index, origin, k):
    return [
        (n.payload, n.network_distance) for n in index.knn(origin, k)
    ]


# ----------------------------------------------------------------------
# protocol conformance
# ----------------------------------------------------------------------


class TestProtocol:
    def test_both_implementations_satisfy_protocol(self):
        network = grid_network()
        assert isinstance(DijkstraIndex(network), NetworkIndex)
        assert isinstance(HierarchicalIndex(network), NetworkIndex)

    def test_stats_reset(self):
        network = grid_network()
        index = DijkstraIndex(network)
        loc = network.location_at_node(0)
        index.network_distance(loc, network.location_at_node(5))
        assert index.stats.distance_queries == 1
        assert index.stats.settled_vertices > 0
        index.stats.reset()
        assert index.stats.distance_queries == 0
        assert index.stats.settled_vertices == 0

    def test_empty_and_nonpositive_k(self):
        network = grid_network()
        for index in (DijkstraIndex(network), HierarchicalIndex(network)):
            origin = network.location_at_node(0)
            assert index.knn(origin, 3) == []  # no POIs registered
            index.register_pois(random_pois(network, random.Random(0), 4))
            assert index.knn(origin, 0) == []


# ----------------------------------------------------------------------
# exactness: hierarchy == reference == oracle, bitwise
# ----------------------------------------------------------------------


class TestExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("leaf_size", [2, 4, 16])
    def test_knn_matches_reference_and_oracle(self, seed, leaf_size):
        rng = random.Random(seed)
        network = random_connected_network(seed, n=36)
        pois = random_pois(network, rng, 20)
        reference = DijkstraIndex(network)
        hierarchy = HierarchicalIndex(network, leaf_size=leaf_size)
        reference.register_pois(pois)
        hierarchy.register_pois(pois)
        adjacency = adjacency_of(network)
        flat_pois = [(flatten(loc), payload) for loc, payload in pois]
        for _ in range(6):
            origin = random_origin(network, rng)
            k = rng.randint(1, 8)
            expected = answers(reference, origin, k)
            got = answers(hierarchy, origin, k)
            oracle = oracles.oracle_network_knn(
                adjacency, flatten(origin), flat_pois, k
            )
            assert got == expected  # repro: noqa(RPR001)
            assert got == oracle  # repro: noqa(RPR001)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_point_to_point_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        network = random_connected_network(seed + 100, n=30)
        hierarchy = HierarchicalIndex(network, leaf_size=4)
        for _ in range(10):
            a = random_origin(network, rng)
            b = random_origin(network, rng)
            direct = network_distance(network, a, b)
            indexed = hierarchy.network_distance(a, b)
            assert indexed == direct  # repro: noqa(RPR001)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        leaf_size=st.integers(min_value=2, max_value=24),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_random_graphs(self, seed, leaf_size, k):
        rng = random.Random(seed)
        network = random_connected_network(seed, n=rng.randint(8, 40))
        pois = random_pois(network, rng, rng.randint(1, 16))
        reference = DijkstraIndex(network)
        hierarchy = HierarchicalIndex(network, leaf_size=leaf_size)
        reference.register_pois(pois)
        hierarchy.register_pois(pois)
        origin = random_origin(network, rng)
        assert answers(hierarchy, origin, k) == answers(  # repro: noqa(RPR001)
            reference, origin, k
        )

    def test_kth_place_ties(self):
        """Duplicate payloads at mirrored offsets tie exactly at the k-th
        place; the hierarchy must reproduce the reference's
        ``poi_tie_key``-then-registration order."""
        network = grid_network(side=3)
        edges = list(network.edges())
        pois = []
        for i, edge in enumerate(edges[:4]):
            # two POIs per edge at symmetric offsets, duplicated payloads
            pois.append((network.location_at(edge, 0.25), "dup"))
            pois.append((network.location_at(edge, 0.75), f"poi-{i}"))
        reference = DijkstraIndex(network)
        hierarchy = HierarchicalIndex(network, leaf_size=2)
        reference.register_pois(pois)
        hierarchy.register_pois(pois)
        origin = network.location_at_node(0)
        for k in range(1, len(pois) + 1):
            expected = answers(reference, origin, k)
            assert answers(hierarchy, origin, k) == expected  # repro: noqa(RPR001)
        full = reference.knn(origin, len(pois))
        keys = [
            (n.network_distance, poi_tie_key(n.payload)) for n in full
        ]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# disconnected graphs
# ----------------------------------------------------------------------


class TestDisconnected:
    def test_unreachable_pois_rank_last_with_inf(self):
        network = two_component_network()
        edges = list(network.edges())
        pois = [
            (network.location_at(edges[0], 0.3), "near"),
            (network.location_at(edges[3], 0.3), "far-component"),
        ]
        origin = network.location_at(edges[0], 0.0)
        for factory in (DijkstraIndex, HierarchicalIndex):
            index = factory(network)
            index.register_pois(pois)
            result = index.knn(origin, 2)
            assert [n.payload for n in result] == ["near", "far-component"]
            assert math.isfinite(result[0].network_distance)
            assert math.isinf(result[1].network_distance)

    def test_cross_component_distance_is_inf(self):
        network = two_component_network()
        edges = list(network.edges())
        a = network.location_at(edges[0], 0.5)
        b = network.location_at(edges[3], 0.5)
        hierarchy = HierarchicalIndex(network, leaf_size=2)
        assert math.isinf(hierarchy.network_distance(a, b))
        assert math.isinf(network_distance(network, a, b))

    def test_disconnected_matches_reference(self):
        rng = random.Random(7)
        network = two_component_network()
        pois = random_pois(network, rng, 6)
        reference = DijkstraIndex(network)
        hierarchy = HierarchicalIndex(network, leaf_size=2)
        reference.register_pois(pois)
        hierarchy.register_pois(pois)
        for edge in network.edges():
            origin = network.location_at(edge, 0.25)
            got = answers(hierarchy, origin, 6)
            expected = answers(reference, origin, 6)
            # inf == inf holds, so bitwise list equality still applies
            assert got == expected  # repro: noqa(RPR001)


# ----------------------------------------------------------------------
# build shape and determinism
# ----------------------------------------------------------------------


class TestBuild:
    def test_build_is_deterministic(self):
        network = random_connected_network(11, n=40)
        first = HierarchicalIndex(network, leaf_size=4)
        second = HierarchicalIndex(network, leaf_size=4)
        assert first.describe() == second.describe()
        rng = random.Random(3)
        pois = random_pois(network, rng, 12)
        first.register_pois(pois)
        second.register_pois(pois)
        origin = random_origin(network, rng)
        assert answers(first, origin, 5) == answers(  # repro: noqa(RPR001)
            second, origin, 5
        )

    def test_describe_shape(self):
        network = grid_network(side=5)
        hierarchy = HierarchicalIndex(network, leaf_size=4)
        info = hierarchy.describe()
        assert info["leaf_size"] == 4
        assert info["partitions"] >= info["leaves"] >= 2
        assert info["max_depth"] >= 1
        assert info["border_nodes"] > 0
        assert info["matrix_entries"] > 0

    def test_leaf_size_validation(self):
        network = grid_network()
        with pytest.raises(ValueError):
            HierarchicalIndex(network, leaf_size=1)

    def test_empty_network(self):
        network = SpatialNetwork()
        hierarchy = HierarchicalIndex(network)
        # No nodes -> no partitions; there is no valid origin either, so
        # the index is inert but constructible.
        assert hierarchy.describe()["partitions"] == 0


# ----------------------------------------------------------------------
# cost: the hierarchy must actually prune
# ----------------------------------------------------------------------


class TestCost:
    def test_settled_vertex_reduction(self):
        spec = RoadNetworkSpec(
            width=6.0, height=6.0, secondary_spacing=0.35, seed=5
        )
        network = generate_road_network(spec)
        rng = random.Random(5)
        pois = random_pois(network, rng, 60)
        reference = DijkstraIndex(network)
        hierarchy = HierarchicalIndex(network, leaf_size=32)
        reference.register_pois(pois)
        hierarchy.register_pois(pois)
        origins = [random_origin(network, rng) for _ in range(5)]
        for origin in origins:
            assert answers(hierarchy, origin, 8) == answers(  # repro: noqa(RPR001)
                reference, origin, 8
            )
        # Compare totals over identical query sets (answers checked above).
        assert (
            hierarchy.stats.settled_vertices
            < reference.stats.settled_vertices / 4
        )
        assert hierarchy.stats.pois_refined < len(pois) * len(origins)


class TestIndexStats:
    def test_dataclass_fields(self):
        stats = IndexStats()
        assert stats.knn_queries == 0
        assert stats.partitions_opened == 0
