"""Tests for the runtime invariant sanitizer and its validators."""

import os
import subprocess
import sys

import pytest

from repro.analysis.invariants import (
    HEAP_TRANSITIONS,
    InvariantViolation,
    check_heap_structure,
    check_heap_transition,
    check_verification_soundness,
    validate_rtree,
)
from repro.analysis.runtime import SANITIZER, sanitized, sanitizer_enabled
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap, HeapEntry, HeapState
from repro.core.verification import verify_single_peer
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.index.node import ChildEntry
from repro.index.rtree import RTree, RTreeConfig


def make_tree(n=40, max_entries=4):
    tree = RTree(RTreeConfig(max_entries=max_entries))
    for i in range(n):
        tree.insert(Point(float(i % 8), float(i // 8)), payload=i)
    return tree


def make_cache(peer=Point(0.0, 0.0), k=3, spacing=1.0):
    neighbors = tuple(
        NeighborResult(Point(peer.x + spacing * (i + 1), peer.y), f"n{i}", spacing * (i + 1))
        for i in range(k)
    )
    return CachedQueryResult(query_location=peer, neighbors=neighbors)


class TestSwitching:
    def test_context_manager_restores_state(self):
        # The suite itself may run sanitized (REPRO_SANITIZE=1 or
        # --sanitize), so assert relative to the session baseline.
        baseline = sanitizer_enabled()
        with sanitized() as active:
            assert active is SANITIZER
            assert sanitizer_enabled()
        assert sanitizer_enabled() == baseline

    def test_enable_nests(self):
        baseline = sanitizer_enabled()
        with sanitized():
            with sanitized():
                assert sanitizer_enabled()
            assert sanitizer_enabled()
        assert sanitizer_enabled() == baseline

    def test_env_flag_enables_at_import(self):
        env = dict(os.environ)
        env["REPRO_SANITIZE"] = "1"
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.analysis.runtime import SANITIZER; "
                "raise SystemExit(0 if SANITIZER.enabled else 1)",
            ],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0


class TestHooksFire:
    def test_heap_add_hook_counts(self):
        heap = CandidateHeap(capacity=2)
        with sanitized():
            before = SANITIZER.checks_run.get("heap.add", 0)
            heap.add(Point(1, 0), "a", 1.0, certain=True)
            heap.add(Point(2, 0), "b", 2.0, certain=True)
            assert SANITIZER.checks_run["heap.add"] == before + 2

    def test_rtree_hooks_count(self):
        with sanitized():
            before_insert = SANITIZER.checks_run.get("rtree.insert", 0)
            before_delete = SANITIZER.checks_run.get("rtree.delete", 0)
            tree = make_tree(n=12)
            assert tree.delete(Point(0.0, 0.0), payload=0)
            assert SANITIZER.checks_run["rtree.insert"] == before_insert + 12
            assert SANITIZER.checks_run["rtree.delete"] == before_delete + 1

    def test_verification_hook_counts_and_passes_on_honest_data(self):
        cache = make_cache(peer=Point(0.0, 0.0), k=3)
        heap = CandidateHeap(capacity=3)
        with sanitized():
            before = SANITIZER.checks_run.get("verification", 0)
            verify_single_peer(Point(0.1, 0.0), cache, heap)
            assert SANITIZER.checks_run["verification"] == before + 1
        assert len(heap) > 0

    def test_disabled_hooks_cost_nothing_and_do_not_count(self):
        # Force-disable even when the session runs sanitized, restoring after.
        saved_level, saved_enabled = SANITIZER._level, SANITIZER.enabled
        SANITIZER._level, SANITIZER.enabled = 0, False
        try:
            heap = CandidateHeap(capacity=2)
            before = dict(SANITIZER.checks_run)
            heap.add(Point(1, 0), "a", 1.0, certain=True)
            assert SANITIZER.checks_run == before
        finally:
            SANITIZER._level, SANITIZER.enabled = saved_level, saved_enabled


class TestHeapValidators:
    def test_every_legal_transition_accepted(self):
        for before, successors in HEAP_TRANSITIONS.items():
            for after in successors:
                check_heap_transition(before, after)

    def test_illegal_transition_rejected(self):
        with pytest.raises(InvariantViolation, match="illegal heap state"):
            check_heap_transition(HeapState.COMPLETE, HeapState.FULL_MIXED)
        with pytest.raises(InvariantViolation):
            check_heap_transition(HeapState.PARTIAL_MIXED, HeapState.EMPTY)

    def test_structure_check_passes_on_real_heap(self):
        heap = CandidateHeap(capacity=3)
        heap.add(Point(1, 0), "a", 1.0, certain=True)
        heap.add(Point(2, 0), "b", 2.0, certain=False)
        check_heap_structure(heap)

    def test_structure_check_catches_misordered_bucket(self):
        heap = CandidateHeap(capacity=3)
        heap.add(Point(1, 0), "a", 1.0, certain=True)
        heap.add(Point(2, 0), "b", 2.0, certain=True)
        heap._certain.reverse()  # corrupt: descending distances
        with pytest.raises(InvariantViolation, match="ascending"):
            check_heap_structure(heap)

    def test_structure_check_catches_uncertain_overflow(self):
        heap = CandidateHeap(capacity=1)
        heap.add(Point(1, 0), "a", 1.0, certain=True)
        rogue = HeapEntry(Point(2, 0), "b", 2.0, certain=False)
        heap._uncertain.append(rogue)  # corrupt: uncertain although complete
        heap._index[rogue.key()] = rogue
        with pytest.raises(InvariantViolation, match="capacity|uncertain"):
            check_heap_structure(heap)

    def test_structure_check_catches_misflagged_entry(self):
        heap = CandidateHeap(capacity=2)
        heap.add(Point(1, 0), "a", 1.0, certain=True)
        rogue = HeapEntry(Point(2, 0), "b", 2.0, certain=False)
        heap._certain.append(rogue)  # corrupt: uncertain entry in certain bucket
        heap._index[rogue.key()] = rogue
        with pytest.raises(InvariantViolation, match="flagged certain"):
            check_heap_structure(heap)

    def test_structure_check_catches_stale_index(self):
        heap = CandidateHeap(capacity=2)
        heap.add(Point(1, 0), "a", 1.0, certain=True)
        heap._index.clear()  # corrupt: index lost
        with pytest.raises(InvariantViolation, match="index"):
            check_heap_structure(heap)


class TestVerificationSoundness:
    def test_lying_certification_caught(self):
        # The peer's certain circle has radius 3 around (0,0); certifying
        # a POI 10 miles from the query cannot be justified by Lemma 3.8.
        cache = make_cache(peer=Point(0.0, 0.0), k=3)
        heap = CandidateHeap(capacity=1)
        heap.add(Point(10.0, 0.0), "liar", 10.0, certain=True)
        with pytest.raises(InvariantViolation, match="Lemma 3.8"):
            check_verification_soundness(Point(0.0, 0.0), [cache], heap, {})

    def test_distance_mismatch_caught(self):
        cache = make_cache(peer=Point(0.0, 0.0), k=3)
        heap = CandidateHeap(capacity=1)
        # POI really lies 1.0 from the query but stores distance 0.5.
        heap.add(Point(1.0, 0.0), "n0", 0.5, certain=True)
        with pytest.raises(InvariantViolation, match="recomputation"):
            check_verification_soundness(Point(0.0, 0.0), [cache], heap, {})

    def test_pre_certified_entries_not_rechecked(self):
        # Entries certified before the call are exempt: only the diff
        # against the pre-snapshot is validated.
        heap = CandidateHeap(capacity=1)
        heap.add(Point(10.0, 0.0), "old", 10.0, certain=True)
        snapshot = {entry.key(): True for entry in heap.entries()}
        check_verification_soundness(Point(0.0, 0.0), [], heap, snapshot)

    def test_end_to_end_sanitized_single_peer(self):
        cache = make_cache(peer=Point(0.0, 0.0), k=4, spacing=0.5)
        heap = CandidateHeap(capacity=4)
        with sanitized():
            certified = verify_single_peer(Point(0.2, 0.0), cache, heap)
        assert certified > 0
        check_heap_structure(heap)


class TestRTreeValidator:
    def test_valid_tree_passes(self):
        validate_rtree(make_tree())

    def test_widened_mbr_is_a_tightness_violation(self):
        tree = make_tree()
        entry = tree.root.entries[0]
        assert isinstance(entry, ChildEntry)
        entry.bbox = entry.bbox.union(BoundingBox(50.0, 50.0, 60.0, 60.0))
        with pytest.raises(InvariantViolation, match="tightness|shrink"):
            validate_rtree(tree)

    def test_shrunken_mbr_is_a_containment_violation(self):
        tree = make_tree()
        entry = tree.root.entries[0]
        assert isinstance(entry, ChildEntry)
        box = entry.bbox
        entry.bbox = BoundingBox(box.min_x, box.min_y, box.min_x, box.min_y)
        with pytest.raises(InvariantViolation, match="containment"):
            validate_rtree(tree)

    def test_orphaned_entry_count_caught(self):
        tree = make_tree()
        tree._size += 1  # corrupt: bookkeeping claims an entry that is not there
        with pytest.raises(InvariantViolation, match="bookkeeping"):
            validate_rtree(tree)

    def test_aliased_node_caught(self):
        tree = make_tree()
        first = tree.root.entries[0]
        assert isinstance(first, ChildEntry)
        # Replace a sibling with a second link to the same child so the
        # entry count stays legal and only the aliasing check can fire.
        tree.root.entries[1] = ChildEntry(first.bbox, first.child)
        with pytest.raises(InvariantViolation, match="referenced more than once"):
            validate_rtree(tree)


class TestNodeArraysCoherence:
    """The column mirror must agree with the entry list it shadows."""

    @staticmethod
    def _first_leaf(tree):
        node = tree.root
        while not node.is_leaf:
            node = node.entries[0].child
        return node

    def test_healthy_materialized_mirrors_pass(self):
        tree = make_tree()
        # Materialize every reachable mirror, then validate.
        stack = [tree.root]
        while stack:
            node = stack.pop()
            node.arrays()
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)
        validate_rtree(tree)

    def test_stale_row_count_caught(self):
        tree = make_tree()
        leaf = self._first_leaf(tree)
        leaf.arrays()
        # Bypass the tracked-list mutators: the mirror goes stale.
        list.append(leaf.entries, leaf.entries[0].__class__(Point(0.0, 0.0), "x"))
        with pytest.raises(InvariantViolation, match="stale array mirror"):
            validate_rtree(tree)

    def test_mutated_leaf_coordinate_caught(self):
        tree = make_tree()
        leaf = self._first_leaf(tree)
        arrays = leaf.arrays()
        arrays.xs[0] = arrays.xs[0] + 100.0
        # Either check may fire first: the parent's MBR containment test
        # recomputes the child box *through* the corrupted mirror.
        with pytest.raises(InvariantViolation, match="array mirror|containment"):
            validate_rtree(tree)

    def test_swapped_payload_caught(self):
        tree = make_tree()
        leaf = self._first_leaf(tree)
        arrays = leaf.arrays()
        arrays.payloads[0] = object()
        with pytest.raises(InvariantViolation, match="different payload"):
            validate_rtree(tree)

    def test_mutated_internal_bound_caught(self):
        tree = make_tree()
        root = tree.root
        assert not root.is_leaf
        arrays = root.arrays()
        arrays.hi_x[0] = arrays.hi_x[0] + 1.0
        with pytest.raises(InvariantViolation, match="disagree with the stored MBR"):
            validate_rtree(tree)

    def test_swapped_child_identity_caught(self):
        tree = make_tree()
        root = tree.root
        arrays = root.arrays()
        arrays.children[0], arrays.children[1] = (
            arrays.children[1],
            arrays.children[0],
        )
        with pytest.raises(InvariantViolation, match="different child"):
            validate_rtree(tree)

    def test_short_tie_key_memo_caught(self):
        tree = make_tree()
        leaf = self._first_leaf(tree)
        arrays = leaf.arrays()
        arrays.tie_keys = []
        if len(leaf.entries) == 0:
            pytest.skip("empty leaf")
        with pytest.raises(InvariantViolation, match="tie keys"):
            validate_rtree(tree)

    def test_unmaterialized_mirrors_are_skipped(self):
        tree = make_tree()
        # Freshly mutated nodes have no mirror; validation must not build
        # one just to compare it with itself.
        tree.root.entries.sort(key=lambda e: e.bbox.min_x)
        for entry in tree.root.entries:
            entry.refresh_bbox()
        assert tree.root._arrays is None
        validate_rtree(tree)
