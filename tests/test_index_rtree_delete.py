"""Tests for R-tree deletion (CondenseTree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import InvariantViolation, validate_rtree
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.rtree import RTree, RTreeConfig, SplitPolicy

from tests.test_index_rtree import check_invariants, make_points

coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
point_strategy = st.builds(Point, coord, coord)


class TestDelete:
    def test_delete_existing(self):
        tree = RTree(RTreeConfig(max_entries=4))
        points = make_points(50)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        assert tree.delete(points[7], payload=7)
        assert len(tree) == 49
        remaining = sorted(e.payload for e in tree.iter_entries())
        assert 7 not in remaining

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert(Point(1, 1), payload="a")
        assert not tree.delete(Point(2, 2), payload="a")
        assert not tree.delete(Point(1, 1), payload="b")
        assert len(tree) == 1

    def test_delete_from_empty(self):
        assert not RTree().delete(Point(0, 0))

    def test_delete_without_payload_matches_any(self):
        tree = RTree()
        tree.insert(Point(1, 1), payload="a")
        assert tree.delete(Point(1, 1))
        assert len(tree) == 0

    def test_delete_all_leaves_empty_tree(self):
        tree = RTree(RTreeConfig(max_entries=4))
        points = make_points(40, seed=1)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        for i, p in enumerate(points):
            assert tree.delete(p, payload=i)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search(BoundingBox(-1e6, -1e6, 1e6, 1e6)) == []

    def test_tree_shrinks_height(self):
        tree = RTree(RTreeConfig(max_entries=4))
        points = make_points(200, seed=2)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        tall = tree.height
        for i, p in enumerate(points[:190]):
            tree.delete(p, payload=i)
        assert tree.height < tall

    def test_invariants_after_interleaved_ops(self):
        tree = RTree(RTreeConfig(max_entries=5))
        rng = np.random.default_rng(3)
        live = {}
        points = make_points(300, seed=3)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
            live[i] = p
            if rng.uniform() < 0.4 and live:
                victim = int(rng.choice(sorted(live)))
                assert tree.delete(live.pop(victim), payload=victim)
        assert len(tree) == len(live)
        assert check_invariants(tree) == len(live)
        remaining = sorted(e.payload for e in tree.iter_entries())
        assert remaining == sorted(live)

    def test_queries_correct_after_deletes(self):
        tree = RTree(RTreeConfig(max_entries=6))
        points = make_points(150, seed=4)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        for i in range(0, 150, 3):
            tree.delete(points[i], payload=i)
        survivors = {i: p for i, p in enumerate(points) if i % 3 != 0}
        window = BoundingBox(10, 10, 80, 80)
        expected = sorted(
            i for i, p in survivors.items() if window.contains_point(p)
        )
        found = sorted(e.payload for e in tree.range_search(window))
        assert found == expected

    def test_duplicate_points_delete_one(self):
        tree = RTree(RTreeConfig(max_entries=4))
        for i in range(10):
            tree.insert(Point(1.0, 1.0), payload=i)
        assert tree.delete(Point(1.0, 1.0), payload=3)
        assert len(tree) == 9
        payloads = sorted(e.payload for e in tree.iter_entries())
        assert payloads == [0, 1, 2, 4, 5, 6, 7, 8, 9]

    @pytest.mark.parametrize("policy", [SplitPolicy.QUADRATIC, SplitPolicy.RSTAR])
    def test_both_split_policies(self, policy):
        tree = RTree(RTreeConfig(max_entries=5, split_policy=policy))
        points = make_points(120, seed=5)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        for i in range(60):
            assert tree.delete(points[i], payload=i)
        assert check_invariants(tree) == 60

    def test_delete_backtracks_across_leaves_for_duplicates(self):
        # Twelve copies of one point spill over several leaves (M=4), so
        # _find_leaf_path must keep descending into sibling subtrees when
        # the first DFS leaf holds the point but not the wanted payload.
        tree = RTree(RTreeConfig(max_entries=4))
        p = Point(2.0, 2.0)
        for i in range(12):
            tree.insert(p, payload=i)
        for i in (11, 0, 6, 3, 9, 1, 10, 2, 7, 4, 8, 5):
            assert tree.delete(p, payload=i), f"payload {i} not found"
            validate_rtree(tree)
        assert len(tree) == 0

    @given(
        st.lists(point_strategy, min_size=1, max_size=60),
        st.integers(min_value=0, max_value=59),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_delete_then_search(self, points, victim_index):
        tree = RTree(RTreeConfig(max_entries=5))
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        victim = victim_index % len(points)
        assert tree.delete(points[victim], payload=victim)
        window = BoundingBox(-200, -200, 200, 200)
        expected = sorted(i for i in range(len(points)) if i != victim)
        found = sorted(e.payload for e in tree.range_search(window))
        assert found == expected
        check_invariants(tree)


class TestCondenseAgainstValidator:
    """Regressions driven by the repro.analysis structural validator.

    ``validate_rtree`` is stricter than :func:`check_invariants` above: it
    additionally demands *tight* parent MBRs (catching shrink misses after
    underflow), unique node objects (catching orphaned or doubly-linked
    subtrees), an internal root with at least two children, and a reachable
    leaf count equal to ``len(tree)``.  These tests run it after every
    single mutation in the scenarios that historically stress CondenseTree.
    """

    @pytest.mark.parametrize("policy", [SplitPolicy.QUADRATIC, SplitPolicy.RSTAR])
    def test_validator_clean_through_churn(self, policy):
        tree = RTree(RTreeConfig(max_entries=4, split_policy=policy))
        rng = np.random.default_rng(11)
        live = []
        for op in range(220):
            if live and rng.uniform() < 0.45:
                idx = int(rng.integers(len(live)))
                p, payload = live.pop(idx)
                assert tree.delete(p, payload=payload)
            else:
                p = Point(float(rng.uniform(0, 50)), float(rng.uniform(0, 50)))
                tree.insert(p, payload=op)
                live.append((p, op))
            validate_rtree(tree)
            assert len(tree) == len(live)

    def test_validator_clean_during_full_drain(self):
        tree = RTree(RTreeConfig(max_entries=4))
        points = make_points(120, seed=13)
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        order = list(range(120))
        np.random.default_rng(13).shuffle(order)
        for i in order:
            assert tree.delete(points[i], payload=i)
            validate_rtree(tree)
        assert len(tree) == 0 and tree.height == 1

    def test_delete_from_bulk_loaded_tree(self):
        # STR packing legitimately leaves trailing under-filled nodes; the
        # tree marks itself relaxed so the validator's fill check adapts,
        # and CondenseTree must keep the structure sound as entries leave.
        points = make_points(90, seed=17)
        items = [(p, i) for i, p in enumerate(points)]
        tree = RTree.bulk_load(items, RTreeConfig(max_entries=5))
        validate_rtree(tree)
        for i in range(0, 90, 2):
            assert tree.delete(points[i], payload=i)
            validate_rtree(tree)
        survivors = sorted(e.payload for e in tree.iter_entries())
        assert survivors == list(range(1, 90, 2))

    def test_strict_fill_flags_underfilled_bulk_load(self):
        # 11 items at capacity 5 tile into STR slices of 6 and 5, leaving
        # one trailing leaf with a single entry: fine for a static packed
        # tree, but a min-fill violation for a dynamically built one --
        # strict_fill=True must notice.
        items = [(Point(float(i), 0.0), i) for i in range(11)]
        tree = RTree.bulk_load(items, RTreeConfig(max_entries=5))
        validate_rtree(tree)  # relaxed by default for bulk-loaded trees
        with pytest.raises(InvariantViolation):
            validate_rtree(tree, strict_fill=True)

    def test_validator_clean_with_identical_points(self):
        tree = RTree(RTreeConfig(max_entries=4))
        p = Point(2.5, 2.5)
        for i in range(30):
            tree.insert(p, payload=i)
            validate_rtree(tree)
        for i in range(30):
            assert tree.delete(p, payload=i)
            validate_rtree(tree)
        assert len(tree) == 0
