"""Property suite: vectorized kernels are bit-identical to the scalar oracle.

Every kernel in :mod:`repro.geometry.vecmath` and the batched Lemma 3.2
verifier claim *bitwise* equality with the frozen scalar loops in
:mod:`repro.testing.scalar_reference`.  Hypothesis drives the claim over
adversarial geometry:

- degenerate zero-area boxes (``lo == hi`` on one or both axes);
- boxes whose edge passes exactly through the query coordinate;
- queries sitting exactly on a box corner;
- subnormal, huge and mixed-magnitude coordinates.

Equality is asserted on the raw IEEE bit pattern (``struct.pack``), not
``==`` — a ``-0.0`` / ``+0.0`` swap or a quiet 1-ulp drift must fail.
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.core.verification import verify_single_peer
from repro.geometry.point import Point
from repro.geometry.vecmath import (
    hypot_pairs,
    maxdist_arrays,
    mindist_arrays,
    point_distance_list,
    point_distances,
)
from repro.index.knn import NeighborResult
from repro.testing.scalar_reference import (
    scalar_maxdists,
    scalar_mindists,
    scalar_point_distances,
    scalar_verify_single_peer,
)

# Full-range doubles overflow the intermediate subtractions to inf in
# NumPy and CPython alike — the bit patterns still agree, only NumPy
# warns about it.
pytestmark = pytest.mark.filterwarnings(
    "ignore:overflow encountered:RuntimeWarning"
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
#: Finite doubles across the full exponent range, subnormals included.
coords = st.floats(
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=True,
    width=64,
)

#: Coordinates in a tame range, for the end-to-end verifier test (cache
#: construction rejects pathological orderings produced by overflow).
tame_coords = st.floats(min_value=-1e9, max_value=1e9, allow_subnormal=True)


@st.composite
def boxes(draw) -> Tuple[float, float, float, float]:
    """One MBR ``(lo_x, lo_y, hi_x, hi_y)``, biased towards degeneracy.

    Roughly a third of the draws collapse an axis to zero width (the
    degenerate boxes leaf entries produce), and corners are drawn from
    the full double range.
    """
    ax = sorted([draw(coords), draw(coords)])
    ay = sorted([draw(coords), draw(coords)])
    if draw(st.integers(0, 2)) == 0:
        ax[1] = ax[0]
    if draw(st.integers(0, 2)) == 0:
        ay[1] = ay[0]
    return ax[0], ay[0], ax[1], ay[1]


@st.composite
def query_and_boxes(draw):
    """A query point plus a non-empty batch of boxes.

    With probability ~1/2 the query is snapped onto an edge coordinate
    or a corner of one of the boxes — the touching-edge and
    corner-query adversaries where clamps hit exact zeros.
    """
    batch: List[Tuple[float, float, float, float]] = draw(
        st.lists(boxes(), min_size=1, max_size=40)
    )
    px = draw(coords)
    py = draw(coords)
    snap = draw(st.integers(0, 3))
    target = batch[draw(st.integers(0, len(batch) - 1))]
    if snap == 0:  # corner query
        px, py = target[0], target[1]
    elif snap == 1:  # vertical edge through the query's x
        px = target[2]
    elif snap == 2:  # horizontal edge through the query's y
        py = target[3]
    return px, py, batch


def bits(values) -> bytes:
    """Raw IEEE-754 bit pattern of a float sequence."""
    return struct.pack(f"<{len(values)}d", *values)


def columns(batch):
    lo_x, lo_y, hi_x, hi_y = (np.array(col, dtype=np.float64) for col in zip(*batch))
    return lo_x, lo_y, hi_x, hi_y


# ----------------------------------------------------------------------
# kernel equivalence
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(query_and_boxes())
def test_mindist_bit_identical(case) -> None:
    px, py, batch = case
    lo_x, lo_y, hi_x, hi_y = columns(batch)
    vectorized = mindist_arrays(px, py, lo_x, lo_y, hi_x, hi_y).tolist()
    reference = scalar_mindists(px, py, *(c.tolist() for c in columns(batch)))
    assert bits(vectorized) == bits(reference)


@settings(max_examples=300, deadline=None)
@given(query_and_boxes())
def test_maxdist_bit_identical(case) -> None:
    px, py, batch = case
    lo_x, lo_y, hi_x, hi_y = columns(batch)
    vectorized = maxdist_arrays(px, py, lo_x, lo_y, hi_x, hi_y).tolist()
    reference = scalar_maxdists(px, py, *(c.tolist() for c in columns(batch)))
    assert bits(vectorized) == bits(reference)


@settings(max_examples=300, deadline=None)
@given(
    st.lists(st.tuples(coords, coords), min_size=1, max_size=40),
    coords,
    coords,
)
def test_point_distances_bit_identical(points, px, py) -> None:
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    reference = scalar_point_distances(px, py, xs, ys)
    array_form = point_distances(
        px, py, np.array(xs, dtype=np.float64), np.array(ys, dtype=np.float64)
    ).tolist()
    list_form = point_distance_list(px, py, xs, ys)
    assert bits(array_form) == bits(reference)
    assert bits(list_form) == bits(reference)


@settings(max_examples=300, deadline=None)
@given(st.lists(st.tuples(coords, coords), min_size=1, max_size=40))
def test_hypot_pairs_is_math_hypot(pairs) -> None:
    dx = np.array([a for a, _ in pairs], dtype=np.float64)
    dy = np.array([b for _, b in pairs], dtype=np.float64)
    reference = [math.hypot(a, b) for a, b in pairs]
    assert bits(hypot_pairs(dx, dy).tolist()) == bits(reference)


def test_mindist_zero_on_contained_point() -> None:
    # Row 0: query exactly on the corner of a degenerate (point) box at
    # subnormal coordinates.  Row 1: query strictly inside a box.  Both
    # must yield exactly +0.0.
    lo_x = np.array([5e-324, -1.0], dtype=np.float64)
    lo_y = np.array([1.0, -1.0], dtype=np.float64)
    hi_x = np.array([5e-324, 2.0], dtype=np.float64)
    hi_y = np.array([1.0, 2.0], dtype=np.float64)
    out = mindist_arrays(5e-324, 1.0, lo_x, lo_y, hi_x, hi_y)
    assert out.tolist() == [0.0, 0.0]
    assert math.copysign(1.0, out[0]) == 1.0
    assert math.copysign(1.0, out[1]) == 1.0


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.tuples(coords, coords), min_size=1, max_size=24),
    coords,
    coords,
)
def test_subnormal_and_huge_components_match(points, px, py) -> None:
    # Same as the distance test but exercised through the mindist clamp
    # with every box degenerate — leaf-entry geometry.
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    as_arrays = (
        np.array(xs, dtype=np.float64),
        np.array(ys, dtype=np.float64),
        np.array(xs, dtype=np.float64),
        np.array(ys, dtype=np.float64),
    )
    vectorized = mindist_arrays(px, py, *as_arrays).tolist()
    reference = scalar_mindists(px, py, xs, ys, xs, ys)
    assert bits(vectorized) == bits(reference)


# ----------------------------------------------------------------------
# batched Lemma 3.2 verifier vs the frozen scalar loop
# ----------------------------------------------------------------------
@st.composite
def peer_caches(draw):
    """A query, a peer cache and the k to verify against."""
    peer = Point(draw(tame_coords), draw(tame_coords))
    count = draw(st.integers(1, 12))
    raw = draw(
        st.lists(
            st.tuples(tame_coords, tame_coords), min_size=count, max_size=count
        )
    )
    neighbors = sorted(
        (
            NeighborResult(Point(x, y), f"poi-{index}", peer.distance_to(Point(x, y)))
            for index, (x, y) in enumerate(raw)
        ),
        key=lambda n: n.distance,
    )
    cache = CachedQueryResult(query_location=peer, neighbors=tuple(neighbors))
    query = Point(draw(tame_coords), draw(tame_coords))
    capacity = draw(st.integers(1, count + 2))
    return query, cache, capacity


@settings(max_examples=200, deadline=None)
@given(peer_caches())
def test_batched_single_peer_matches_scalar_loop(case) -> None:
    query, cache, capacity = case
    live = CandidateHeap(capacity)
    certified = verify_single_peer(query, cache, live)

    offers = scalar_verify_single_peer(
        query,
        cache.query_location,
        cache.certain_radius,
        [(n.point, n.payload) for n in cache.neighbors],
    )
    oracle = CandidateHeap(capacity)
    for point, payload, distance, certain in offers:
        oracle.add(point, payload, distance, certain)

    assert certified == sum(1 for offer in offers if offer[3])
    live_rows = [
        (e.point.x, e.point.y, e.payload, e.distance, e.certain)
        for e in live.entries()
    ]
    oracle_rows = [
        (e.point.x, e.point.y, e.payload, e.distance, e.certain)
        for e in oracle.entries()
    ]
    assert live_rows == oracle_rows
    assert live.state() is oracle.state()
