"""Tests for the continuous-query package (k-NNMP baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.multistep import bounded_multistep_knn, naive_multistep_knn
from repro.continuous.splitpoints import continuous_nearest_segment
from repro.continuous.trajectory import Trajectory
from repro.core.server import SpatialDatabaseServer
from repro.geometry.point import Point

coord = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def make_pois(n=40, seed=0, extent=10.0):
    rng = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, n), rng.uniform(0, extent, n))
        )
    ]


class TestTrajectory:
    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0, 0)])

    def test_duplicate_waypoints_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0, 0), Point(0, 0)])

    def test_length(self):
        t = Trajectory([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert t.length == pytest.approx(7.0)

    def test_point_at(self):
        t = Trajectory([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert t.point_at(0.0) == Point(0, 0)
        assert t.point_at(1.5) == Point(1.5, 0.0)
        p = t.point_at(5.0)
        assert p.x == pytest.approx(3.0)
        assert p.y == pytest.approx(2.0)
        assert t.point_at(100.0) == Point(3, 4)
        assert t.point_at(-1.0) == Point(0, 0)

    def test_sample_includes_endpoints(self):
        t = Trajectory([Point(0, 0), Point(10, 0)])
        samples = t.sample(3.0)
        assert samples[0] == Point(0, 0)
        assert samples[-1] == Point(10, 0)
        assert len(samples) == 5  # 0, 3, 6, 9, 10

    def test_sample_bad_interval(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0, 0), Point(1, 0)]).sample(0.0)

    def test_segments(self):
        t = Trajectory([Point(0, 0), Point(1, 0), Point(1, 1)])
        assert t.segments() == [(Point(0, 0), Point(1, 0)), (Point(1, 0), Point(1, 1))]

    @given(st.lists(
               st.builds(
                   lambda x, y: Point(float(x), float(y)),
                   st.integers(min_value=-50, max_value=50),
                   st.integers(min_value=-50, max_value=50),
               ),
               min_size=2, max_size=6, unique_by=lambda p: (p.x, p.y)),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_point_at_on_polyline(self, waypoints, fraction):
        t = Trajectory(waypoints)
        p = t.point_at(fraction * t.length)
        # The point must lie on one of the legs (distance ~ 0 to segment).
        def seg_dist(q, a, b):
            length_sq = a.squared_distance_to(b)
            u = ((q.x - a.x) * (b.x - a.x) + (q.y - a.y) * (b.y - a.y)) / length_sq
            u = min(1.0, max(0.0, u))
            proj = Point(a.x + u * (b.x - a.x), a.y + u * (b.y - a.y))
            return q.distance_to(proj)

        assert min(seg_dist(p, a, b) for a, b in t.segments()) < 1e-6


class TestMultistep:
    def _setup(self, seed=0):
        pois = make_pois(seed=seed)
        server = SpatialDatabaseServer.from_points(pois)
        trajectory = Trajectory([Point(1, 1), Point(8, 2), Point(8, 8)])
        positions = trajectory.sample(0.4)
        return pois, server, positions

    def test_naive_matches_brute_force(self):
        pois, server, positions = self._setup()
        result = naive_multistep_knn(server, positions, 3)
        for position, answer in zip(positions, result.per_point):
            expected = sorted(position.distance_to(p) for p, _ in pois)[:3]
            assert [r.distance for r in answer] == pytest.approx(expected)
        assert result.server_queries == len(positions)

    def test_bounded_matches_naive_answers(self):
        pois, server_a, positions = self._setup(seed=1)
        server_b = SpatialDatabaseServer.from_points(pois)
        naive = naive_multistep_knn(server_a, positions, 3)
        bounded = bounded_multistep_knn(server_b, positions, 3)
        for a, b in zip(naive.per_point, bounded.per_point):
            assert [x.distance for x in a] == pytest.approx(
                [y.distance for y in b]
            )

    def test_bounded_saves_server_queries(self):
        pois, server_a, positions = self._setup(seed=2)
        server_b = SpatialDatabaseServer.from_points(pois)
        naive = naive_multistep_knn(server_a, positions, 3)
        bounded = bounded_multistep_knn(server_b, positions, 3)
        assert bounded.server_queries < naive.server_queries

    def test_small_database_single_fetch(self):
        pois = make_pois(n=4)
        server = SpatialDatabaseServer.from_points(pois)
        positions = Trajectory([Point(0, 0), Point(9, 9)]).sample(0.5)
        result = bounded_multistep_knn(server, positions, 3, fetch_count=10)
        # m exceeds the population: one fetch covers the whole trajectory.
        assert result.server_queries == 1

    def test_validation(self):
        server = SpatialDatabaseServer.from_points(make_pois(n=5))
        with pytest.raises(ValueError):
            naive_multistep_knn(server, [Point(0, 0)], 0)
        with pytest.raises(ValueError):
            bounded_multistep_knn(server, [Point(0, 0)], 0)
        with pytest.raises(ValueError):
            bounded_multistep_knn(server, [Point(0, 0)], 3, fetch_count=3)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded_correct(self, seed):
        rng = np.random.default_rng(seed)
        pois = make_pois(n=int(rng.integers(5, 40)), seed=seed)
        server = SpatialDatabaseServer.from_points(pois)
        k = int(rng.integers(1, 4))
        a = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        b = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        if a == b:
            b = Point(a.x + 1.0, a.y)
        positions = Trajectory([a, b]).sample(0.7)
        result = bounded_multistep_knn(server, positions, k)
        for position, answer in zip(positions, result.per_point):
            expected = sorted(position.distance_to(p) for p, _ in pois)[:k]
            assert [r.distance for r in answer] == pytest.approx(expected)


class TestSplitPoints:
    def test_single_poi(self):
        intervals = continuous_nearest_segment(
            [(Point(5, 5), "only")], Point(0, 0), Point(10, 0)
        )
        assert len(intervals) == 1
        assert intervals[0].payload == "only"
        assert intervals[0].start_t == 0.0
        assert intervals[0].end_t == 1.0

    def test_empty_pois_rejected(self):
        with pytest.raises(ValueError):
            continuous_nearest_segment([], Point(0, 0), Point(1, 0))

    def test_two_pois_one_split(self):
        pois = [(Point(2, 1), "left"), (Point(8, 1), "right")]
        intervals = continuous_nearest_segment(pois, Point(0, 0), Point(10, 0))
        assert [i.payload for i in intervals] == ["left", "right"]
        # The crossing is the bisector x = 5 -> t = 0.5.
        assert intervals[0].end_t == pytest.approx(0.5)

    def test_degenerate_segment(self):
        pois = [(Point(0, 1), "near"), (Point(9, 9), "far")]
        intervals = continuous_nearest_segment(pois, Point(0, 0), Point(0, 0))
        assert len(intervals) == 1
        assert intervals[0].payload == "near"

    def test_intervals_cover_unit_range(self):
        pois = make_pois(n=25, seed=3)
        intervals = continuous_nearest_segment(pois, Point(0, 0), Point(10, 10))
        assert intervals[0].start_t == 0.0
        assert intervals[-1].end_t == pytest.approx(1.0)
        for a, b in zip(intervals, intervals[1:]):
            assert b.start_t == pytest.approx(a.end_t)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_sampling_oracle(self, seed):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(2, 30))
        pois = make_pois(n=count, seed=seed)
        start = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        end = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        if start == end:
            end = Point(start.x + 1.0, start.y)
        intervals = continuous_nearest_segment(pois, start, end)
        # At each interval midpoint the recorded POI is a true NN.
        for interval in intervals:
            t = interval.midpoint_t()
            x = Point(
                start.x + t * (end.x - start.x), start.y + t * (end.y - start.y)
            )
            best = min(x.distance_to(p) for p, _ in pois)
            assert x.distance_to(interval.point) == pytest.approx(best, abs=1e-6)
