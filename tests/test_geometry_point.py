"""Unit and property tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point, centroid, distance, squared_distance

finite_coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, finite_coord, finite_coord)


class TestPointBasics:
    def test_distance_matches_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == pytest.approx(25.0)

    def test_module_level_helpers(self):
        a, b = Point(0, 0), Point(1, 1)
        assert distance(a, b) == pytest.approx(math.sqrt(2))
        assert squared_distance(a, b) == pytest.approx(2.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_points_are_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_iteration_and_tuple(self):
        p = Point(2.0, 3.0)
        assert tuple(p) == (2.0, 3.0)
        assert p.as_tuple() == (2.0, 3.0)

    def test_angle_to(self):
        assert Point(0, 0).angle_to(Point(1, 0)) == pytest.approx(0.0)
        assert Point(0, 0).angle_to(Point(0, 1)) == pytest.approx(math.pi / 2)
        assert Point(0, 0).angle_to(Point(-1, 0)) == pytest.approx(math.pi)


class TestTowards:
    def test_towards_moves_exact_distance(self):
        p = Point(0, 0).towards(Point(10, 0), 4.0)
        assert p == Point(4.0, 0.0)

    def test_towards_can_overshoot(self):
        p = Point(0, 0).towards(Point(1, 0), 5.0)
        assert p.x == pytest.approx(5.0)

    def test_towards_coincident_target_is_identity(self):
        p = Point(3, 3)
        assert p.towards(p, 10.0) == p


class TestCentroid:
    def test_centroid_of_square_corners(self):
        corners = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(corners) == Point(1.0, 1.0)

    def test_centroid_of_single_point(self):
        assert centroid([Point(5, 7)]) == Point(5, 7)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points)
    def test_distance_non_negative(self, a, b):
        assert a.distance_to(b) >= 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_squared_distance_consistent(self, a, b):
        assert math.sqrt(a.squared_distance_to(b)) == pytest.approx(
            a.distance_to(b), abs=1e-9
        )

    @given(points, points, st.floats(min_value=0.0, max_value=100.0))
    def test_towards_distance(self, a, b, dist):
        # Mirrors the exact zero guard inside Point.towards on purpose.
        if a.distance_to(b) == 0.0:  # repro: noqa(RPR001)
            assert a.towards(b, dist) == a
        else:
            moved = a.towards(b, dist)
            assert a.distance_to(moved) == pytest.approx(dist, abs=1e-6)

    def test_towards_subnormal_separation(self):
        # dist / total overflows to inf when the separation is subnormal;
        # towards must normalize the direction instead of blowing up.
        a = Point(0.0, 0.0)
        b = Point(0.0, 2.2250738585072014e-308)
        moved = a.towards(b, 4.0)
        assert a.distance_to(moved) == pytest.approx(4.0, abs=1e-6)
