"""Tests for the repro-experiments CLI."""

import pytest

from repro import cli
from repro.experiments.runner import FigureResult


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig9" in output
        assert "fig17" in output
        assert "snnn-study" in output

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            cli.main(["not-a-figure"])

    def test_runs_experiment(self, capsys, monkeypatch):
        calls = {}

        def fake(quality, seed=0):
            calls["quality"] = quality
            calls["seed"] = seed
            result = FigureResult("figX", "t", "x", [1.0])
            result.series["LA"] = {"server": [50.0]}
            return result

        monkeypatch.setitem(cli._FIGURES, "fig9", fake)
        assert cli.main(["fig9", "--quality", "fast", "--seed", "7"]) == 0
        assert calls["seed"] == 7
        assert calls["quality"].value == "fast"
        output = capsys.readouterr().out
        assert "figX" in output
        assert "finished in" in output

    def test_renders_dict_results(self, capsys, monkeypatch):
        monkeypatch.setitem(
            cli._FIGURES, "snnn-study", lambda quality, seed=0: {"metric": 1.0}
        )
        assert cli.main(["snnn-study"]) == 0
        assert "metric" in capsys.readouterr().out

    def test_full_quality_flag(self, monkeypatch):
        seen = {}
        monkeypatch.setitem(
            cli._FIGURES,
            "fig9",
            lambda quality, seed=0: seen.setdefault("q", quality) or {"ok": 1},
        )
        cli.main(["fig9", "--quality", "full"])
        assert seen["q"].value == "full"
