"""Scenario codec round-trips and generator determinism."""

import pytest

from repro.testing.scenarios import (
    PeerSpec,
    Scenario,
    ScenarioGen,
    decode_scenario,
    encode_scenario,
)

SAMPLE = Scenario(
    k=3,
    query=(0.1, 0.9),
    pois=((0.25, 0.5, "a"), (1 / 3, 0.75, "b_2")),
    peers=(PeerSpec(0.0, 0.0, 2), PeerSpec(0.5, 0.5, 0)),
    cache_capacity=4,
    coverage="polygon",
    polygon_sides=16,
    use_own_cache=True,
    exact=False,
    range_radius=0.2,
    check_network=True,
)


class TestScenarioValidation:
    def test_requires_pois(self):
        with pytest.raises(ValueError):
            Scenario(k=1, query=(0, 0), pois=())

    def test_rejects_duplicate_poi_ids(self):
        with pytest.raises(ValueError):
            Scenario(k=1, query=(0, 0), pois=((0, 0, "a"), (1, 1, "a")))

    def test_rejects_bad_poi_id(self):
        with pytest.raises(ValueError):
            Scenario(k=1, query=(0, 0), pois=((0, 0, "a:b"),))

    def test_rejects_own_cache_without_peers(self):
        with pytest.raises(ValueError):
            Scenario(k=1, query=(0, 0), pois=((0, 0, "a"),), use_own_cache=True)

    def test_rejects_negative_cache_k(self):
        with pytest.raises(ValueError):
            PeerSpec(0.0, 0.0, -1)

    def test_rejects_unknown_coverage(self):
        with pytest.raises(ValueError):
            Scenario(k=1, query=(0, 0), pois=((0, 0, "a"),), coverage="magic")


class TestCodec:
    def test_round_trip_exact(self):
        encoded = encode_scenario(SAMPLE)
        assert decode_scenario(encoded) == SAMPLE

    def test_round_trip_preserves_float_bits(self):
        """repr-form floats survive the trip bit-for-bit (1/3 included)."""
        decoded = decode_scenario(encode_scenario(SAMPLE))
        assert decoded.pois[1][0] == 1 / 3

    def test_minimal_string_defaults(self):
        scenario = decode_scenario("repro1;k=1;q=0.0:0.0;pois=0.5:0.5:p0;peers=")
        assert scenario.k == 1
        assert scenario.cache_capacity == 8
        assert scenario.coverage == "exact"
        assert scenario.peers == ()
        assert scenario.range_radius is None

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            decode_scenario("repro9;k=1;q=0:0;pois=0:0:a;peers=")

    def test_rejects_duplicate_field(self):
        with pytest.raises(ValueError):
            decode_scenario("repro1;k=1;k=2;q=0:0;pois=0:0:a;peers=")

    def test_rejects_missing_field(self):
        with pytest.raises(ValueError):
            decode_scenario("repro1;k=1;q=0:0;peers=")

    def test_rejects_malformed_field(self):
        with pytest.raises(ValueError):
            decode_scenario("repro1;k=1;garbage;q=0:0;pois=0:0:a;peers=")


class TestScenarioGen:
    def test_same_seed_same_scenarios(self):
        a = [s for _, s in ScenarioGen(seed=13).stream(25)]
        b = [s for _, s in ScenarioGen(seed=13).stream(25)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [s for _, s in ScenarioGen(seed=1).stream(10)]
        b = [s for _, s in ScenarioGen(seed=2).stream(10)]
        assert a != b

    def test_random_access_matches_stream(self):
        """generate(i) must not depend on having generated 0..i-1."""
        gen = ScenarioGen(seed=4)
        streamed = dict(gen.stream(20))
        fresh = ScenarioGen(seed=4)
        for index in (17, 3, 11, 0):
            assert fresh.generate(index) == streamed[index]

    def test_stream_start_offset(self):
        gen = ScenarioGen(seed=5)
        tail = dict(gen.stream(5, start=10))
        assert set(tail) == {10, 11, 12, 13, 14}
        assert tail[12] == gen.generate(12)

    def test_every_family_appears(self):
        gen = ScenarioGen(seed=9)
        assert len(gen.families) == 6
        scenarios = [gen.generate(i) for i in range(len(gen.families))]
        assert len(scenarios) == len(gen.families)

    def test_scenarios_are_valid_and_round_trip(self):
        gen = ScenarioGen(seed=21)
        for _, scenario in gen.stream(50):
            assert decode_scenario(encode_scenario(scenario)) == scenario

    def test_adversarial_shapes_show_up(self):
        """The generator must produce its advertised degeneracies."""
        gen = ScenarioGen(seed=2)
        scenarios = [s for _, s in gen.stream(200)]
        assert any(
            len({(x, y) for x, y, _ in s.pois}) < len(s.pois) for s in scenarios
        ), "no duplicate POI locations generated"
        assert any(
            any(p.cache_k == 0 for p in s.peers) for s in scenarios
        ), "no cold caches generated"
        assert any(s.k > len(s.pois) for s in scenarios), "no k beyond POI count"
        assert any(s.range_radius == 0.0 for s in scenarios), "no zero-radius range"
        assert any(s.coverage == "polygon" for s in scenarios)
        assert any(s.exact for s in scenarios)
        assert any(s.check_network for s in scenarios)
