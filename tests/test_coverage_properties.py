"""Property tests for Lemma 3.8 certain-region coverage.

Hypothesis drives :class:`repro.geometry.coverage.CertainRegion` against
the sampling oracle from :mod:`repro.testing.oracles` across both
backends and polygonization levels 8/16/32/64.  Coordinates are dyadic
rationals so distance comparisons frequently land on exact ties -- the
regime where coverage code historically breaks.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.coverage import CertainRegion, CoverageMethod
from repro.geometry.point import Point
from repro.testing.oracles import certify_multi_oracle

SIDES = (8, 16, 32, 64)

coords = st.integers(-12, 12).map(lambda v: v / 8.0)
radii = st.integers(1, 16).map(lambda v: v / 8.0)
circles = st.tuples(coords, coords, radii).map(
    lambda t: Circle(Point(t[0], t[1]), t[2])
)


def build_region(cover, method, sides):
    region = CertainRegion(method=method, polygon_sides=sides)
    for circle in cover:
        region.add_circle(circle)
    return region


class TestSoundness:
    @settings(max_examples=150, deadline=None)
    @given(
        cover=st.lists(circles, min_size=1, max_size=4),
        cx=coords,
        cy=coords,
        radius=radii,
    )
    def test_covered_verdict_never_contradicts_oracle(self, cover, cx, cy, radius):
        """If any backend certifies coverage, no sampled boundary point may
        escape the union (Lemma 3.8 soundness)."""
        target = Circle(Point(cx, cy), radius)
        oracle = certify_multi_oracle(
            target.center, [(c.center, c.radius) for c in cover], radius
        )
        for sides in SIDES:
            for method in (CoverageMethod.EXACT, CoverageMethod.POLYGON):
                region = build_region(cover, method, sides)
                if region.covers_disk(target):
                    assert not oracle.definitely_uncovered(), (
                        f"{method.value}/{sides} certified a disk the oracle "
                        f"finds uncovered (slack {oracle.slack})"
                    )

    @settings(max_examples=150, deadline=None)
    @given(
        cover=st.lists(circles, min_size=1, max_size=3),
        cx=coords,
        cy=coords,
        radius=radii,
    )
    def test_sampled_escape_is_never_certified(self, cover, cx, cy, radius):
        """A boundary point provably outside every circle forbids coverage
        for every backend and every polygonization level."""
        target = Circle(Point(cx, cy), radius)
        oracle = certify_multi_oracle(
            target.center, [(c.center, c.radius) for c in cover], radius
        )
        assume(oracle.definitely_uncovered(1e-9))
        for sides in SIDES:
            for method in (CoverageMethod.EXACT, CoverageMethod.POLYGON):
                region = build_region(cover, method, sides)
                assert not region.covers_disk(target)


class TestCompleteness:
    @settings(max_examples=150, deadline=None)
    @given(
        cx=coords,
        cy=coords,
        big=st.integers(4, 16).map(lambda v: v / 8.0),
        angle=st.integers(0, 15).map(lambda v: v * math.pi / 8.0),
        offset_num=st.integers(0, 6),
        sides_index=st.integers(0, len(SIDES) - 1),
    )
    def test_disk_inside_apothem_verifies(
        self, cx, cy, big, angle, offset_num, sides_index
    ):
        """A target comfortably inside the inscribed polygon's apothem must
        verify under the paper's polygon backend (and the exact one)."""
        sides = SIDES[sides_index]
        center = Point(cx, cy)
        apothem = big * math.cos(math.pi / sides)
        small = big / 8.0
        # Place the target so d + r stays 0.01 below the apothem.
        reach = apothem - small - 0.01
        assume(reach > 0.0)
        distance = reach * (offset_num / 8.0)
        target = Circle(
            Point(
                center.x + distance * math.cos(angle),
                center.y + distance * math.sin(angle),
            ),
            small,
        )
        exact = build_region([Circle(center, big)], CoverageMethod.EXACT, sides)
        polygon = build_region([Circle(center, big)], CoverageMethod.POLYGON, sides)
        assert exact.covers_disk(target)
        assert polygon.covers_disk(target)

    @settings(max_examples=100, deadline=None)
    @given(
        cover=st.lists(circles, min_size=1, max_size=3),
        dx=st.integers(-4, 4).map(lambda v: v / 16.0),
        dy=st.integers(-4, 4).map(lambda v: v / 16.0),
        radius=st.integers(1, 4).map(lambda v: v / 16.0),
        sides_index=st.integers(0, len(SIDES) - 1),
    )
    def test_polygon_certified_implies_truly_covered(
        self, cover, dx, dy, radius, sides_index
    ):
        """The polygon backend under-approximates the circles, so its YES
        carries real slack: the oracle must see clear coverage, not a
        borderline touch.  Targets sit near the first covering circle's
        center so the covered branch is actually exercised."""
        sides = SIDES[sides_index]
        target = Circle(
            Point(cover[0].center.x + dx, cover[0].center.y + dy), radius
        )
        region = build_region(cover, CoverageMethod.POLYGON, sides)
        if not region.covers_disk(target):
            return
        oracle = certify_multi_oracle(
            target.center, [(c.center, c.radius) for c in cover], radius
        )
        assert oracle.slack > -math.pi * radius / 256


class TestRegionBasics:
    def test_empty_region_covers_nothing(self):
        region = CertainRegion()
        assert region.is_empty()
        assert not region.covers_disk(Circle(Point(0, 0), 0.0))

    def test_zero_radius_circles_are_ignored(self):
        region = CertainRegion()
        region.add_circle(Circle(Point(0, 0), 0.0))
        assert region.is_empty()

    @given(sides_index=st.integers(0, len(SIDES) - 1))
    def test_region_itself_is_covered(self, sides_index):
        """Each backend certifies a disk well inside a single circle."""
        sides = SIDES[sides_index]
        inner = Circle(Point(0.25, 0.25), 0.25)
        for method in (CoverageMethod.EXACT, CoverageMethod.POLYGON):
            region = build_region([Circle(Point(0, 0), 2.0)], method, sides)
            assert region.covers_disk(inner)
