"""Tests for repro.core.host."""

import numpy as np
import pytest

from repro.core.host import MobileHost
from repro.core.senn import ResolutionTier, SennConfig
from repro.core.server import SpatialDatabaseServer
from repro.geometry.point import Point
from repro.network.generator import RoadNetworkSpec, generate_road_network


def make_pois(n=40, seed=0, extent=10.0):
    rng = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, n), rng.uniform(0, extent, n))
        )
    ]


CONFIG = SennConfig(k=3, transmission_range=1.0, cache_capacity=10)


class TestRangeAndPeers:
    def test_in_range(self):
        a = MobileHost(1, Point(0, 0), CONFIG)
        b = MobileHost(2, Point(0.5, 0), CONFIG)
        c = MobileHost(3, Point(5, 0), CONFIG)
        assert a.in_range_of(b)
        assert not a.in_range_of(c)

    def test_reachable_peers_excludes_self(self):
        a = MobileHost(1, Point(0, 0), CONFIG)
        b = MobileHost(2, Point(0.2, 0), CONFIG)
        peers = a.reachable_peers([a, b])
        assert peers == [b]


class TestQueryFlow:
    def test_cold_start_goes_to_server(self):
        pois = make_pois()
        server = SpatialDatabaseServer.from_points(pois)
        host = MobileHost(1, Point(5, 5), CONFIG)
        result = host.query_knn(peers=[], server=server)
        assert result.tier is ResolutionTier.SERVER
        assert host.queries_issued == 1
        assert host.resolution_counts[ResolutionTier.SERVER] == 1
        # Cache was filled with the (over-fetched) certain result.
        assert not host.cache.is_empty()
        assert host.cache.get().k == CONFIG.cache_capacity

    def test_repeat_query_hits_local_cache(self):
        pois = make_pois()
        server = SpatialDatabaseServer.from_points(pois)
        host = MobileHost(1, Point(5, 5), CONFIG)
        host.query_knn(peers=[], server=server)
        result = host.query_knn(peers=[], server=server)
        assert result.tier is ResolutionTier.LOCAL_CACHE
        assert server.queries_served == 1  # no second server round-trip

    def test_peer_sharing_avoids_server(self):
        pois = make_pois()
        server = SpatialDatabaseServer.from_points(pois)
        veteran = MobileHost(1, Point(5, 5), CONFIG)
        veteran.query_knn(peers=[], server=server)

        newcomer = MobileHost(2, Point(5.05, 5.0), CONFIG)
        result = newcomer.query_knn(peers=[veteran], server=server)
        assert result.tier in (
            ResolutionTier.SINGLE_PEER,
            ResolutionTier.MULTI_PEER,
        )
        assert server.queries_served == 1

    def test_out_of_range_peer_not_consulted(self):
        pois = make_pois()
        server = SpatialDatabaseServer.from_points(pois)
        veteran = MobileHost(1, Point(5, 5), CONFIG)
        veteran.query_knn(peers=[], server=server)
        distant = MobileHost(2, Point(9.9, 9.9), CONFIG)
        result = distant.query_knn(peers=[veteran], server=server)
        assert result.tier is ResolutionTier.SERVER
        assert result.peers_consulted == 0

    def test_query_correctness_via_peers(self):
        pois = make_pois(seed=7)
        server = SpatialDatabaseServer.from_points(pois)
        veteran = MobileHost(1, Point(5, 5), CONFIG)
        veteran.query_knn(peers=[], server=server)
        newcomer = MobileHost(2, Point(5.02, 5.0), CONFIG)
        result = newcomer.query_knn(peers=[veteran], server=server)
        q = newcomer.position
        expected = sorted(q.distance_to(p) for p, _ in pois)[:3]
        assert [n.distance for n in result.neighbors][:3] == pytest.approx(expected)

    def test_server_share(self):
        pois = make_pois()
        server = SpatialDatabaseServer.from_points(pois)
        host = MobileHost(1, Point(5, 5), CONFIG)
        assert host.server_share() == 0.0
        host.query_knn(peers=[], server=server)  # server
        host.query_knn(peers=[], server=server)  # local cache
        assert host.server_share() == pytest.approx(0.5)

    def test_network_query(self):
        network = generate_road_network(
            RoadNetworkSpec(width=10.0, height=10.0, secondary_spacing=1.0, seed=0)
        )
        pois = [(network.snap(p).point, payload) for p, payload in make_pois(20)]
        server = SpatialDatabaseServer.from_points(pois)
        host = MobileHost(1, Point(5, 5), CONFIG)
        result = host.query_knn_network(network, peers=[], server=server)
        assert len(result.neighbors) == 3
        assert host.queries_issued == 1
