"""Docs hygiene: every intra-repo markdown link must resolve.

Scans the top-level markdown pages plus everything under ``docs/``,
extracts ``[text](target)`` links outside fenced code blocks, and
asserts each relative target exists on disk. External links
(http/https/mailto) and pure ``#anchor`` links are out of scope — this
is a filesystem check, not a network crawler.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

TOP_LEVEL_PAGES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*(```|~~~)")


def _doc_pages():
    pages = [REPO_ROOT / name for name in TOP_LEVEL_PAGES]
    pages.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [page for page in pages if page.exists()]


def _links_outside_fences(page: Path):
    in_fence = False
    for line_number, line in enumerate(page.read_text().splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield line_number, match.group(1)


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_markdown_links_resolve(page):
    broken = []
    for line_number, target in _links_outside_fences(page):
        if _is_external(target):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (page.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(f"{page.name}:{line_number}: {target}")
    assert not broken, "broken intra-repo links:\n" + "\n".join(broken)


def test_scanner_sees_the_docs_tree():
    pages = {page.name for page in _doc_pages()}
    assert "README.md" in pages
    assert "architecture.md" in pages
    assert "observability.md" in pages


def test_readme_links_every_docs_page():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in (REPO_ROOT / "docs").glob("*.md"):
        assert f"docs/{page.name}" in readme, (
            f"docs/{page.name} is not linked from the README documentation index"
        )
