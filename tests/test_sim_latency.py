"""Tests for the latency model and its metrics integration."""

import pytest

from repro.core.senn import ResolutionTier
from repro.sim.config import SimulationConfig, los_angeles_2x2
from repro.sim.latency import LatencyModel
from repro.sim.simulation import Simulation
from repro.sim.stats import SimulationMetrics


class TestLatencyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(p2p_probe_ms=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(server_rtt_ms=-1.0)

    def test_peer_answer_costs_probes_and_tuples(self):
        model = LatencyModel(p2p_probe_ms=5.0, p2p_tuple_ms=0.5)
        latency = model.query_latency_ms(
            ResolutionTier.SINGLE_PEER, peer_probes=3, tuples_received=10,
            server_pages=0,
        )
        assert latency == pytest.approx(3 * 5.0 + 10 * 0.5)

    def test_server_answer_adds_round_trip(self):
        model = LatencyModel(
            p2p_probe_ms=5.0, p2p_tuple_ms=0.0, server_rtt_ms=150.0,
            server_page_ms=10.0,
        )
        latency = model.query_latency_ms(
            ResolutionTier.SERVER, peer_probes=2, tuples_received=0, server_pages=4,
        )
        assert latency == pytest.approx(2 * 5.0 + 150.0 + 40.0)

    def test_local_cache_costs_nothing(self):
        model = LatencyModel()
        assert model.query_latency_ms(ResolutionTier.LOCAL_CACHE, 0, 0, 0) == 0.0


class TestMetricsLatency:
    def test_mean_latency(self):
        metrics = SimulationMetrics()
        metrics.record(ResolutionTier.SERVER, server_pages=5, latency_ms=300.0)
        metrics.record(ResolutionTier.SINGLE_PEER, latency_ms=20.0)
        assert metrics.mean_latency_ms() == pytest.approx(160.0)
        assert metrics.mean_latency_for(ResolutionTier.SERVER) == pytest.approx(300.0)
        assert metrics.mean_latency_for(ResolutionTier.SINGLE_PEER) == pytest.approx(20.0)

    def test_empty_latency(self):
        metrics = SimulationMetrics()
        assert metrics.mean_latency_ms() == 0.0
        assert metrics.mean_latency_for(ResolutionTier.SERVER) == 0.0


class TestSimulationLatencyIntegration:
    def test_simulation_populates_latency(self):
        config = SimulationConfig(
            parameters=los_angeles_2x2(), t_execution_s=180.0, seed=2
        )
        metrics = Simulation(config).run()
        if metrics.total_queries:
            assert metrics.total_latency_ms > 0.0
            # Server-tier queries are costlier on average than peer-tier.
            server_ms = metrics.mean_latency_for(ResolutionTier.SERVER)
            peer_ms = metrics.mean_latency_for(ResolutionTier.SINGLE_PEER)
            if server_ms and peer_ms:
                assert server_ms > peer_ms

    def test_custom_model_scales_latency(self):
        cheap = SimulationConfig(
            parameters=los_angeles_2x2(), t_execution_s=180.0, seed=2,
            latency_model=LatencyModel(server_rtt_ms=10.0),
        )
        dear = SimulationConfig(
            parameters=los_angeles_2x2(), t_execution_s=180.0, seed=2,
            latency_model=LatencyModel(server_rtt_ms=1000.0),
        )
        m_cheap = Simulation(cheap).run()
        m_dear = Simulation(dear).run()
        assert m_dear.total_latency_ms > m_cheap.total_latency_ms
