"""Tests for the repository's extensions: cache history, communication
accounting, and the dynamic-POI (R-tree delete) workflow at system level."""

import numpy as np
import pytest

from repro.core.cache import QueryCache
from repro.core.host import MobileHost
from repro.core.senn import ResolutionTier, SennConfig
from repro.core.server import SpatialDatabaseServer
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def neighbors(*distances):
    return [
        NeighborResult(Point(d, 0.0), f"poi-{d}", d) for d in distances
    ]


def make_pois(n=40, seed=0, extent=10.0):
    rng = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, n), rng.uniform(0, extent, n))
        )
    ]


class TestCacheHistory:
    def test_history_validation(self):
        with pytest.raises(ValueError):
            QueryCache(5, history=0)

    def test_single_history_is_policy_1(self):
        cache = QueryCache(5, history=1)
        cache.store(Point(0, 0), neighbors(1.0))
        cache.store(Point(1, 1), neighbors(2.0))
        assert len(cache.snapshots()) == 1
        assert cache.get().query_location == Point(1, 1)

    def test_history_retains_last_n(self):
        cache = QueryCache(5, history=3)
        for i in range(5):
            cache.store(Point(float(i), 0.0), neighbors(1.0 + i))
        snapshots = cache.snapshots()
        assert len(snapshots) == 3
        # Newest first.
        assert [s.query_location.x for s in snapshots] == [4.0, 3.0, 2.0]

    def test_tuple_count(self):
        cache = QueryCache(5, history=2)
        cache.store(Point(0, 0), neighbors(1.0, 2.0))
        cache.store(Point(1, 0), neighbors(1.0, 2.0, 3.0))
        assert cache.tuple_count() == 5

    def test_clear_empties_history(self):
        cache = QueryCache(5, history=3)
        cache.store(Point(0, 0), neighbors(1.0))
        cache.clear()
        assert cache.is_empty()
        assert cache.snapshots() == []

    def test_host_history_config(self):
        config = SennConfig(k=2, cache_history=3)
        host = MobileHost(1, Point(0, 0), config)
        assert host.cache.history == 3

    def test_invalid_history_config(self):
        with pytest.raises(ValueError):
            SennConfig(k=2, cache_history=0)

    def test_history_peer_shares_multiple_circles(self):
        """A peer with history 2 transmits both cached results."""
        pois = make_pois(seed=3)
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(
            k=3, transmission_range=3.0, cache_capacity=10, cache_history=2
        )
        veteran = MobileHost(1, Point(3, 3), config)
        veteran.query_knn(peers=[], server=server)
        veteran.position = Point(7, 7)
        veteran.query_knn(peers=[], server=server)
        assert len(veteran.cache_snapshots()) == 2
        # The veteran drives back towards the first area; its *newest*
        # cache entry is still anchored at (7, 7).
        veteran.position = Point(3.5, 3.0)

        newcomer = MobileHost(2, Point(3.05, 3.0), config)
        result = newcomer.query_knn(peers=[veteran], server=server)
        # The veteran's *older* entry (near 3,3) answers the query even
        # though its newest one is far away.
        assert result.tier in (
            ResolutionTier.SINGLE_PEER,
            ResolutionTier.MULTI_PEER,
        )

    def test_own_history_answers_revisited_area(self):
        """With history > 1, revisiting an earlier area hits own cache."""
        pois = make_pois(seed=4)
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(
            k=3, transmission_range=1.0, cache_capacity=10, cache_history=2
        )
        host = MobileHost(1, Point(2, 2), config)
        host.query_knn(peers=[], server=server)
        host.position = Point(8, 8)
        host.query_knn(peers=[], server=server)
        host.position = Point(2.02, 2.0)  # back near the first area
        result = host.query_knn(peers=[], server=server)
        assert result.answered_by_peers
        assert server.queries_served == 2


class TestCommunicationAccounting:
    def test_probe_counting(self):
        pois = make_pois(seed=5)
        server = SpatialDatabaseServer.from_points(pois)
        config = SennConfig(k=3, transmission_range=2.0, cache_capacity=10)
        warm = []
        for i in range(3):
            peer = MobileHost(i + 10, Point(5.0 + 0.1 * i, 5.0), config)
            peer.query_knn(peers=[], server=server)
            warm.append(peer)
        host = MobileHost(1, Point(5, 5), config)
        host.query_knn(peers=warm, server=server)
        assert host.peer_probes_sent == 3
        assert host.peer_caches_received == 3
        assert host.tuples_received == sum(
            p.cache.tuple_count() for p in warm
        )

    def test_empty_peers_counted_as_probe_only(self):
        config = SennConfig(k=3, transmission_range=2.0)
        cold = MobileHost(2, Point(5.1, 5.0), config)
        host = MobileHost(1, Point(5, 5), config)
        host.query_knn(peers=[cold], server=None)
        assert host.peer_probes_sent == 1
        assert host.peer_caches_received == 0
        assert host.tuples_received == 0

    def test_out_of_range_not_probed(self):
        config = SennConfig(k=3, transmission_range=0.5)
        far = MobileHost(2, Point(9, 9), config)
        host = MobileHost(1, Point(0, 0), config)
        host.query_knn(peers=[far], server=None)
        assert host.peer_probes_sent == 0


class TestDynamicPois:
    def test_station_closure_reflected_in_queries(self):
        """Deleting a POI from the server index changes kNN answers."""
        pois = make_pois(seed=6)
        server = SpatialDatabaseServer.from_points(pois, bulk=False)
        q = Point(5, 5)
        before = server.knn_query(q, 1)
        closed = before[0]
        assert server.tree.delete(closed.point, closed.payload)
        after = server.knn_query(q, 1)
        assert after[0].payload != closed.payload
        assert after[0].distance >= before[0].distance

    def test_new_station_opens(self):
        pois = make_pois(seed=7)
        server = SpatialDatabaseServer.from_points(pois, bulk=False)
        q = Point(5, 5)
        server.tree.insert(Point(5.001, 5.0), "brand-new")
        result = server.knn_query(q, 1)
        assert result[0].payload == "brand-new"
