"""Tests for repro.obs.tracing: logical clocks, spans, JSONL round-trip."""

import io
import json

import pytest

from repro.obs.tracing import LogicalClock, TraceRecord, Tracer, records_from_jsonl


class TestLogicalClock:
    def test_monotone_integer_ticks(self):
        clock = LogicalClock()
        assert [clock() for _ in range(4)] == [0.0, 1.0, 2.0, 3.0]


class TestSpans:
    def test_span_records_on_close_with_logical_times(self):
        tracer = Tracer()
        with tracer.span("outer"):
            pass
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert record.kind == "span"
        assert record.name == "outer"
        assert (record.start, record.end) == (0.0, 1.0)
        assert record.parent_id is None
        assert record.duration == 1.0

    def test_nested_spans_link_parents_and_close_child_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert [inner.name, outer.name] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_attrs_and_live_mutation(self):
        tracer = Tracer()
        with tracer.span("s", k=4) as record:
            record.attrs["extra"] = "v"
        assert tracer.records[0].attrs == {"k": 4, "extra": "v"}

    def test_exception_stamps_error_attr_and_still_records(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        record = tracer.records[0]
        assert record.attrs["error"] == "RuntimeError"
        assert record.end > record.start

    def test_event_is_instant_and_parented(self):
        tracer = Tracer()
        with tracer.span("outer"):
            event = tracer.event("tick", n=1)
        assert event.kind == "event"
        assert event.start == event.end
        assert event.parent_id == tracer.records[-1].span_id
        assert event.duration == 0.0

    def test_injectable_clock(self):
        times = iter([10.0, 20.0])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.span("s"):
            pass
        assert (tracer.records[0].start, tracer.records[0].end) == (10.0, 20.0)


class TestJsonlRoundTrip:
    def _busy_tracer(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("outer", region="LA"):
            tracer.event("tick", n=1)
            with tracer.span("inner"):
                pass
        return tracer

    def test_round_trip_is_exact(self):
        tracer = self._busy_tracer()
        reloaded = records_from_jsonl(tracer.to_jsonl())
        assert reloaded == tracer.records

    def test_lines_are_sorted_key_json(self):
        tracer = self._busy_tracer()
        for line in tracer.to_jsonl().splitlines():
            parsed = json.loads(line)
            assert list(parsed) == sorted(parsed)

    def test_two_identical_runs_serialize_byte_identically(self):
        assert self._busy_tracer().to_jsonl() == self._busy_tracer().to_jsonl()

    def test_export_jsonl_writes_stream_and_returns_count(self):
        tracer = self._busy_tracer()
        stream = io.StringIO()
        count = tracer.export_jsonl(stream)
        assert count == len(tracer.records) == 3
        assert stream.getvalue() == tracer.to_jsonl()

    def test_blank_lines_skipped_on_parse(self):
        tracer = self._busy_tracer()
        padded = "\n" + tracer.to_jsonl() + "\n\n"
        assert records_from_jsonl(padded) == tracer.records

    def test_single_record_round_trip(self):
        record = TraceRecord(
            kind="event", name="n", start=1.0, end=1.0, span_id=7,
            parent_id=3, attrs={"a": [1, 2]},
        )
        assert TraceRecord.from_json(record.to_json()) == record
