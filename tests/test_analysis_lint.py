"""Acceptance tests for the repro-lint engine and its rules."""

import os
import pathlib
import subprocess
import sys

from repro.analysis.lint import Linter, lint_paths, lint_source

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# One seeded violation per rule.  The pretend path places the module in
# repro.network so the Euclidean-distance ban (RPR003) applies too.
FIXTURE_PATH = "src/repro/network/fixture_module.py"
FIXTURE = '''\
"""Fixture module with exactly one violation of every lint rule."""

import random


def euclidean_probe(a, b, history=[]):
    """Docstring so RPR014 (which covers repro.network) stays quiet."""
    gap = a.distance_to(b)
    if gap == 0.0:
        history.append(gap)
    rng = random.Random()
    try:
        return rng.random()
    except:
        return 0.0
'''
ALL_RULE_CODES = {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"}


def codes_of(violations):
    return {v.code for v in violations}


class TestSeededFixture:
    def test_one_violation_per_rule(self):
        violations = lint_source(FIXTURE, path=FIXTURE_PATH)
        assert codes_of(violations) == ALL_RULE_CODES
        # exactly one finding per rule -- the fixture seeds no duplicates
        assert len(violations) == len(ALL_RULE_CODES)

    def test_violations_carry_position_and_render(self):
        violations = lint_source(FIXTURE, path=FIXTURE_PATH)
        by_code = {v.code: v for v in violations}
        assert by_code["RPR001"].line == 9  # gap == 0.0
        assert by_code["RPR005"].line == 14  # bare except
        rendered = by_code["RPR004"].render()
        assert rendered.startswith(FIXTURE_PATH)
        assert "RPR004" in rendered


class TestSuppression:
    def test_line_noqa_suppresses_single_code(self):
        patched = FIXTURE.replace(
            "if gap == 0.0:", "if gap == 0.0:  # repro: noqa(RPR001)"
        )
        assert codes_of(lint_source(patched, path=FIXTURE_PATH)) == (
            ALL_RULE_CODES - {"RPR001"}
        )

    def test_bare_noqa_suppresses_all_codes_on_line(self):
        patched = FIXTURE.replace(
            "rng = random.Random()", "rng = random.Random()  # repro: noqa"
        )
        assert "RPR002" not in codes_of(lint_source(patched, path=FIXTURE_PATH))

    def test_noqa_for_other_code_does_not_suppress(self):
        patched = FIXTURE.replace(
            "if gap == 0.0:", "if gap == 0.0:  # repro: noqa(RPR005)"
        )
        assert "RPR001" in codes_of(lint_source(patched, path=FIXTURE_PATH))

    def test_module_scope_rule_suppressed_file_wide(self):
        patched = "# repro: noqa(RPR006)\n" + FIXTURE
        assert "RPR006" not in codes_of(lint_source(patched, path=FIXTURE_PATH))

    def test_dunder_all_satisfies_rpr006(self):
        patched = FIXTURE + '\n__all__ = ["euclidean_probe"]\n'
        assert "RPR006" not in codes_of(lint_source(patched, path=FIXTURE_PATH))


class TestRuleSemantics:
    def test_tolerance_helper_not_flagged(self):
        source = (
            "from repro.geometry.tolerance import near_zero\n"
            "def f(a, b):\n"
            "    return near_zero(a.distance_to(b))\n"
        )
        assert "RPR001" not in codes_of(lint_source(source, path="src/repro/core/m.py"))

    def test_taint_flows_through_assignment_chains(self):
        source = "def f(a, b):\n    d = a.distance_to(b)\n    e = d\n    return e == 1.5\n"
        assert "RPR001" in codes_of(lint_source(source, path="src/repro/core/m.py"))

    def test_exact_assert_allowed_in_test_modules_only(self):
        source = "def test_x(a, b):\n    assert a.distance_to(b) == 5.0\n"
        assert "RPR001" not in codes_of(lint_source(source, path="tests/test_m.py"))
        assert "RPR001" in codes_of(lint_source(source, path="src/repro/core/m.py"))

    def test_seeded_rng_not_flagged(self):
        source = "import random\nrng = random.Random(42)\n"
        assert codes_of(lint_source(source, path="src/repro/sim/m.py")) <= {"RPR006"}

    def test_sim_config_exempt_from_rpr002(self):
        source = "import random\n\nrng = random.Random()\n"
        assert "RPR002" not in codes_of(
            lint_source(source, path="src/repro/sim/config.py")
        )

    def test_global_rng_state_flagged(self):
        source = "import random\n\ndef f():\n    return random.uniform(0.0, 1.0)\n"
        assert "RPR002" in codes_of(lint_source(source, path="src/repro/sim/m.py"))

    def test_euclidean_ban_only_inside_network(self):
        source = "def f(a, b):\n    return a.distance_to(b)\n"
        assert "RPR003" in codes_of(
            lint_source(source, path="src/repro/network/m.py")
        )
        assert "RPR003" not in codes_of(
            lint_source(source, path="src/repro/geometry/m.py")
        )

    def test_oracle_module_cannot_import_code_under_test(self):
        source = "from repro.index.knn import k_nearest\n\n__all__ = []\n"
        assert "RPR007" in codes_of(
            lint_source(source, path="src/repro/testing/oracles.py")
        )

    def test_oracle_module_plain_import_flagged_too(self):
        source = "import repro.core.verification\n\n__all__ = []\n"
        assert "RPR007" in codes_of(
            lint_source(source, path="src/repro/testing/oracles.py")
        )

    def test_oracle_relative_import_flagged(self):
        source = "from . import difftest\n\n__all__ = []\n"
        assert "RPR007" in codes_of(
            lint_source(source, path="src/repro/testing/oracles.py")
        )

    def test_oracle_point_import_allowed(self):
        source = "from repro.geometry.point import Point\n\n__all__ = []\n"
        assert "RPR007" not in codes_of(
            lint_source(source, path="src/repro/testing/oracles.py")
        )

    def test_non_oracle_testing_modules_exempt_from_rpr007(self):
        source = "from repro.index.knn import k_nearest\n\n__all__ = []\n"
        assert "RPR007" not in codes_of(
            lint_source(source, path="src/repro/testing/difftest.py")
        )

    def test_syntax_error_reported_as_rpr900(self):
        violations = lint_source("def broken(:\n", path="src/repro/core/m.py")
        assert codes_of(violations) == {"RPR900"}


class TestEngine:
    def test_select_restricts_to_listed_codes(self):
        linter = Linter(select={"RPR004"})
        assert codes_of(linter.lint_source(FIXTURE, path=FIXTURE_PATH)) == {"RPR004"}

    def test_ignore_drops_listed_codes(self):
        linter = Linter(ignore={"RPR001", "RPR006"})
        assert codes_of(linter.lint_source(FIXTURE, path=FIXTURE_PATH)) == (
            ALL_RULE_CODES - {"RPR001", "RPR006"}
        )

    def test_repo_source_tree_is_clean(self):
        report = lint_paths([REPO_ROOT / "src" / "repro"])
        assert report.files_checked > 50
        assert report.ok, report.render()


class TestCli:
    def _run(self, *args, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis.cli", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd or REPO_ROOT,
        )

    def test_cli_reports_seeded_fixture(self, tmp_path):
        target = tmp_path / "src" / "repro" / "network" / "fixture_module.py"
        target.parent.mkdir(parents=True)
        target.write_text(FIXTURE)
        proc = self._run(str(target))
        assert proc.returncode == 1
        for code in ALL_RULE_CODES:
            assert code in proc.stdout

    def test_cli_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text('"""Clean."""\n\n__all__ = []\n')
        proc = self._run(str(target))
        assert proc.returncode == 0

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        proc = self._run(str(tmp_path / "absent.py"))
        assert proc.returncode == 2

    def test_cli_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for code in ALL_RULE_CODES | {"RPR007"}:
            assert code in proc.stdout


class TestDocsHygieneRule:
    """RPR014: docstrings on the documented core + canonical citations."""

    CORE_PATH = "src/repro/core/m.py"

    def test_public_function_without_docstring_flagged_in_core(self):
        source = '"""Doc."""\n\n\ndef probe():\n    return 1\n'
        assert "RPR014" in codes_of(lint_source(source, path=self.CORE_PATH))

    def test_docstringed_function_passes(self):
        source = '"""Doc."""\n\n\ndef probe():\n    """Probe."""\n    return 1\n'
        assert "RPR014" not in codes_of(lint_source(source, path=self.CORE_PATH))

    def test_public_class_and_method_both_checked(self):
        source = (
            '"""Doc."""\n\n\nclass Widget:\n'
            '    """A widget."""\n\n'
            "    def turn(self):\n        return 1\n"
        )
        violations = [
            v for v in lint_source(source, path=self.CORE_PATH) if v.code == "RPR014"
        ]
        assert len(violations) == 1  # only the method is missing one

    def test_private_and_dunder_defs_exempt(self):
        source = (
            '"""Doc."""\n\n\nclass Widget:\n'
            '    """A widget."""\n\n'
            "    def __init__(self):\n        self.x = 1\n\n"
            "    def _spin(self):\n        return 1\n"
        )
        assert "RPR014" not in codes_of(lint_source(source, path=self.CORE_PATH))

    def test_docstrings_not_required_outside_documented_core(self):
        source = '"""Doc."""\n\n\ndef probe():\n    return 1\n'
        assert "RPR014" not in codes_of(lint_source(source, path="src/repro/sim/m.py"))
        assert "RPR014" not in codes_of(lint_source(source, path="tests/test_m.py"))

    def test_lowercase_citation_is_non_canonical(self):
        source = '"""Implements lemma 3.2 for peers."""\n'  # repro: noqa(RPR014)
        violations = lint_source(source, path="src/repro/sim/m.py")
        assert any(
            v.code == "RPR014" and "non-canonical" in v.message for v in violations
        )

    def test_abbreviated_section_is_non_canonical(self):
        source = '"""See Sec. 3.3 for bounds."""\n'  # repro: noqa(RPR014)
        violations = lint_source(source, path="src/repro/sim/m.py")
        assert any(
            v.code == "RPR014" and "non-canonical" in v.message for v in violations
        )

    def test_canonical_citations_pass(self):
        source = (
            '"""Lemma 3.2, Lemmas 3.1 and Section 3.2.1 are all canonical."""\n'
        )
        assert "RPR014" not in codes_of(lint_source(source, path="src/repro/sim/m.py"))

    def test_unknown_lemma_number_flagged(self):
        source = '"""Implements Lemma 9.9 exactly."""\n'  # repro: noqa(RPR014)
        violations = lint_source(source, path="src/repro/sim/m.py")
        assert any(
            v.code == "RPR014" and "no such" in v.message for v in violations
        )

    def test_known_section_numbers_are_not_cross_checked(self):
        # Sections have no registry; only the canonical *form* is policed.
        source = '"""Background in Section 9.9."""\n'
        assert "RPR014" not in codes_of(lint_source(source, path="src/repro/sim/m.py"))

    def test_noqa_suppresses_citation_finding(self):
        source = '"""Uses lemma 3.2."""  # repro: noqa(RPR014)\n'
        assert "RPR014" not in codes_of(lint_source(source, path="src/repro/sim/m.py"))
