"""Tests for repro.service.protocol: framing, codecs, strictness.

The protocol promises ``decode(encode(m)) == m`` for every message and
a :class:`ProtocolError` for anything else -- truncation, trailing
bytes, bad magic, unknown versions/types/tags, NaN coordinates and
oversized payloads.  The property tests drive the round-trip over
generated messages; the example tests pin each rejection path.
"""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.index.pagestats import AccessBreakdown
from repro.service.protocol import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    Answer,
    ErrorCode,
    ErrorReply,
    KnnRequest,
    MessageType,
    ProtocolError,
    RangeRequest,
    StreamClose,
    StreamEnd,
    StreamHandle,
    StreamItems,
    StreamOpen,
    StreamPull,
    WindowRequest,
    decode_message,
    encode_message,
    parse_header,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
nonneg = st.floats(
    allow_nan=False, allow_infinity=False, min_value=0.0, max_value=1e9
)
request_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)
stream_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)
small_counts = st.integers(min_value=1, max_value=0xFFFF)

points = st.builds(Point, finite, finite)
payloads = st.one_of(
    st.integers(min_value=-(1 << 62), max_value=1 << 62),
    finite,
    st.text(max_size=40),
)
neighbors = st.builds(NeighborResult, points, payloads, nonneg)
neighbor_tuples = st.tuples() | st.lists(neighbors, max_size=6).map(tuple)

bounds = st.builds(
    lambda lower, upper_pad, has_upper: PruningBounds(
        lower, lower + upper_pad if has_upper else math.inf
    ),
    nonneg,
    nonneg,
    st.booleans(),
)


@st.composite
def breakdowns(draw):
    index_nodes = draw(st.integers(min_value=0, max_value=10_000))
    leaf_nodes = draw(st.integers(min_value=0, max_value=10_000))
    data = draw(st.integers(min_value=0, max_value=10_000))
    return AccessBreakdown(
        total=index_nodes + leaf_nodes + data,
        index_nodes=index_nodes,
        leaf_nodes=leaf_nodes,
        data_records=data,
        buffer_hits=draw(st.integers(min_value=0, max_value=10_000)),
        buffer_misses=draw(st.integers(min_value=0, max_value=10_000)),
    )


@st.composite
def windows(draw):
    min_x = draw(finite)
    min_y = draw(finite)
    return BoundingBox(
        min_x, min_y, min_x + draw(nonneg), min_y + draw(nonneg)
    )


messages = st.one_of(
    st.builds(KnnRequest, request_ids, points, small_counts, bounds, neighbor_tuples),
    st.builds(RangeRequest, request_ids, points, nonneg),
    st.builds(WindowRequest, request_ids, windows()),
    st.builds(StreamOpen, request_ids, points),
    st.builds(StreamPull, request_ids, stream_ids, small_counts),
    st.builds(StreamClose, request_ids, stream_ids),
    st.builds(Answer, request_ids, neighbor_tuples, breakdowns(), small_counts),
    st.builds(StreamHandle, request_ids, stream_ids),
    st.builds(StreamItems, request_ids, stream_ids, neighbor_tuples, st.booleans()),
    st.builds(StreamEnd, request_ids, stream_ids, breakdowns()),
    st.builds(ErrorReply, request_ids, st.sampled_from(list(ErrorCode)), st.text(max_size=60)),
)


def frame(mtype: int, payload: bytes, magic=MAGIC, version=PROTOCOL_VERSION):
    return struct.pack(">2sBBI", magic, version, mtype, len(payload)) + payload


# ----------------------------------------------------------------------
# round-trip properties
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(messages)
    def test_decode_inverts_encode(self, message):
        assert decode_message(encode_message(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(messages)
    def test_header_matches_payload(self, message):
        encoded = encode_message(message)
        mtype, length = parse_header(encoded[:HEADER_SIZE])
        assert length == len(encoded) - HEADER_SIZE
        assert isinstance(mtype, MessageType)

    @settings(max_examples=100, deadline=None)
    @given(messages, st.integers(min_value=1, max_value=6))
    def test_truncation_always_raises(self, message, cut):
        encoded = encode_message(message)
        with pytest.raises(ProtocolError):
            decode_message(encoded[: len(encoded) - cut])

    @settings(max_examples=100, deadline=None)
    @given(messages)
    def test_trailing_bytes_always_raise(self, message):
        with pytest.raises(ProtocolError):
            decode_message(encode_message(message) + b"\x00")

    def test_bounds_upper_infinity_survives(self):
        message = KnnRequest(1, Point(0.0, 0.0), 3, PruningBounds(0.5, math.inf))
        assert decode_message(encode_message(message)).bounds.upper == math.inf


# ----------------------------------------------------------------------
# value strictness
# ----------------------------------------------------------------------
class TestValueRejection:
    def test_nan_coordinate_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_message(StreamOpen(1, Point(float("nan"), 0.0)))

    def test_nan_rejected_on_decode(self):
        encoded = bytearray(encode_message(StreamOpen(1, Point(1.0, 2.0))))
        nan = struct.pack(">d", float("nan"))
        encoded[HEADER_SIZE + 4 : HEADER_SIZE + 12] = nan
        with pytest.raises(ProtocolError):
            decode_message(bytes(encoded))

    def test_infinite_coordinate_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(StreamOpen(1, Point(math.inf, 0.0)))

    def test_infinite_lower_bound_rejected(self):
        message = KnnRequest(
            1, Point(0.0, 0.0), 1, PruningBounds(math.inf, math.inf)
        )
        with pytest.raises(ProtocolError):
            encode_message(message)

    def test_negative_neighbor_distance_rejected(self):
        bad = NeighborResult(Point(0.0, 0.0), "p", -1.0)
        with pytest.raises(ProtocolError):
            encode_message(Answer(1, (bad,), AccessBreakdown(0, 0, 0), 1))

    def test_bool_payload_rejected(self):
        bad = NeighborResult(Point(0.0, 0.0), True, 1.0)
        with pytest.raises(ProtocolError) as excinfo:
            encode_message(StreamItems(1, 1, (bad,), False))
        assert excinfo.value.code is ErrorCode.UNSUPPORTED

    def test_unsupported_payload_type_rejected(self):
        bad = NeighborResult(Point(0.0, 0.0), object(), 1.0)
        with pytest.raises(ProtocolError) as excinfo:
            encode_message(StreamItems(1, 1, (bad,), False))
        assert excinfo.value.code is ErrorCode.UNSUPPORTED

    def test_zero_k_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(KnnRequest(1, Point(0.0, 0.0), 0))

    def test_inconsistent_breakdown_rejected_on_decode(self):
        message = StreamEnd(1, 1, AccessBreakdown(0, 0, 0))
        encoded = bytearray(encode_message(message))
        # total lives right after request_id + stream_id in the payload.
        encoded[HEADER_SIZE + 8 : HEADER_SIZE + 12] = struct.pack(">I", 99)
        with pytest.raises(ProtocolError):
            decode_message(bytes(encoded))

    def test_unknown_error_code_rejected_on_decode(self):
        encoded = bytearray(encode_message(ErrorReply(1, ErrorCode.INTERNAL, "x")))
        encoded[HEADER_SIZE + 4 : HEADER_SIZE + 6] = struct.pack(">H", 999)
        with pytest.raises(ProtocolError):
            decode_message(bytes(encoded))


# ----------------------------------------------------------------------
# framing strictness
# ----------------------------------------------------------------------
class TestFraming:
    def test_bad_magic(self):
        with pytest.raises(ProtocolError):
            parse_header(frame(MessageType.STREAM_CLOSE, b"", magic=b"XX")[:HEADER_SIZE])

    def test_unknown_version(self):
        header = frame(MessageType.STREAM_CLOSE, b"", version=42)[:HEADER_SIZE]
        with pytest.raises(ProtocolError) as excinfo:
            parse_header(header)
        assert excinfo.value.code is ErrorCode.UNSUPPORTED

    def test_unknown_message_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_header(frame(0x7E, b"")[:HEADER_SIZE])
        assert excinfo.value.code is ErrorCode.UNSUPPORTED

    def test_oversized_declared_length_rejected_before_allocation(self):
        header = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, int(MessageType.ANSWER), MAX_PAYLOAD + 1
        )
        with pytest.raises(ProtocolError) as excinfo:
            parse_header(header)
        assert excinfo.value.code is ErrorCode.OVERSIZED

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            parse_header(b"RQ\x01")
        with pytest.raises(ProtocolError):
            decode_message(b"RQ")

    def test_length_mismatch_rejected(self):
        encoded = encode_message(StreamClose(1, 2))
        with pytest.raises(ProtocolError):
            decode_message(encoded + b"\xff\xff")

    def test_oversized_payload_rejected_on_encode(self):
        message = ErrorReply(1, ErrorCode.INTERNAL, "x" * (MAX_PAYLOAD + 1))
        with pytest.raises(ProtocolError) as excinfo:
            encode_message(message)
        assert excinfo.value.code is ErrorCode.OVERSIZED

    def test_garbage_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(frame(MessageType.KNN_REQUEST, b"\x01\x02\x03"))
