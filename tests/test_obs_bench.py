"""Tests for repro.obs.bench: determinism, validation, regression diffing.

Everything runs the ``smoke`` profile — the same one CI exercises — so
this file stays in tier-1 time budgets while still driving the full
suite end to end, including the CLI.
"""

import copy
import json

import pytest

from repro.obs import OBS, MetricsRegistry
from repro.obs.bench import (
    PROFILES,
    SCHEMA_VERSION,
    compare_to_baseline,
    main,
    run_suite,
    validate_baseline,
)


@pytest.fixture(scope="module")
def smoke_result():
    return run_suite("smoke", seed=1)


class TestRunSuite:
    def test_smoke_is_deterministic_across_runs(self, smoke_result):
        again = run_suite("smoke", seed=1)
        assert again["deterministic"] == smoke_result["deterministic"]

    def test_result_passes_its_own_validation(self, smoke_result):
        assert validate_baseline(smoke_result) == []

    def test_seed_changes_the_result(self, smoke_result):
        other = run_suite("smoke", seed=2)
        assert other["deterministic"] != smoke_result["deterministic"]

    def test_global_registry_is_restored(self):
        previous = OBS.registry
        OBS.registry = MetricsRegistry()
        try:
            OBS.registry.counter("sentinel").inc()
            run_suite("smoke", seed=1)
            assert OBS.registry.value("sentinel") == 1.0
            assert len(OBS.registry) == 1
        finally:
            OBS.registry = previous

    def test_profiles_cover_all_cli_choices(self):
        assert set(PROFILES) == {"smoke", "fast", "full"}


class TestValidateBaseline:
    def test_rejects_non_object(self):
        assert validate_baseline([1, 2]) == ["baseline must be a JSON object"]

    def test_rejects_wrong_schema_version(self, smoke_result):
        bad = copy.deepcopy(smoke_result)
        bad["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in validate_baseline(bad))

    def test_rejects_missing_section(self, smoke_result):
        bad = copy.deepcopy(smoke_result)
        del bad["deterministic"]["verification"]
        assert any("verification" in p for p in validate_baseline(bad))

    def test_rejects_einn_above_inn(self, smoke_result):
        bad = copy.deepcopy(smoke_result)
        region = next(iter(bad["deterministic"]["inn_vs_einn"]))
        series = bad["deterministic"]["inn_vs_einn"][region]
        series["einn_pages"][0] = series["inn_pages"][0] + 5.0
        problems = validate_baseline(bad)
        assert any("Figure 17" in p for p in problems)


class TestCompareToBaseline:
    def test_identical_runs_diff_clean(self, smoke_result):
        assert compare_to_baseline(smoke_result, smoke_result) == []

    def test_within_tolerance_passes(self, smoke_result):
        fresh = copy.deepcopy(smoke_result)
        sim = fresh["deterministic"]["sim_window"]
        sim["queries"] = sim["queries"] * 1.01  # 1% < default 5% rtol
        assert compare_to_baseline(fresh, smoke_result) == []

    def test_beyond_tolerance_is_a_diff(self, smoke_result):
        fresh = copy.deepcopy(smoke_result)
        fresh["deterministic"]["sim_window"]["queries"] *= 2
        diffs = compare_to_baseline(fresh, smoke_result)
        assert any("sim_window.queries" in d for d in diffs)

    def test_missing_key_is_a_diff(self, smoke_result):
        fresh = copy.deepcopy(smoke_result)
        del fresh["deterministic"]["tree_build"]["pois"]
        diffs = compare_to_baseline(fresh, smoke_result)
        assert any("missing from fresh run" in d for d in diffs)

    def test_identity_field_mismatch_is_a_diff(self, smoke_result):
        fresh = copy.deepcopy(smoke_result)
        fresh["seed"] = 99
        assert any(d.startswith("seed") for d in compare_to_baseline(fresh, smoke_result))


class TestCli:
    def test_write_then_check_round_trip(self, tmp_path):
        out = tmp_path / "baseline.json"
        assert main(["--profile", "smoke", "--seed", "1",
                     "--output", str(out), "--quiet"]) == 0
        written = json.loads(out.read_text())
        assert validate_baseline(written) == []
        assert written["profile"] == "smoke"
        assert main(["--profile", "smoke", "--seed", "1",
                     "--output", str(out), "--check", "--quiet"]) == 0

    def test_check_fails_on_regression(self, tmp_path, smoke_result):
        out = tmp_path / "baseline.json"
        doctored = copy.deepcopy(smoke_result)
        doctored["deterministic"]["sim_window"]["queries"] *= 10
        out.write_text(json.dumps(doctored))
        assert main(["--profile", "smoke", "--seed", "1",
                     "--output", str(out), "--check", "--quiet"]) == 1

    def test_check_fails_on_unreadable_baseline(self, tmp_path):
        out = tmp_path / "nope.json"
        assert main(["--profile", "smoke", "--seed", "1",
                     "--output", str(out), "--check", "--quiet"]) == 2

    def test_trace_export_is_deterministic_jsonl(self, tmp_path):
        out = tmp_path / "b.json"
        trace_a = tmp_path / "a.jsonl"
        trace_b = tmp_path / "b.jsonl"
        for trace in (trace_a, trace_b):
            assert main(["--profile", "smoke", "--seed", "1",
                         "--output", str(out), "--trace", str(trace),
                         "--quiet"]) == 0
        lines = trace_a.read_text().splitlines()
        assert lines, "trace must contain records"
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in {"span", "event"}
        assert trace_a.read_text() == trace_b.read_text()


class TestCommittedBaseline:
    def test_committed_baseline_is_schema_valid(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_baseline.json"
        data = json.loads(path.read_text())
        assert validate_baseline(data) == []
        assert data["profile"] == "fast"
        assert data["seed"] == 0
