"""The golden scenario corpus: shrunk regression scenarios, one per file.

Every ``tests/golden/*.scenario`` file holds ``#`` comment lines followed
by exactly one encoded scenario string.  Each scenario either reproduces
a bug the differential runner once found (now fixed) or pins a degeneracy
the generator is supposed to reach.  The corpus doubles as replay input:
``repro-difftest --replay "$(grep -v '^#' tests/golden/<name>.scenario)"``.
"""

import pathlib

import pytest

from repro.testing.difftest import run_scenario
from repro.testing.scenarios import decode_scenario, encode_scenario

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.scenario"))


def load(path: pathlib.Path) -> str:
    lines = [
        line.strip()
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]
    assert len(lines) == 1, f"{path.name}: expected exactly one scenario line"
    return lines[0]


def test_corpus_is_present():
    assert len(GOLDEN_FILES) >= 20


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_golden_scenario_stays_green(path):
    scenario = decode_scenario(load(path))
    failures = run_scenario(scenario)
    assert failures == [], "\n".join(f.render() for f in failures)


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_golden_scenario_round_trips(path):
    text = load(path)
    assert encode_scenario(decode_scenario(text)) == text
