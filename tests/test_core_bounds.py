"""Tests for repro.core.bounds: heap states -> pruning bounds table."""

import math

import pytest

from repro.core.bounds import derive_pruning_bounds
from repro.core.heap import CandidateHeap, HeapState
from repro.geometry.point import Point


def fill(heap, certain_dists=(), uncertain_dists=()):
    for i, d in enumerate(certain_dists):
        heap.add(Point(float(i), 0.0), f"c-{i}", d, True)
    for i, d in enumerate(uncertain_dists):
        heap.add(Point(float(i), 1.0), f"u-{i}", d, False)
    return heap


class TestBoundsPerState:
    def test_state1_full_mixed_both_bounds(self):
        heap = fill(CandidateHeap(3), certain_dists=[1.0], uncertain_dists=[2.0, 3.0])
        assert heap.state() is HeapState.FULL_MIXED
        bounds = derive_pruning_bounds(heap)
        assert bounds.upper == pytest.approx(3.0)  # last entry
        assert bounds.lower == pytest.approx(1.0)  # last certain

    def test_state2_full_uncertain_upper_only(self):
        heap = fill(CandidateHeap(2), uncertain_dists=[2.0, 5.0])
        assert heap.state() is HeapState.FULL_UNCERTAIN
        bounds = derive_pruning_bounds(heap)
        assert bounds.upper == pytest.approx(5.0)
        assert not bounds.has_lower

    def test_state3_partial_mixed_lower_only(self):
        heap = fill(CandidateHeap(5), certain_dists=[1.0, 2.0], uncertain_dists=[3.0])
        assert heap.state() is HeapState.PARTIAL_MIXED
        bounds = derive_pruning_bounds(heap)
        assert not bounds.has_upper
        assert bounds.lower == pytest.approx(2.0)

    def test_state4_partial_certain_lower_only(self):
        heap = fill(CandidateHeap(5), certain_dists=[1.5, 2.5])
        assert heap.state() is HeapState.PARTIAL_CERTAIN
        bounds = derive_pruning_bounds(heap)
        assert not bounds.has_upper
        assert bounds.lower == pytest.approx(2.5)

    def test_state5_partial_uncertain_no_bounds(self):
        heap = fill(CandidateHeap(5), uncertain_dists=[1.0])
        assert heap.state() is HeapState.PARTIAL_UNCERTAIN
        bounds = derive_pruning_bounds(heap)
        assert not bounds.has_upper
        assert not bounds.has_lower

    def test_state6_empty_no_bounds(self):
        heap = CandidateHeap(4)
        assert heap.state() is HeapState.EMPTY
        bounds = derive_pruning_bounds(heap)
        assert not bounds.has_upper
        assert not bounds.has_lower

    def test_complete_heap_both_bounds(self):
        heap = fill(CandidateHeap(2), certain_dists=[1.0, 2.0])
        assert heap.state() is HeapState.COMPLETE
        bounds = derive_pruning_bounds(heap)
        assert bounds.upper == pytest.approx(2.0)
        assert bounds.lower == pytest.approx(2.0)

    def test_bounds_consistent(self):
        """Whenever both bounds exist, lower <= upper."""
        heap = fill(CandidateHeap(4), certain_dists=[1.0, 2.0], uncertain_dists=[3.0, 4.0])
        bounds = derive_pruning_bounds(heap)
        assert bounds.lower <= bounds.upper
