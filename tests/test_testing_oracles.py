"""Unit tests for the brute-force differential-testing oracles."""

import math

import pytest

from repro.geometry.point import Point
from repro.index.knn import poi_tie_key
from repro.testing.oracles import (
    certify_multi_oracle,
    certify_single_oracle,
    oracle_knn,
    oracle_network_knn,
    oracle_range,
    oracle_window,
    tie_key,
)

POIS = [
    (Point(0.0, 0.0), "origin"),
    (Point(1.0, 0.0), "east"),
    (Point(0.0, 1.0), "north"),
    (Point(1.0, 1.0), "corner"),
    (Point(3.0, 4.0), "far"),
]


class TestEuclideanOracles:
    def test_knn_basic_order(self):
        got = oracle_knn(POIS, Point(0.1, 0.0), 3)
        assert [n.payload for n in got] == ["origin", "east", "north"]
        assert got[0].distance == pytest.approx(0.1)

    def test_knn_ties_by_payload(self):
        got = oracle_knn(POIS, Point(0.5, 0.5), 4)
        # All four near POIs are equidistant from the center.
        assert [n.payload for n in got] == ["corner", "east", "north", "origin"]

    def test_knn_k_larger_than_set(self):
        assert len(oracle_knn(POIS, Point(0, 0), 99)) == len(POIS)

    def test_knn_rejects_negative_k(self):
        with pytest.raises(ValueError):
            oracle_knn(POIS, Point(0, 0), -1)

    def test_tie_key_mirrors_poi_tie_key(self):
        """The deliberate re-implementation must match the real one."""
        payloads = [0, 1, 2.5, -3, "a", "p10", "p2", "", True, None, 10**6]
        for payload in payloads:
            assert tie_key(payload) == poi_tie_key(payload)

    def test_range_closed_disk(self):
        got = oracle_range(POIS, Point(0.0, 0.0), 1.0)
        assert {n.payload for n in got} == {"origin", "east", "north"}
        assert [n.payload for n in got] == ["origin", "east", "north"]

    def test_range_zero_radius(self):
        got = oracle_range(POIS, Point(1.0, 1.0), 0.0)
        assert [n.payload for n in got] == ["corner"]

    def test_window_closed_bounds(self):
        got = oracle_window(POIS, 0.0, 0.0, 1.0, 1.0, Point(0.0, 0.0))
        assert [n.payload for n in got] == ["origin", "east", "north", "corner"]


class TestCertifySingle:
    def test_interior_disk_has_positive_slack(self):
        verdict = certify_single_oracle(Point(1.0, 0.0), Point(0.0, 0.0), 3.0, 1.0)
        assert verdict.slack == pytest.approx(1.0)
        assert verdict.definitely_covered(0.5)
        assert not verdict.definitely_uncovered()

    def test_escaping_disk_has_negative_slack(self):
        verdict = certify_single_oracle(Point(2.0, 0.0), Point(0.0, 0.0), 3.0, 2.0)
        assert verdict.slack == pytest.approx(-1.0)
        assert verdict.definitely_uncovered()
        assert not verdict.definitely_covered(1e-7)

    def test_boundary_touch_is_exact_zero(self):
        """Axis-aligned dyadic configuration: slack is bit-for-bit 0.0."""
        verdict = certify_single_oracle(
            Point(0.25, 0.0), Point(0.0, 0.0), 0.5, 0.25
        )
        assert verdict.slack == 0.0
        assert verdict.definitely_covered(1e-7, allow_exact_zero=True)
        assert not verdict.definitely_covered(1e-7)
        assert not verdict.definitely_uncovered()

    def test_coincident_query_and_peer(self):
        verdict = certify_single_oracle(Point(0.0, 0.0), Point(0.0, 0.0), 1.0, 0.5)
        assert verdict.slack == pytest.approx(0.5)

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            certify_single_oracle(Point(0, 0), Point(1, 0), 1.0, -0.1)


class TestCertifyMulti:
    def test_no_circles_is_uncovered(self):
        verdict = certify_multi_oracle(Point(0, 0), [], 1.0)
        assert verdict.slack == -math.inf
        assert verdict.definitely_uncovered()

    def test_single_circle_matches_single_oracle(self):
        query, center, radius, distance = Point(1.0, 0.5), Point(0.0, 0.0), 4.0, 1.5
        multi = certify_multi_oracle(query, [(center, radius)], distance)
        single = certify_single_oracle(query, center, radius, distance)
        assert multi.slack == pytest.approx(single.slack, abs=1e-9)

    def test_two_half_circles_cover_jointly(self):
        # Neither circle alone covers the unit disk at the origin; together
        # they do, with visible slack.
        circles = [(Point(-0.5, 0.0), 2.0), (Point(0.5, 0.0), 2.0)]
        verdict = certify_multi_oracle(Point(0.0, 0.0), circles, 1.0)
        single = certify_single_oracle(Point(0.0, 0.0), Point(-0.5, 0.0), 2.0, 1.0)
        assert verdict.slack > single.slack
        assert verdict.definitely_covered(0.1)

    def test_gap_between_circles_is_detected(self):
        # Two small circles leave the top of the target boundary exposed.
        circles = [(Point(-1.0, 0.0), 1.2), (Point(1.0, 0.0), 1.2)]
        verdict = certify_multi_oracle(Point(0.0, 0.0), circles, 1.0)
        assert verdict.definitely_uncovered()

    def test_zero_radius_disk_degenerates_to_point(self):
        verdict = certify_multi_oracle(Point(0.5, 0.0), [(Point(0, 0), 1.0)], 0.0)
        assert verdict.slack == pytest.approx(0.5)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            certify_multi_oracle(Point(0, 0), [(Point(0, 0), 1.0)], 0.5, samples=4)


class TestNetworkOracle:
    #  0 --1.0-- 1 --1.0-- 2     (a path graph)
    ADJ = {0: [(1, 1.0)], 1: [(0, 1.0), (2, 1.0)], 2: [(1, 1.0)]}

    def test_node_to_node(self):
        got = oracle_network_knn(
            self.ADJ, ("node", 0), [(("node", 2), "far"), (("node", 1), "mid")], 2
        )
        assert got == [("mid", 1.0), ("far", 2.0)]

    def test_same_edge_shortcut(self):
        origin = ("edge", 0, 1, 0.25, 1.0)
        poi = ("edge", 0, 1, 0.75, 1.0)
        got = oracle_network_knn(self.ADJ, origin, [(poi, "p")], 1)
        assert got == [("p", 0.5)]

    def test_same_edge_reversed_orientation(self):
        origin = ("edge", 0, 1, 0.25, 1.0)
        poi = ("edge", 1, 0, 0.25, 1.0)  # same edge, seen from the other end
        got = oracle_network_knn(self.ADJ, origin, [(poi, "p")], 1)
        assert got == [("p", 0.5)]

    def test_cross_edge_goes_through_node(self):
        origin = ("edge", 0, 1, 0.5, 1.0)
        poi = ("edge", 1, 2, 0.5, 1.0)
        got = oracle_network_knn(self.ADJ, origin, [(poi, "p")], 1)
        assert got == [("p", 1.0)]

    def test_disconnected_poi_is_infinitely_far(self):
        adj = {**self.ADJ, 7: []}
        got = oracle_network_knn(adj, ("node", 0), [(("node", 7), "island")], 1)
        assert got[0][0] == "island"
        assert math.isinf(got[0][1])

    def test_ties_break_by_payload(self):
        got = oracle_network_knn(
            self.ADJ,
            ("node", 1),
            [(("node", 0), "b"), (("node", 2), "a")],
            2,
        )
        assert [payload for payload, _ in got] == ["a", "b"]
