"""Integration tests for the full simulation loop."""

import dataclasses

import pytest

from repro.core.senn import ResolutionTier
from repro.sim.config import (
    MovementMode,
    SimulationConfig,
    los_angeles_2x2,
    riverside_2x2,
)
from repro.sim.simulation import Simulation
from repro.sim.stats import SimulationMetrics


def quick_config(**overrides):
    """A fast LA-2x2 run for tests (short metered window)."""
    defaults = dict(
        parameters=los_angeles_2x2(),
        t_execution_s=240.0,
        warmup_fraction=0.25,
        movement_tick_s=4.0,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConstruction:
    def test_road_mode_builds_network(self):
        sim = Simulation(quick_config())
        assert sim.network is not None
        assert sim.network.is_connected()
        assert len(sim.hosts) == 463
        assert len(sim.pois) == 16

    def test_free_mode_no_network(self):
        sim = Simulation(quick_config(movement_mode=MovementMode.FREE))
        assert sim.network is None

    def test_pois_snapped_in_road_mode(self):
        sim = Simulation(quick_config())
        for point, _ in sim.pois:
            snapped = sim.network.snap(point)
            assert point.distance_to(snapped.point) < 1e-6

    def test_pois_raw_when_snapping_disabled(self):
        sim = Simulation(quick_config(snap_pois_to_roads=False))
        assert len(sim.pois) == 16


class TestRun:
    def test_run_produces_queries(self):
        sim = Simulation(quick_config())
        metrics = sim.run()
        assert metrics.total_queries > 10
        # Every query resolved somewhere.
        assert sum(metrics.tier_counts.values()) == metrics.total_queries

    def test_peer_sharing_happens_in_dense_area(self):
        """LA density: a noticeable share must be answered by peers."""
        sim = Simulation(quick_config(t_execution_s=480.0))
        metrics = sim.run()
        assert metrics.peer_share > 0.05

    def test_sparse_area_leans_on_server(self):
        config = quick_config(parameters=riverside_2x2(), t_execution_s=1800.0)
        metrics_rv = Simulation(config).run()
        metrics_la = Simulation(quick_config(t_execution_s=480.0)).run()
        assert metrics_rv.server_share > metrics_la.server_share

    def test_deterministic(self):
        m1 = Simulation(quick_config()).run()
        m2 = Simulation(quick_config()).run()
        assert m1.tier_counts == m2.tier_counts

    def test_different_seeds_differ(self):
        m1 = Simulation(quick_config(seed=1)).run()
        m2 = Simulation(quick_config(seed=2)).run()
        assert m1.tier_counts != m2.tier_counts

    def test_free_mode_runs(self):
        sim = Simulation(quick_config(movement_mode=MovementMode.FREE))
        metrics = sim.run()
        assert metrics.total_queries > 0

    def test_k_range_sampling(self):
        sim = Simulation(quick_config(k_range=(1, 9)))
        metrics = sim.run()
        assert metrics.total_queries > 0

    def test_server_pages_accounted(self):
        sim = Simulation(quick_config())
        metrics = sim.run()
        if metrics.server_query_count > 0:
            assert metrics.mean_server_pages() > 0


class TestMetrics:
    def test_empty_metrics(self):
        metrics = SimulationMetrics()
        assert metrics.total_queries == 0
        assert metrics.server_share == 0.0
        assert metrics.mean_server_pages() == 0.0

    def test_shares_sum_to_one(self):
        metrics = SimulationMetrics()
        metrics.record(ResolutionTier.SERVER, server_pages=5)
        metrics.record(ResolutionTier.SINGLE_PEER)
        metrics.record(ResolutionTier.MULTI_PEER)
        metrics.record(ResolutionTier.LOCAL_CACHE)
        total = (
            metrics.server_share
            + metrics.single_peer_share
            + metrics.multi_peer_share
        )
        assert total == pytest.approx(1.0)

    def test_percentages(self):
        metrics = SimulationMetrics()
        metrics.record(ResolutionTier.SERVER, server_pages=4)
        metrics.record(ResolutionTier.SERVER, server_pages=6)
        metrics.record(ResolutionTier.SINGLE_PEER)
        metrics.record(ResolutionTier.SINGLE_PEER)
        p = metrics.percentages()
        assert p["server"] == pytest.approx(50.0)
        assert p["single_peer"] == pytest.approx(50.0)
        assert metrics.mean_server_pages() == pytest.approx(5.0)
