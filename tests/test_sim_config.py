"""Tests for repro.sim.config: the paper's Tables 3-4 parameter sets."""

import pytest

from repro.core.server import ServerAlgorithm
from repro.sim.config import (
    METERS_PER_MILE,
    PARAMETER_SETS_2X2,
    PARAMETER_SETS_30X30,
    MovementMode,
    ParameterSet,
    SimulationConfig,
    los_angeles_2x2,
    los_angeles_30x30,
    riverside_2x2,
    riverside_30x30,
    suburbia_2x2,
    suburbia_30x30,
)


class TestTable3:
    """The exact values of Table 3 (2x2 miles)."""

    def test_los_angeles(self):
        p = los_angeles_2x2()
        assert (p.poi_number, p.mh_number, p.c_size) == (16, 463, 10)
        assert (p.m_percentage, p.m_velocity) == (80.0, 30.0)
        assert (p.lambda_query, p.tx_range_m) == (23.0, 200.0)
        assert (p.lambda_knn, p.t_execution_hours, p.area_miles) == (3, 1.0, 2.0)

    def test_riverside(self):
        p = riverside_2x2()
        assert (p.poi_number, p.mh_number) == (5, 50)
        assert p.lambda_query == 2.5

    def test_suburbia(self):
        p = suburbia_2x2()
        assert (p.poi_number, p.mh_number) == (11, 257)
        assert p.lambda_query == 13.0

    def test_density_ordering(self):
        """LA > SYN > RV in host and POI density."""
        la, syn, rv = los_angeles_2x2(), suburbia_2x2(), riverside_2x2()
        assert (
            la.host_density_per_sq_mile
            > syn.host_density_per_sq_mile
            > rv.host_density_per_sq_mile
        )
        assert (
            la.poi_density_per_sq_mile
            > syn.poi_density_per_sq_mile
            > rv.poi_density_per_sq_mile
        )


class TestTable4:
    """The exact values of Table 4 (30x30 miles)."""

    def test_los_angeles(self):
        p = los_angeles_30x30()
        assert (p.poi_number, p.mh_number, p.c_size) == (4050, 121500, 20)
        assert p.lambda_query == 8100.0
        assert (p.lambda_knn, p.t_execution_hours, p.area_miles) == (5, 5.0, 30.0)

    def test_riverside(self):
        p = riverside_30x30()
        assert (p.poi_number, p.mh_number) == (2160, 11700)

    def test_suburbia(self):
        p = suburbia_30x30()
        assert (p.poi_number, p.mh_number) == (3105, 66600)

    def test_registry_complete(self):
        assert set(PARAMETER_SETS_2X2) == {"LA", "SYN", "RV"}
        assert set(PARAMETER_SETS_30X30) == {"LA", "SYN", "RV"}


class TestScaling:
    def test_scaled_area_preserves_densities(self):
        p = los_angeles_30x30()
        scaled = p.scaled_area(0.2)
        assert scaled.area_miles == pytest.approx(6.0)
        assert scaled.host_density_per_sq_mile == pytest.approx(
            p.host_density_per_sq_mile, rel=0.01
        )
        assert scaled.poi_density_per_sq_mile == pytest.approx(
            p.poi_density_per_sq_mile, rel=0.01
        )
        # Query rate per square mile preserved too.
        assert scaled.lambda_query / scaled.area_miles**2 == pytest.approx(
            p.lambda_query / p.area_miles**2, rel=0.01
        )

    def test_scaled_area_keeps_other_knobs(self):
        p = los_angeles_30x30()
        scaled = p.scaled_area(0.5)
        assert scaled.c_size == p.c_size
        assert scaled.tx_range_m == p.tx_range_m
        assert scaled.lambda_knn == p.lambda_knn

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            los_angeles_2x2().scaled_area(0.0)
        with pytest.raises(ValueError):
            los_angeles_2x2().scaled_area(1.5)


class TestValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            ParameterSet("x", 0, 1, 1, 80, 30, 1, 200, 3, 1, 2)

    def test_bad_percentage(self):
        with pytest.raises(ValueError):
            ParameterSet("x", 1, 1, 1, 150, 30, 1, 200, 3, 1, 2)

    def test_tx_range_conversion(self):
        p = los_angeles_2x2()
        assert p.tx_range_miles == pytest.approx(200.0 / METERS_PER_MILE)


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig(parameters=los_angeles_2x2())
        assert config.movement_mode is MovementMode.ROAD_NETWORK
        assert config.server_algorithm is ServerAlgorithm.EINN
        assert config.duration_s == pytest.approx(3600.0)
        assert config.query_rate_per_s == pytest.approx(23.0 / 60.0)

    def test_duration_override(self):
        config = SimulationConfig(parameters=los_angeles_2x2(), t_execution_s=120.0)
        assert config.duration_s == 120.0

    def test_k_range_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(parameters=los_angeles_2x2(), k_range=(0, 5))
        with pytest.raises(ValueError):
            SimulationConfig(parameters=los_angeles_2x2(), k_range=(5, 2))

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(parameters=los_angeles_2x2(), warmup_fraction=1.0)

    def test_senn_config_mapping(self):
        config = SimulationConfig(parameters=los_angeles_2x2())
        senn = config.senn_config()
        assert senn.k == 3
        assert senn.cache_capacity == 10
        assert senn.transmission_range == pytest.approx(200.0 / METERS_PER_MILE)
