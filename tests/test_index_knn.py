"""Tests for repro.index.knn: INN, depth-first baseline, EINN."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.index.knn import (
    NeighborResult,
    PruningBounds,
    incremental_nearest,
    k_nearest,
    k_nearest_depth_first,
    k_nearest_einn,
)
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree, RTreeConfig

coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
point_strategy = st.builds(Point, coord, coord)


def make_tree(n, seed=11, max_entries=8, extent=100.0):
    rng = np.random.default_rng(seed)
    points = [
        Point(float(x), float(y))
        for x, y in zip(rng.uniform(0, extent, n), rng.uniform(0, extent, n))
    ]
    tree = RTree(RTreeConfig(max_entries=max_entries))
    for i, p in enumerate(points):
        tree.insert(p, payload=i)
    return tree, points


def brute_force_knn(points, query, k):
    return sorted(
        (query.distance_to(p) for p in points)
    )[:k]


class TestIncrementalNearest:
    def test_empty_tree_yields_nothing(self):
        assert list(incremental_nearest(RTree(), Point(0, 0))) == []

    def test_ascending_order(self):
        tree, _ = make_tree(200)
        distances = [r.distance for r in incremental_nearest(tree, Point(50, 50))]
        assert distances == sorted(distances)
        assert len(distances) == 200

    def test_lazy_consumption(self):
        tree, points = make_tree(500)
        gen = incremental_nearest(tree, Point(10, 10))
        first = next(gen)
        expected = min(Point(10, 10).distance_to(p) for p in points)
        assert first.distance == pytest.approx(expected)

    def test_counter_counts_root(self):
        tree, _ = make_tree(50)
        counter = PageAccessCounter()
        counter.start_query()
        next(incremental_nearest(tree, Point(0, 0), counter))
        assert counter.current_total >= 1


class TestKNearest:
    def test_matches_brute_force(self):
        tree, points = make_tree(300)
        query = Point(42.0, 17.0)
        result = k_nearest(tree, query, 10)
        expected = brute_force_knn(points, query, 10)
        assert [r.distance for r in result] == pytest.approx(expected)

    def test_k_zero(self):
        tree, _ = make_tree(10)
        assert k_nearest(tree, Point(0, 0), 0) == []

    def test_k_negative_raises(self):
        with pytest.raises(ValueError):
            k_nearest(RTree(), Point(0, 0), -1)

    def test_k_larger_than_size(self):
        tree, points = make_tree(5)
        result = k_nearest(tree, Point(0, 0), 50)
        assert len(result) == 5

    @given(st.lists(point_strategy, min_size=1, max_size=80), point_strategy,
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, points, query, k):
        tree = RTree(RTreeConfig(max_entries=5))
        for p in points:
            tree.insert(p)
        result = k_nearest(tree, query, k)
        expected = brute_force_knn(points, query, k)
        assert [r.distance for r in result] == pytest.approx(expected)


class TestDepthFirst:
    def test_matches_best_first(self):
        tree, points = make_tree(250, seed=5)
        query = Point(33.0, 66.0)
        df = k_nearest_depth_first(tree, query, 7)
        bf = k_nearest(tree, query, 7)
        assert [r.distance for r in df] == pytest.approx([r.distance for r in bf])

    def test_k_zero(self):
        tree, _ = make_tree(10)
        assert k_nearest_depth_first(tree, Point(0, 0), 0) == []

    def test_empty_tree(self):
        assert k_nearest_depth_first(RTree(), Point(0, 0), 3) == []

    def test_best_first_never_visits_more_nodes(self):
        """INN is I/O-optimal: it expands no more nodes than depth-first."""
        tree, _ = make_tree(600, seed=9)
        for qx, qy in [(10, 10), (50, 50), (90, 5)]:
            query = Point(qx, qy)
            c_bf = PageAccessCounter()
            c_bf.start_query()
            k_nearest(tree, query, 5, c_bf)
            c_df = PageAccessCounter()
            c_df.start_query()
            k_nearest_depth_first(tree, query, 5, c_df)
            assert c_bf.current_total <= c_df.current_total

    @given(st.lists(point_strategy, min_size=1, max_size=60), point_strategy,
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, points, query, k):
        tree = RTree(RTreeConfig(max_entries=5))
        for p in points:
            tree.insert(p)
        result = k_nearest_depth_first(tree, query, k)
        expected = brute_force_knn(points, query, k)
        assert [r.distance for r in result] == pytest.approx(expected)


class TestPruningBounds:
    def test_defaults(self):
        bounds = PruningBounds()
        assert not bounds.has_lower
        assert not bounds.has_upper

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            PruningBounds(lower=-1.0)
        with pytest.raises(ValueError):
            PruningBounds(upper=-1.0)

    def test_flags(self):
        assert PruningBounds(lower=1.0).has_lower
        assert PruningBounds(upper=5.0).has_upper


class TestEinn:
    def _setup(self, n=400, seed=21, k=8, certain_count=4):
        tree, points = make_tree(n, seed=seed)
        query = Point(47.0, 53.0)
        ordered = sorted(
            (query.distance_to(p), i, p) for i, p in enumerate(points)
        )
        known = [
            NeighborResult(p, i, d) for d, i, p in ordered[:certain_count]
        ]
        # Lower bound: distance of the last certain entry (D_ct).
        # Upper bound: distance of the heap's last (k-th) entry.
        bounds = PruningBounds(lower=ordered[certain_count - 1][0],
                               upper=ordered[k - 1][0])
        return tree, points, query, known, bounds

    def test_einn_matches_inn_results(self):
        tree, points, query, known, bounds = self._setup()
        einn = k_nearest_einn(tree, query, 8, bounds, known)
        inn = k_nearest(tree, query, 8)
        assert [r.distance for r in einn] == pytest.approx(
            [r.distance for r in inn]
        )

    def test_einn_fewer_page_accesses(self):
        tree, points, query, known, bounds = self._setup(n=1500, certain_count=6)
        c_einn = PageAccessCounter()
        c_einn.start_query()
        k_nearest_einn(tree, query, 8, bounds, known, c_einn)
        c_inn = PageAccessCounter()
        c_inn.start_query()
        k_nearest(tree, query, 8, c_inn)
        assert c_einn.current_total <= c_inn.current_total

    def test_einn_without_bounds_equals_inn(self):
        tree, points = make_tree(200)
        query = Point(20, 80)
        einn = k_nearest_einn(tree, query, 5)
        inn = k_nearest(tree, query, 5)
        assert [r.distance for r in einn] == pytest.approx(
            [r.distance for r in inn]
        )

    def test_known_results_not_duplicated(self):
        tree, points, query, known, bounds = self._setup(certain_count=3)
        result = k_nearest_einn(tree, query, 8, bounds, known)
        payloads = [r.payload for r in result]
        assert len(payloads) == len(set(payloads))

    def test_k_zero(self):
        tree, _ = make_tree(10)
        assert k_nearest_einn(tree, Point(0, 0), 0) == []

    def test_k_negative_raises(self):
        with pytest.raises(ValueError):
            k_nearest_einn(RTree(), Point(0, 0), -2)

    def test_empty_tree_returns_known(self):
        known = [NeighborResult(Point(1, 1), "a", 1.0)]
        result = k_nearest_einn(RTree(), Point(0, 0), 3, PruningBounds(), known)
        assert result == known

    @given(
        st.lists(point_strategy, min_size=5, max_size=80),
        point_strategy,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_einn_correct_with_valid_bounds(
        self, points, query, k, certain_count
    ):
        """For any valid client knowledge, EINN returns the true top-k."""
        certain_count = min(certain_count, k, len(points))
        tree = RTree(RTreeConfig(max_entries=5))
        for i, p in enumerate(points):
            tree.insert(p, payload=i)
        ordered = sorted((query.distance_to(p), i, p) for i, p in enumerate(points))
        known = [NeighborResult(p, i, d) for d, i, p in ordered[:certain_count]]
        lower = ordered[certain_count - 1][0] if certain_count else 0.0
        upper = ordered[min(k, len(points)) - 1][0]
        bounds = PruningBounds(lower=lower, upper=upper)
        result = k_nearest_einn(tree, query, k, bounds, known)
        expected = brute_force_knn(points, query, k)
        assert [r.distance for r in result] == pytest.approx(expected)
