"""Unit and property tests for repro.geometry.bbox."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coord, coord)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return BoundingBox(x1, y1, x2, y2)


class TestConstruction:
    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_from_point_is_degenerate(self):
        box = BoundingBox.from_point(Point(2, 3))
        assert box.area == 0.0
        assert box.contains_point(Point(2, 3))

    def test_from_points(self):
        box = BoundingBox.from_points([Point(0, 5), Point(3, -1), Point(1, 2)])
        assert box == BoundingBox(0, -1, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_union_all(self):
        box = BoundingBox.union_all(
            [BoundingBox(0, 0, 1, 1), BoundingBox(2, -1, 3, 0.5)]
        )
        assert box == BoundingBox(0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.union_all([])


class TestAlgebra:
    def test_area_and_margin(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.area == 12.0
        assert box.margin == 7.0
        assert box.center == Point(2.0, 1.5)

    def test_intersection_overlapping(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        assert a.intersection(b) == BoundingBox(1, 1, 2, 2)
        assert a.overlap_area(b) == 1.0

    def test_intersection_disjoint_is_none(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert a.intersection(b) is None
        assert a.overlap_area(b) == 0.0
        assert not a.intersects(b)

    def test_touching_boxes_intersect(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 0, 2, 1)
        assert a.intersects(b)
        assert a.overlap_area(b) == 0.0

    def test_enlargement(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 1, 2, 2)
        assert a.enlargement(b) == pytest.approx(3.0)

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(1, 1, 2, 2)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestMetrics:
    def test_mindist_inside_is_zero(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.mindist(Point(1, 1)) == 0.0

    def test_mindist_outside(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.mindist(Point(5, 1)) == pytest.approx(3.0)
        assert box.mindist(Point(5, 6)) == pytest.approx(5.0)

    def test_maxdist_from_center(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.maxdist(Point(1, 1)) == pytest.approx(math.sqrt(2))

    def test_maxdist_outside(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.maxdist(Point(2, 0.5)) == pytest.approx(math.hypot(2, 0.5))

    def test_fully_inside_circle(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.fully_inside_circle(Point(0.5, 0.5), 1.0)
        assert not box.fully_inside_circle(Point(0.5, 0.5), 0.5)

    def test_minmaxdist_unit_square(self):
        box = BoundingBox(0, 0, 1, 1)
        # From the center the nearest face midpoint distance dominates.
        value = box.minmaxdist(Point(0.5, 0.5))
        assert value == pytest.approx(math.hypot(0.5, 0.5))


class TestMetricProperties:
    @given(boxes(), points)
    def test_mindist_le_maxdist(self, box, p):
        assert box.mindist(p) <= box.maxdist(p) + 1e-9

    @given(boxes(), points)
    def test_minmaxdist_between_min_and_max(self, box, p):
        assert box.mindist(p) <= box.minmaxdist(p) + 1e-9
        assert box.minmaxdist(p) <= box.maxdist(p) + 1e-9

    @given(boxes(), points)
    def test_mindist_zero_iff_inside(self, box, p):
        if box.contains_point(p):
            assert box.mindist(p) == 0.0
        else:
            assert box.mindist(p) > 0.0

    @given(boxes(), points)
    def test_maxdist_bounds_every_corner(self, box, p):
        corners = [
            Point(box.min_x, box.min_y),
            Point(box.min_x, box.max_y),
            Point(box.max_x, box.min_y),
            Point(box.max_x, box.max_y),
        ]
        maxdist = box.maxdist(p)
        for corner in corners:
            assert p.distance_to(corner) <= maxdist + 1e-9

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes(), boxes())
    def test_union_is_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(boxes(), boxes())
    def test_intersection_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @given(boxes(), boxes())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9
