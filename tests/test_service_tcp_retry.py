"""Fault-injection tests for ``TcpTransport`` retry semantics.

The contract under test (``src/repro/service/transport.py``):

- a send that fails before *any* byte reached the wire (the server
  closed an idle connection) triggers exactly one reconnect + resend,
  counted via ``service.client_resends``;
- a send that fails *mid-frame* propagates to the caller -- resending
  could deliver a duplicated frame once the server reassembles both
  halves -- and must NOT reconnect;
- ``_send_frame`` is the primitive that makes the distinction, so it
  gets direct unit tests too.

No real sockets: ``_connect`` is monkeypatched to hand out scripted
fakes, which also keeps the tests instant and deterministic.
"""

import socket
import struct
import threading
import time

import pytest

from repro.obs import OBS, observed
from repro.service.protocol import (
    ErrorCode,
    ErrorReply,
    ProtocolError,
    encode_message,
)
from repro.service.transport import TcpTransport, _send_frame, _WholeFrameFailure

REQUEST = encode_message(ErrorReply(1, ErrorCode.INTERNAL, "request stand-in"))
REPLY = encode_message(ErrorReply(1, ErrorCode.INTERNAL, "reply stand-in"))


class FakeSocket:
    """Scripted socket: records sends, serves a canned reply to recv."""

    def __init__(self, reply=b"", fail_after=None, accept_first=0):
        self.sent = bytearray()
        self._reply = bytearray(reply)
        #: raise OSError once this many bytes have been accepted.
        self.fail_after = fail_after
        #: cap on bytes accepted by a single ``send`` call.
        self.accept_first = accept_first
        self.closed = False

    def send(self, data):
        if self.fail_after is not None and len(self.sent) >= self.fail_after:
            raise OSError(104, "connection reset by peer")
        data = bytes(data)
        if self.accept_first:
            data = data[: self.accept_first]
        self.sent += data
        return len(data)

    def recv(self, size):
        chunk = bytes(self._reply[:size])
        del self._reply[:size]
        return chunk

    def shutdown(self, how):
        pass

    def close(self):
        self.closed = True


def make_transport(monkeypatch, sockets):
    """Build a TcpTransport whose ``_connect`` pops from ``sockets``."""
    remaining = list(sockets)
    connects = []

    def fake_connect(self):
        connects.append(1)
        return remaining.pop(0)

    monkeypatch.setattr(TcpTransport, "_connect", fake_connect)
    transport = TcpTransport("127.0.0.1", 1)
    return transport, connects


class TestSendFrame:
    def test_sends_whole_frame_across_short_writes(self):
        sock = FakeSocket(accept_first=3)
        _send_frame(sock, REQUEST)
        assert bytes(sock.sent) == REQUEST

    def test_zero_byte_failure_is_whole_frame_failure(self):
        sock = FakeSocket(fail_after=0)
        with pytest.raises(_WholeFrameFailure):
            _send_frame(sock, REQUEST)
        assert sock.sent == b""

    def test_mid_frame_failure_is_plain_oserror(self):
        sock = FakeSocket(fail_after=4, accept_first=4)
        with pytest.raises(OSError) as excinfo:
            _send_frame(sock, REQUEST)
        assert not isinstance(excinfo.value, _WholeFrameFailure)
        assert len(sock.sent) == 4

    def test_zero_byte_send_result_is_protocol_error(self):
        class DribbleShut(FakeSocket):
            def send(self, data):
                return 0

        with pytest.raises(ProtocolError):
            _send_frame(DribbleShut(), REQUEST)


class TestRetrySemantics:
    def test_whole_frame_failure_reconnects_and_resends_once(self, monkeypatch):
        dead = FakeSocket(fail_after=0)
        fresh = FakeSocket(reply=REPLY)
        transport, connects = make_transport(monkeypatch, [dead, fresh])
        with observed():
            OBS.registry.reset()
            reply = transport.request(REQUEST)
            resends = OBS.registry.counter("service.client_resends").value
        assert reply == REPLY
        assert bytes(fresh.sent) == REQUEST  # the full frame, exactly once
        assert dead.sent == b""
        assert dead.closed  # the stale socket was shut down
        assert len(connects) == 2  # __init__ + the one reconnect
        assert resends == 1

    def test_mid_frame_failure_propagates_without_resend(self, monkeypatch):
        # Accepts the first 4 bytes, then the connection dies.
        wounded = FakeSocket(fail_after=4, accept_first=4)
        spare = FakeSocket(reply=REPLY)
        transport, connects = make_transport(monkeypatch, [wounded, spare])
        with observed():
            OBS.registry.reset()
            with pytest.raises(OSError):
                transport.request(REQUEST)
            resends = OBS.registry.counter("service.client_resends").value
        assert len(connects) == 1  # no reconnect happened
        assert spare.sent == b""  # and nothing was resent
        assert resends == 0

    def test_second_whole_frame_failure_is_fatal(self, monkeypatch):
        # Reconnect happens once; if the fresh socket also dies at byte
        # zero the error propagates rather than looping forever.
        transport, connects = make_transport(
            monkeypatch, [FakeSocket(fail_after=0), FakeSocket(fail_after=0)]
        )
        with pytest.raises(OSError):
            transport.request(REQUEST)
        assert len(connects) == 2

    def test_clean_request_uses_one_connection(self, monkeypatch):
        sock = FakeSocket(reply=REPLY)
        transport, connects = make_transport(monkeypatch, [sock])
        assert transport.request(REQUEST) == REPLY
        assert len(connects) == 1

    def test_close_shuts_the_socket_down(self, monkeypatch):
        sock = FakeSocket(reply=REPLY)
        transport, _ = make_transport(monkeypatch, [sock])
        transport.close()
        assert sock.closed


class TestRealSocketIntegration:
    def test_reconnect_after_server_side_close(self):
        """End-to-end: a listener that drops the first connection.

        The first request() finds its socket closed by the peer (zero
        bytes leave), reconnects, and the second connection serves the
        reply.  Exercises the retry path over real sockets.
        """
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(5.0)
        port = listener.getsockname()[1]

        transport = TcpTransport("127.0.0.1", port, timeout_s=5.0)
        first, _ = listener.accept()
        # Kill the established connection outright (RST, not FIN): once
        # the client kernel has processed the reset, its next send fails
        # with zero bytes out -- exactly the whole-frame-failure case.
        first.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        first.close()
        time.sleep(0.2)  # let the RST reach the client socket

        def serve_second():
            conn, _ = listener.accept()
            data = conn.recv(65536)
            assert data == REQUEST
            conn.sendall(REPLY)
            conn.close()

        server_thread = threading.Thread(target=serve_second, daemon=True)
        server_thread.start()
        try:
            # The dead socket may need one send to notice the RST; the
            # transport's whole-frame retry absorbs exactly that case.
            reply = transport.request(REQUEST)
            assert reply == REPLY
        finally:
            transport.close()
            server_thread.join(timeout=5.0)
            listener.close()
