"""Tests for repro.index.pagestats."""

import pytest

from repro.index.pagestats import BufferPool, PageAccessCounter


class TestPageAccessCounter:
    def test_counts_index_and_leaf(self):
        counter = PageAccessCounter()
        counter.start_query()
        counter.record(1, is_leaf=False)
        counter.record(2, is_leaf=True)
        counter.record(3, is_leaf=True)
        breakdown = counter.finish_query()
        assert breakdown.total == 3
        assert breakdown.index_nodes == 1
        assert breakdown.leaf_nodes == 2

    def test_history_accumulates(self):
        counter = PageAccessCounter()
        for accesses in (1, 2, 3):
            counter.start_query()
            for i in range(accesses):
                counter.record(i, is_leaf=True)
            counter.finish_query()
        assert [b.total for b in counter.history] == [1, 2, 3]
        assert counter.mean_per_query() == pytest.approx(2.0)
        assert counter.total_accesses == 6

    def test_mean_empty_history(self):
        assert PageAccessCounter().mean_per_query() == 0.0

    def test_current_total(self):
        counter = PageAccessCounter()
        counter.start_query()
        counter.record(1, is_leaf=False)
        assert counter.current_total == 1

    def test_reset(self):
        counter = PageAccessCounter()
        counter.start_query()
        counter.record(1, is_leaf=True)
        counter.finish_query()
        counter.reset()
        assert counter.history == []
        assert counter.total_accesses == 0

    def test_buffer_pool_integration(self):
        pool = BufferPool(capacity=2)
        counter = PageAccessCounter(buffer_pool=pool)
        counter.start_query()
        counter.record(1, is_leaf=False)  # miss
        counter.record(1, is_leaf=False)  # hit
        counter.record(2, is_leaf=True)  # miss
        breakdown = counter.finish_query()
        assert breakdown.buffer_hits == 1
        assert breakdown.buffer_misses == 2

    def test_record_scan_bills_one_page(self):
        # A vectorized whole-node scan touches one page, however many
        # entries the array pass examined.
        counter = PageAccessCounter()
        counter.start_query()
        counter.record_scan(1, is_leaf=False, entries=30)
        counter.record_scan(2, is_leaf=True, entries=17)
        breakdown = counter.finish_query()
        assert breakdown.total == 2
        assert breakdown.index_nodes == 1
        assert breakdown.leaf_nodes == 1
        assert breakdown.entries_scanned == 47
        assert counter.total_accesses == 2
        assert counter.total_entries_scanned == 47

    def test_record_scan_matches_record_page_counts(self):
        plain = PageAccessCounter()
        scanned = PageAccessCounter()
        for c in (plain, scanned):
            c.start_query()
        for page_id, is_leaf, entries in [(1, False, 30), (2, True, 9)]:
            plain.record(page_id, is_leaf)
            scanned.record_scan(page_id, is_leaf, entries)
        a, b = plain.finish_query(), scanned.finish_query()
        assert (a.total, a.index_nodes, a.leaf_nodes) == (
            b.total,
            b.index_nodes,
            b.leaf_nodes,
        )

    def test_record_scan_rejects_negative(self):
        counter = PageAccessCounter()
        counter.start_query()
        with pytest.raises(ValueError):
            counter.record_scan(1, is_leaf=True, entries=-1)

    def test_record_scan_buffer_pool_single_access(self):
        pool = BufferPool(capacity=2)
        counter = PageAccessCounter(buffer_pool=pool)
        counter.start_query()
        counter.record_scan(5, is_leaf=True, entries=30)
        counter.record_scan(5, is_leaf=True, entries=30)
        breakdown = counter.finish_query()
        assert breakdown.buffer_misses == 1
        assert breakdown.buffer_hits == 1

    def test_reset_clears_entries_scanned(self):
        counter = PageAccessCounter()
        counter.start_query()
        counter.record_scan(1, is_leaf=True, entries=12)
        counter.finish_query()
        counter.reset()
        assert counter.total_entries_scanned == 0

    def test_absorb_folds_entries_scanned(self):
        counter = PageAccessCounter()
        sub = counter.subcounter()
        sub.start_query()
        sub.record_scan(1, is_leaf=True, entries=8)
        counter.absorb(sub.finish_query())
        assert counter.total_entries_scanned == 8
        assert counter.history[0].entries_scanned == 8


class TestBufferPool:
    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=-1)

    def test_zero_capacity_always_misses(self):
        pool = BufferPool(capacity=0)
        assert not pool.access(1)
        assert not pool.access(1)
        assert pool.hits == 0
        assert pool.misses == 2

    def test_hit_after_load(self):
        pool = BufferPool(capacity=4)
        assert not pool.access(7)
        assert pool.access(7)
        assert pool.hit_ratio() == pytest.approx(0.5)

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(3)  # evicts 1
        assert not pool.access(1)  # miss again
        assert pool.resident_pages == 2

    def test_lru_touch_refreshes(self):
        pool = BufferPool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 1 becomes most recent
        pool.access(3)  # evicts 2
        assert pool.access(1)
        assert not pool.access(2)

    def test_hit_ratio_empty(self):
        assert BufferPool(capacity=2).hit_ratio() == 0.0

    def test_clear(self):
        pool = BufferPool(capacity=2)
        pool.access(1)
        pool.clear()
        assert pool.resident_pages == 0
        assert pool.misses == 0
