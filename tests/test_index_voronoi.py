"""Tests for repro.index.voronoi (Zheng et al. semantic-cache baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.index.voronoi import VoronoiSemanticCache, voronoi_cell

BOUNDS = BoundingBox(0.0, 0.0, 10.0, 10.0)


def make_pois(n=20, seed=0, extent=10.0):
    rng = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0.2, extent - 0.2, n), rng.uniform(0.2, extent - 0.2, n))
        )
    ]


class TestClipHalfPlane:
    def test_clip_square(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        # Keep x <= 1.
        clipped = square.clip_half_plane(1.0, 0.0, 1.0)
        assert clipped is not None
        assert clipped.area == pytest.approx(2.0)
        assert clipped.contains_point(Point(0.5, 1.0))
        assert not clipped.contains_point(Point(1.5, 1.0))

    def test_clip_away_everything(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert square.clip_half_plane(1.0, 0.0, -1.0) is None

    def test_clip_keeps_everything(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        clipped = square.clip_half_plane(1.0, 0.0, 100.0)
        assert clipped is not None
        assert clipped.area == pytest.approx(4.0)

    def test_degenerate_half_plane_rejected(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        with pytest.raises(ValueError):
            square.clip_half_plane(0.0, 0.0, 1.0)

    def test_diagonal_clip(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        # Keep x + y <= 2 (the lower-left triangle).
        clipped = square.clip_half_plane(1.0, 1.0, 2.0)
        assert clipped is not None
        assert clipped.area == pytest.approx(2.0)


class TestVoronoiCell:
    def test_two_sites_split(self):
        pois = [(Point(2, 5), "l"), (Point(8, 5), "r")]
        left = voronoi_cell(pois, 0, BOUNDS)
        # The left cell is the half-box x <= 5.
        assert left.area == pytest.approx(50.0)
        assert left.contains_point(Point(1, 1))
        assert not left.contains_point(Point(9, 9))

    def test_cells_partition_area(self):
        pois = make_pois(n=12, seed=1)
        total = sum(voronoi_cell(pois, i, BOUNDS).area for i in range(len(pois)))
        assert total == pytest.approx(BOUNDS.area, rel=1e-6)

    def test_cell_contains_its_site(self):
        pois = make_pois(n=15, seed=2)
        for i, (site, _) in enumerate(pois):
            assert voronoi_cell(pois, i, BOUNDS).contains_point(site)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            voronoi_cell(make_pois(3), 5, BOUNDS)

    def test_site_outside_bounds_rejected(self):
        pois = [(Point(20, 20), "out")]
        with pytest.raises(ValueError):
            voronoi_cell(pois, 0, BOUNDS)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_property_cell_points_have_site_as_nn(self, seed):
        """Any sampled point of a cell has the cell's site as its 1NN."""
        rng = np.random.default_rng(seed)
        pois = make_pois(n=int(rng.integers(2, 20)), seed=seed)
        index = int(rng.integers(len(pois)))
        cell = voronoi_cell(pois, index, BOUNDS)
        site, _ = pois[index]
        for vertex in cell.vertices:
            # Points slightly inside from each vertex towards the site.
            probe = vertex.towards(site, vertex.distance_to(site) * 0.01)
            best = min(probe.distance_to(p) for p, _ in pois)
            assert probe.distance_to(site) <= best + 1e-6


class TestVoronoiSemanticCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            VoronoiSemanticCache([], BOUNDS)
        with pytest.raises(ValueError):
            VoronoiSemanticCache(make_pois(3), BOUNDS, capacity=0)

    def test_first_query_fetches(self):
        cache = VoronoiSemanticCache(make_pois(10), BOUNDS)
        cache.query(Point(5, 5))
        assert cache.stats.server_fetches == 1
        assert cache.stats.cache_hits == 0

    def test_repeat_query_hits(self):
        cache = VoronoiSemanticCache(make_pois(10), BOUNDS)
        first = cache.query(Point(5, 5))
        second = cache.query(Point(5.01, 5.0))
        # Tiny movement stays in the same Voronoi cell.
        assert second == first
        assert cache.stats.cache_hits == 1

    def test_answers_always_correct(self):
        pois = make_pois(25, seed=3)
        cache = VoronoiSemanticCache(pois, BOUNDS, capacity=4)
        rng = np.random.default_rng(4)
        for _ in range(60):
            q = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            point, payload = cache.query(q)
            best = min(q.distance_to(p) for p, _ in pois)
            assert q.distance_to(point) == pytest.approx(best, abs=1e-9)

    def test_lru_eviction(self):
        pois = make_pois(30, seed=5)
        cache = VoronoiSemanticCache(pois, BOUNDS, capacity=2)
        rng = np.random.default_rng(6)
        for _ in range(20):
            cache.query(Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10))))
        assert cache.cached_cells <= 2

    def test_walk_along_cells_hits_often(self):
        """A slow walk re-fetches only when crossing cell borders."""
        pois = make_pois(12, seed=7)
        cache = VoronoiSemanticCache(pois, BOUNDS, capacity=8)
        steps = 200
        for i in range(steps):
            t = i / (steps - 1)
            cache.query(Point(0.5 + 9.0 * t, 5.0))
        assert cache.stats.server_fetches < steps / 4
        assert cache.stats.server_share < 0.25
