"""Tests for repro.core.cache."""

import pytest

from repro.core.cache import CachedQueryResult, QueryCache
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def neighbors(*distances):
    return [
        NeighborResult(Point(d, 0.0), f"poi-{i}", d) for i, d in enumerate(distances)
    ]


class TestCachedQueryResult:
    def test_basic_properties(self):
        entry = CachedQueryResult(Point(0, 0), tuple(neighbors(1.0, 2.0, 3.0)))
        assert entry.k == 3
        assert entry.certain_radius == 3.0
        assert not entry.is_empty()

    def test_certain_circle(self):
        entry = CachedQueryResult(Point(1, 1), tuple(neighbors(2.0)))
        circle = entry.certain_circle()
        assert circle.center == Point(1, 1)
        assert circle.radius == 2.0

    def test_empty_result(self):
        entry = CachedQueryResult(Point(0, 0), ())
        assert entry.is_empty()
        assert entry.certain_radius == 0.0

    def test_unsorted_neighbors_rejected(self):
        bad = [
            NeighborResult(Point(3, 0), "far", 3.0),
            NeighborResult(Point(1, 0), "near", 1.0),
        ]
        with pytest.raises(ValueError):
            CachedQueryResult(Point(0, 0), tuple(bad))


class TestQueryCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryCache(0)

    def test_cold_cache(self):
        cache = QueryCache(5)
        assert cache.get() is None
        assert cache.is_empty()

    def test_store_and_get(self):
        cache = QueryCache(5)
        cache.store(Point(0, 0), neighbors(1.0, 2.0))
        entry = cache.get()
        assert entry is not None
        assert entry.k == 2
        assert not cache.is_empty()

    def test_store_replaces_previous(self):
        """Policy 1: only the most recent query result is retained."""
        cache = QueryCache(5)
        cache.store(Point(0, 0), neighbors(1.0))
        cache.store(Point(9, 9), neighbors(4.0, 5.0))
        entry = cache.get()
        assert entry.query_location == Point(9, 9)
        assert entry.k == 2
        assert cache.store_count == 2

    def test_capacity_truncates_to_nearest(self):
        cache = QueryCache(2)
        cache.store(Point(0, 0), neighbors(3.0, 1.0, 2.0))
        entry = cache.get()
        assert entry.k == 2
        assert [n.distance for n in entry.neighbors] == [1.0, 2.0]
        # Certain radius shrinks with the truncation and stays exact.
        assert entry.certain_radius == 2.0

    def test_clear(self):
        cache = QueryCache(3)
        cache.store(Point(0, 0), neighbors(1.0))
        cache.clear()
        assert cache.is_empty()

    def test_timestamp_recorded(self):
        cache = QueryCache(3)
        entry = cache.store(Point(0, 0), neighbors(1.0), timestamp=42.0)
        assert entry.timestamp == 42.0
