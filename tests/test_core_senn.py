"""Tests for repro.core.senn (Algorithm 1) -- the paper's centerpiece."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachedQueryResult
from repro.core.senn import ResolutionTier, SennConfig, senn_query
from repro.core.server import SpatialDatabaseServer
from repro.geometry.coverage import CoverageMethod
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def true_knn(pois, location, k):
    ordered = sorted((location.distance_to(p), i, p) for i, (p, _) in enumerate(pois))
    return [NeighborResult(p, pois[i][1], d) for d, i, p in ordered[:k]]


def make_cache(pois, location, k):
    return CachedQueryResult(location, tuple(true_knn(pois, location, k)))


def random_world(seed, poi_count=30, extent=10.0):
    rng = np.random.default_rng(seed)
    pois = [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, poi_count), rng.uniform(0, extent, poi_count))
        )
    ]
    return rng, pois


DEFAULT_CONFIG = SennConfig(k=3, transmission_range=2.0, cache_capacity=10)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SennConfig(k=0)
        with pytest.raises(ValueError):
            SennConfig(transmission_range=-1.0)
        with pytest.raises(ValueError):
            SennConfig(cache_capacity=0)
        with pytest.raises(ValueError):
            SennConfig(polygon_sides=2)


class TestTiers:
    def test_local_cache_tier(self):
        """A host re-querying near its last location answers locally."""
        _, pois = random_world(0)
        q = Point(5, 5)
        own = make_cache(pois, Point(5.01, 5.0), 8)
        result = senn_query(q, 3, own, [], DEFAULT_CONFIG)
        assert result.tier is ResolutionTier.LOCAL_CACHE
        assert len(result.neighbors) == 3

    def test_single_peer_tier(self):
        _, pois = random_world(1)
        q = Point(5, 5)
        peer = make_cache(pois, Point(5.05, 5.0), 8)
        result = senn_query(q, 3, None, [peer], DEFAULT_CONFIG)
        assert result.tier is ResolutionTier.SINGLE_PEER
        assert result.peers_consulted == 1

    def test_server_tier_no_peers(self):
        _, pois = random_world(2)
        server = SpatialDatabaseServer.from_points(pois)
        result = senn_query(Point(5, 5), 3, None, [], DEFAULT_CONFIG, server=server)
        assert result.tier is ResolutionTier.SERVER
        assert server.queries_served == 1
        assert result.server_pages > 0

    def test_uncertain_tier_when_accepted(self):
        _, pois = random_world(3)
        q = Point(0, 0)
        # A peer far away: its POIs land in the heap as uncertain.
        peer = make_cache(pois, Point(9, 9), 5)
        config = SennConfig(k=3, accept_uncertain=True)
        result = senn_query(q, 3, None, [peer], config)
        if result.tier is ResolutionTier.UNCERTAIN:
            assert len(result.neighbors) == 3

    def test_server_tier_without_server_returns_partial(self):
        _, pois = random_world(4)
        q = Point(0, 0)
        peer = make_cache(pois, Point(9, 9), 3)
        result = senn_query(q, 3, None, [peer], DEFAULT_CONFIG, server=None)
        assert result.tier is ResolutionTier.SERVER
        # Only certain entries are returned when no server is reachable.
        truth = [n.payload for n in true_knn(pois, q, 3)]
        assert [n.payload for n in result.neighbors] == truth[: len(result.neighbors)]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            senn_query(Point(0, 0), 0, None, [], DEFAULT_CONFIG)


class TestCorrectness:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_peer_answers_equal_brute_force(self, seed):
        """Whenever SENN answers from peers, the result is the exact kNN."""
        rng, pois = random_world(seed, poi_count=40)
        q = Point(float(rng.uniform(2, 8)), float(rng.uniform(2, 8)))
        caches = []
        for _ in range(int(rng.integers(0, 6))):
            peer = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            caches.append(make_cache(pois, peer, int(rng.integers(1, 9))))
        k = int(rng.integers(1, 6))
        config = SennConfig(k=k, transmission_range=5.0)
        result = senn_query(q, k, None, caches, config)
        if result.answered_by_peers:
            expected = [n.distance for n in true_knn(pois, q, k)]
            assert [n.distance for n in result.neighbors] == pytest.approx(expected)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_with_server_always_exact(self, seed):
        """With a server fallback the answer is always the exact kNN."""
        rng, pois = random_world(seed, poi_count=40)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        caches = []
        for _ in range(int(rng.integers(0, 4))):
            peer = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            caches.append(make_cache(pois, peer, int(rng.integers(1, 8))))
        k = int(rng.integers(1, 6))
        config = SennConfig(k=k)
        result = senn_query(q, k, None, caches, config, server=server)
        expected = [n.distance for n in true_knn(pois, q, k)]
        assert sorted(n.distance for n in result.neighbors)[:k] == pytest.approx(
            expected
        )

    def test_server_overfetch_is_exact(self):
        """Policy 2 over-fetching (server_k > k) must stay correct.

        Regression: the visible answer is trimmed to the requested k;
        the over-fetched surplus is cache material (``prefetched``), not
        part of the caller's neighbors.
        """
        _, pois = random_world(9, poi_count=50)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(5, 5)
        result = senn_query(
            q, 3, None, [], SennConfig(k=3), server=server, server_k=10
        )
        expected = [n.distance for n in true_knn(pois, q, 10)]
        assert [n.distance for n in result.neighbors] == pytest.approx(expected[:3])
        assert [n.distance for n in result.prefetched] == pytest.approx(expected)
        assert result.cacheable is result.prefetched

    def test_no_overfetch_leaves_prefetched_empty(self):
        """Without policy 2 the answer and the cacheable set coincide."""
        _, pois = random_world(9, poi_count=50)
        server = SpatialDatabaseServer.from_points(pois)
        result = senn_query(
            Point(5, 5), 3, None, [], SennConfig(k=3), server=server
        )
        assert result.prefetched == []
        assert result.cacheable is result.neighbors

    def test_heuristic_orders_peers_by_distance(self):
        """The nearest peer's cache is consulted first (Heuristic 3.3)."""
        _, pois = random_world(11)
        q = Point(5, 5)
        near = make_cache(pois, Point(5.1, 5.0), 8)
        far = make_cache(pois, Point(8.0, 8.0), 8)
        result = senn_query(q, 3, None, [far, near], DEFAULT_CONFIG)
        if result.tier is ResolutionTier.SINGLE_PEER:
            assert result.peers_consulted == 1  # near peer sufficed

    def test_multi_peer_beats_single_peer(self):
        """Constructed Figure-7-style case resolved only by merging."""
        pois = [
            (Point(x * 0.8, y * 0.8), f"poi-{x}-{y}")
            for x in range(-2, 9)
            for y in range(-2, 9)
        ]
        q = Point(2.4, 2.4)
        caches = [
            make_cache(pois, Point(1.9, 2.4), 7),
            make_cache(pois, Point(2.9, 2.4), 7),
            make_cache(pois, Point(2.4, 1.9), 7),
            make_cache(pois, Point(2.4, 2.9), 7),
        ]
        config = SennConfig(k=5, transmission_range=5.0)
        result = senn_query(q, 5, None, caches, config)
        if result.tier is ResolutionTier.MULTI_PEER:
            expected = [n.distance for n in true_knn(pois, q, 5)]
            assert [n.distance for n in result.neighbors] == pytest.approx(expected)


class TestBoundsFlow:
    def test_bounds_forwarded_reduce_pages(self):
        rng, pois = random_world(13, poi_count=4000, extent=100.0)
        q = Point(50, 50)
        peer = make_cache(pois, Point(50.5, 50.0), 10)
        config = SennConfig(k=8)

        server_with = SpatialDatabaseServer.from_points(pois)
        with_peers = senn_query(q, 8, None, [peer], config, server=server_with)
        server_without = SpatialDatabaseServer.from_points(pois)
        without_peers = senn_query(q, 8, None, [], config, server=server_without)

        if with_peers.tier is ResolutionTier.SERVER:
            assert with_peers.server_pages <= without_peers.server_pages
            assert [n.distance for n in with_peers.neighbors] == pytest.approx(
                [n.distance for n in without_peers.neighbors]
            )
