"""Tests for repro.core.verification: the paper's Lemmas 3.1-3.8 in action.

The decisive property: a verifier may only certify true nearest neighbors,
with exact ranks.  We build random worlds, give peers genuine kNN caches,
and compare certified entries against brute force.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.core.verification import (
    collect_candidates,
    verify_multi_peer,
    verify_single_peer,
)
from repro.geometry.coverage import CoverageMethod
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def true_knn(pois, location, k):
    """Brute-force kNN as NeighborResult list."""
    ordered = sorted((location.distance_to(p), i, p) for i, (p, _) in enumerate(pois))
    return [
        NeighborResult(p, pois[i][1], d) for d, i, p in ordered[:k]
    ]


def make_cache(pois, location, k):
    return CachedQueryResult(location, tuple(true_knn(pois, location, k)))


def random_world(seed, poi_count=30, extent=10.0):
    rng = np.random.default_rng(seed)
    pois = [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, poi_count), rng.uniform(0, extent, poi_count))
        )
    ]
    return rng, pois


class TestSinglePeer:
    def test_identical_location_certifies_everything(self):
        """A peer at Q's own position certifies all its k-1 nearest."""
        _, pois = random_world(0)
        q = Point(5, 5)
        cache = make_cache(pois, q, 4)
        heap = CandidateHeap(3)
        verify_single_peer(q, cache, heap)
        # delta = 0: n_i certain iff Dist(Q, n_i) <= Dist(Q, n_4); the
        # first three all satisfy it.
        assert heap.certain_count >= 3
        assert heap.is_complete()

    def test_far_peer_certifies_nothing(self):
        _, pois = random_world(1)
        q = Point(0, 0)
        far_peer = Point(1000, 1000)
        cache = make_cache(pois, far_peer, 3)
        heap = CandidateHeap(3)
        certified = verify_single_peer(q, cache, heap)
        assert certified == 0
        assert heap.certain_count == 0

    def test_empty_cache_noop(self):
        heap = CandidateHeap(3)
        cache = CachedQueryResult(Point(0, 0), ())
        assert verify_single_peer(Point(1, 1), cache, heap) == 0
        assert len(heap) == 0

    def test_figure1_scenario(self):
        """Paper Figure 1: nearby peers' cached 1NNs verified at Q."""
        # POIs (gas stations) n1..n4 on a line; peers P1 and P2 queried
        # their 1NN at positions close to Q.
        pois = [
            (Point(0.0, 0.0), "n1"),
            (Point(2.0, 0.0), "n2"),
            (Point(4.0, 0.0), "n3"),
            (Point(6.0, 0.0), "n4"),
        ]
        q = Point(2.2, 0.1)
        p1 = Point(2.1, 0.0)  # cached <n2, P1>
        cache1 = make_cache(pois, p1, 2)  # 2NN so the certain circle is wide
        heap = CandidateHeap(1)
        verify_single_peer(q, cache1, heap)
        assert heap.is_complete()
        assert heap.certain_entries()[0].payload == "n2"

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=80, deadline=None)
    def test_soundness_random_worlds(self, seed):
        """Certified entries are exactly a prefix of the true NN order."""
        rng, pois = random_world(seed)
        q = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        peer = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
        peer_k = int(rng.integers(1, 8))
        k = int(rng.integers(1, 6))
        cache = make_cache(pois, peer, peer_k)
        heap = CandidateHeap(k)
        verify_single_peer(q, cache, heap)
        truth = [n.payload for n in true_knn(pois, q, k)]
        certified = [e.payload for e in heap.certain_entries()]
        # Certified entries must be the true top-|certified| in order.
        assert certified == truth[: len(certified)]


class TestMultiPeer:
    def test_two_peers_merge_regions(self):
        """A candidate uncertifiable by either peer alone becomes certain
        after merging (the Figure 7 situation)."""
        # Dense POI field ensures caches with useful radii.
        pois = [
            (Point(x, y), f"poi-{x}-{y}")
            for x in range(-3, 10, 2)
            for y in range(-3, 10, 2)
        ]
        q = Point(3.0, 3.0)
        left = Point(1.8, 3.0)
        right = Point(4.2, 3.0)
        cache_l = make_cache(pois, left, 6)
        cache_r = make_cache(pois, right, 6)
        heap_single = CandidateHeap(4)
        verify_single_peer(q, cache_l, heap_single)
        verify_single_peer(q, cache_r, heap_single)
        heap_multi = CandidateHeap(4)
        verify_single_peer(q, cache_l, heap_multi)
        verify_single_peer(q, cache_r, heap_multi)
        verify_multi_peer(q, [cache_l, cache_r], heap_multi)
        assert heap_multi.certain_count >= heap_single.certain_count

    def test_no_caches_noop(self):
        heap = CandidateHeap(3)
        assert verify_multi_peer(Point(0, 0), [], heap) == 0

    @pytest.mark.parametrize(
        "method", [CoverageMethod.EXACT, CoverageMethod.POLYGON]
    )
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_soundness_random_worlds(self, method, seed):
        """Multi-peer certification is sound for both coverage backends."""
        rng, pois = random_world(seed, poi_count=40)
        q = Point(float(rng.uniform(2, 8)), float(rng.uniform(2, 8)))
        caches = []
        for _ in range(int(rng.integers(2, 5))):
            peer = Point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            caches.append(make_cache(pois, peer, int(rng.integers(2, 8))))
        k = int(rng.integers(1, 6))
        heap = CandidateHeap(k)
        for cache in caches:
            verify_single_peer(q, cache, heap)
        verify_multi_peer(q, caches, heap, method=method, polygon_sides=24)
        truth = [n.payload for n in true_knn(pois, q, k)]
        certified = [e.payload for e in heap.certain_entries()]
        assert certified == truth[: len(certified)]

    def test_polygon_never_beats_exact(self):
        """The polygonized region under-approximates the exact one."""
        rng, pois = random_world(7, poi_count=40)
        q = Point(5, 5)
        caches = [
            make_cache(pois, Point(4.5, 5.0), 6),
            make_cache(pois, Point(5.5, 5.0), 6),
            make_cache(pois, Point(5.0, 4.3), 6),
        ]
        counts = {}
        for method in (CoverageMethod.EXACT, CoverageMethod.POLYGON):
            heap = CandidateHeap(5)
            for cache in caches:
                verify_single_peer(q, cache, heap)
            verify_multi_peer(q, caches, heap, method=method, polygon_sides=16)
            counts[method] = heap.certain_count
        assert counts[CoverageMethod.POLYGON] <= counts[CoverageMethod.EXACT]


class TestCollectCandidates:
    def test_dedup_across_caches(self):
        pois = [(Point(1, 0), "a"), (Point(2, 0), "b")]
        cache1 = make_cache(pois, Point(0, 0), 2)
        cache2 = make_cache(pois, Point(3, 0), 2)
        candidates = collect_candidates(Point(0, 0), [cache1, cache2])
        assert len(candidates) == 2

    def test_sorted_by_distance_to_query(self):
        pois = [(Point(5, 0), "far"), (Point(1, 0), "near")]
        cache = make_cache(pois, Point(3, 0), 2)
        candidates = collect_candidates(Point(0, 0), [cache])
        assert [payload for _, _, payload in candidates] == ["near", "far"]

    def test_empty(self):
        assert collect_candidates(Point(0, 0), []) == []
