"""Tests for sharing-based window queries."""

import numpy as np
import pytest

from repro.core.cache import CachedQueryResult
from repro.core.range_queries import sharing_window_query
from repro.core.senn import ResolutionTier, SennConfig
from repro.core.server import SpatialDatabaseServer
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.index.knn import NeighborResult


def random_world(seed, poi_count=40, extent=10.0):
    rng = np.random.default_rng(seed)
    return rng, [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, poi_count), rng.uniform(0, extent, poi_count))
        )
    ]


def range_cache(pois, location, radius):
    within = sorted(
        (location.distance_to(p), i, p)
        for i, (p, _) in enumerate(pois)
        if location.distance_to(p) <= radius
    )
    neighbors = tuple(NeighborResult(p, pois[i][1], d) for d, i, p in within)
    return CachedQueryResult(location, neighbors, known_radius=radius)


def true_window(pois, window):
    return sorted(payload for p, payload in pois if window.contains_point(p))


CONFIG = SennConfig(k=3, transmission_range=5.0, cache_capacity=50)


class TestSharingWindowQuery:
    def test_peer_covered_window(self):
        _, pois = random_world(0)
        window = BoundingBox(4.0, 4.0, 6.0, 6.0)
        peer = range_cache(pois, Point(5.0, 5.0), 3.0)
        result = sharing_window_query(window, None, [peer], CONFIG)
        assert result.answered_by_peers
        got = sorted(n.payload for n in result.neighbors)
        assert got == true_window(pois, window)

    def test_uncovered_goes_to_server(self):
        _, pois = random_world(1)
        server = SpatialDatabaseServer.from_points(pois)
        window = BoundingBox(1.0, 1.0, 9.0, 9.0)
        peer = range_cache(pois, Point(5.0, 5.0), 1.0)
        result = sharing_window_query(window, None, [peer], CONFIG, server=server)
        assert result.tier is ResolutionTier.SERVER
        assert result.server_pages > 0
        got = sorted(n.payload for n in result.neighbors)
        assert got == true_window(pois, window)

    def test_no_server_returns_empty(self):
        window = BoundingBox(0, 0, 1, 1)
        result = sharing_window_query(window, None, [], CONFIG)
        assert result.tier is ResolutionTier.SERVER
        assert result.neighbors == []

    def test_own_cache_covers(self):
        _, pois = random_world(2)
        window = BoundingBox(4.5, 4.5, 5.5, 5.5)
        own = range_cache(pois, Point(5.0, 5.0), 2.0)
        result = sharing_window_query(window, own, [], CONFIG)
        assert result.tier is ResolutionTier.LOCAL_CACHE

    def test_results_sorted_from_center(self):
        _, pois = random_world(3)
        server = SpatialDatabaseServer.from_points(pois)
        window = BoundingBox(2.0, 2.0, 8.0, 8.0)
        result = sharing_window_query(window, None, [], CONFIG, server=server)
        distances = [n.distance for n in result.neighbors]
        assert distances == sorted(distances)

    def test_peer_answers_match_brute_force_randomized(self):
        rng, pois = random_world(4, poi_count=60)
        for _ in range(20):
            cx = float(rng.uniform(2, 8))
            cy = float(rng.uniform(2, 8))
            half = float(rng.uniform(0.2, 1.0))
            window = BoundingBox(cx - half, cy - half, cx + half, cy + half)
            peer = range_cache(
                pois,
                Point(cx + float(rng.uniform(-0.3, 0.3)), cy),
                float(rng.uniform(0.5, 4.0)),
            )
            result = sharing_window_query(window, None, [peer], CONFIG)
            if result.answered_by_peers:
                got = sorted(n.payload for n in result.neighbors)
                assert got == true_window(pois, window)
