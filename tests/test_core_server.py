"""Tests for repro.core.server."""

import numpy as np
import pytest

from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.geometry.point import Point
from repro.index.knn import NeighborResult, PruningBounds
from repro.index.rtree import RTreeConfig


def make_pois(n, seed=0, extent=100.0):
    rng = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), f"poi-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, n), rng.uniform(0, extent, n))
        )
    ]


class TestConstruction:
    def test_from_points_bulk(self):
        server = SpatialDatabaseServer.from_points(make_pois(100))
        assert server.poi_count == 100

    def test_from_points_incremental(self):
        server = SpatialDatabaseServer.from_points(make_pois(50), bulk=False)
        assert server.poi_count == 50

    def test_empty_server(self):
        server = SpatialDatabaseServer.from_points([])
        assert server.poi_count == 0
        assert server.knn_query(Point(0, 0), 3) == []


class TestQueries:
    def test_knn_correct(self):
        pois = make_pois(200)
        server = SpatialDatabaseServer.from_points(pois)
        q = Point(50, 50)
        result = server.knn_query(q, 5)
        expected = sorted(q.distance_to(p) for p, _ in pois)[:5]
        assert [r.distance for r in result] == pytest.approx(expected)

    def test_all_algorithms_agree(self):
        pois = make_pois(300, seed=3)
        q = Point(20, 70)
        distances = {}
        for algorithm in ServerAlgorithm:
            server = SpatialDatabaseServer.from_points(pois, algorithm=algorithm)
            distances[algorithm] = [r.distance for r in server.knn_query(q, 6)]
        baseline = distances[ServerAlgorithm.INN]
        for algorithm, observed in distances.items():
            assert observed == pytest.approx(baseline), algorithm

    def test_query_counts_pages(self):
        server = SpatialDatabaseServer.from_points(make_pois(500))
        server.knn_query(Point(10, 10), 3)
        assert server.queries_served == 1
        breakdown = server.last_query_breakdown()
        assert breakdown is not None and breakdown.total > 0
        assert server.mean_page_accesses() > 0

    def test_einn_with_bounds_saves_pages(self):
        pois = make_pois(3000, seed=5)
        q = Point(50, 50)
        ordered = sorted((q.distance_to(p), i, p) for i, (p, _) in enumerate(pois))
        known = [NeighborResult(p, f"poi-{i}", d) for d, i, p in ordered[:4]]
        bounds = PruningBounds(lower=ordered[3][0], upper=ordered[7][0])

        einn_server = SpatialDatabaseServer.from_points(pois, ServerAlgorithm.EINN)
        einn_result = einn_server.knn_query(q, 8, bounds, known)
        inn_server = SpatialDatabaseServer.from_points(pois, ServerAlgorithm.INN)
        inn_result = inn_server.knn_query(q, 8)

        assert [r.distance for r in einn_result] == pytest.approx(
            [r.distance for r in inn_result]
        )
        assert (
            einn_server.last_query_breakdown().total
            <= inn_server.last_query_breakdown().total
        )

    def test_algorithm_override_per_query(self):
        server = SpatialDatabaseServer.from_points(make_pois(100))
        result = server.knn_query(Point(0, 0), 2, algorithm=ServerAlgorithm.DEPTH_FIRST)
        assert len(result) == 2

    def test_incremental_query(self):
        pois = make_pois(80)
        server = SpatialDatabaseServer.from_points(pois)
        stream = server.incremental_query(Point(0, 0))
        first_three = [next(stream) for _ in range(3)]
        distances = [r.distance for r in first_three]
        assert distances == sorted(distances)

    def test_buffer_pool_enabled(self):
        server = SpatialDatabaseServer.from_points(
            make_pois(1000), buffer_capacity=64
        )
        for i in range(5):
            server.knn_query(Point(50, 50), 4)
        last = server.last_query_breakdown()
        # Repeated identical queries should be fully buffered by now.
        assert last.buffer_hits > 0

    def test_reset_statistics(self):
        server = SpatialDatabaseServer.from_points(make_pois(100))
        server.knn_query(Point(0, 0), 2)
        server.reset_statistics()
        assert server.queries_served == 0
        assert server.mean_page_accesses() == 0.0


class TestDetailedAnswers:
    def test_knn_query_detailed_returns_own_breakdown(self):
        server = SpatialDatabaseServer.from_points(make_pois(300))
        answer = server.knn_query_detailed(Point(10, 10), 4)
        assert len(answer.neighbors) == 4
        assert answer.pages.total > 0
        assert answer.batch_size == 1
        # Single-threaded, the returned breakdown and the counter's last
        # history entry coincide.
        assert answer.pages == server.last_query_breakdown()

    def test_range_query_detailed_returns_own_breakdown(self):
        server = SpatialDatabaseServer.from_points(make_pois(300))
        answer = server.range_query_detailed(Point(50, 50), 20.0)
        assert answer.pages.total > 0
        assert all(n.distance <= 20.0 for n in answer.neighbors)
        assert answer.pages == server.last_query_breakdown()


class TestIncrementalStreamAccounting:
    """Regression: streams bill their own sub-counter, not whichever
    query happens to be open when the consumer pulls."""

    def test_stream_pages_do_not_contaminate_interleaved_query(self):
        pois = make_pois(500, seed=2)
        shared = SpatialDatabaseServer.from_points(pois)
        clean = SpatialDatabaseServer.from_points(pois)

        stream = shared.incremental_query(Point(5, 5))
        for _ in range(10):
            next(stream)
        # A kNN query interleaves with the open stream.
        contaminated = shared.knn_query_detailed(Point(90, 90), 3).pages
        reference = clean.knn_query_detailed(Point(90, 90), 3).pages
        assert contaminated == reference
        stream.close()

    def test_stream_folds_into_history_on_close(self):
        server = SpatialDatabaseServer.from_points(make_pois(200, seed=3))
        stream = server.incremental_query(Point(1, 1))
        for _ in range(5):
            next(stream)
        assert server.counter.history == []  # not folded while open
        stream.close()
        assert len(server.counter.history) == 1
        assert server.counter.history[0].total > 0

    def test_exhausted_stream_folds_once(self):
        server = SpatialDatabaseServer.from_points(make_pois(30, seed=4))
        results = list(server.incremental_query(Point(0, 0)))
        assert len(results) == 30
        assert len(server.counter.history) == 1
        assert server.mean_page_accesses() == server.counter.history[0].total

    def test_two_streams_account_separately(self):
        pois = make_pois(400, seed=5)
        server = SpatialDatabaseServer.from_points(pois)
        a = server.incremental_query(Point(10, 10))
        b = server.incremental_query(Point(90, 90))
        for _ in range(8):
            next(a)
            next(b)
        a.close()
        b.close()
        assert len(server.counter.history) == 2
        totals = [entry.total for entry in server.counter.history]
        assert all(total > 0 for total in totals)
        # The shared running total is the sum of both sub-streams.
        assert server.counter.total_accesses == sum(totals)

    def test_unmetered_stream_stays_invisible(self):
        server = SpatialDatabaseServer.from_points(make_pois(100, seed=6))
        stream = server.incremental_query(Point(0, 0), meter=False)
        for _ in range(5):
            next(stream)
        stream.close()
        assert server.counter.history == []
        assert server.counter.total_accesses == 0
