"""Tests for repro.sim.mobility."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.sim.mobility import FreeTrajectory, RoadTrajectory, StationaryTrajectory


def make_network(seed=0):
    return generate_road_network(
        RoadNetworkSpec(width=2.0, height=2.0, secondary_spacing=0.4, seed=seed)
    )


class TestStationary:
    def test_never_moves(self):
        traj = StationaryTrajectory(Point(1, 1))
        assert traj.advance(1000.0) == Point(1, 1)

    def test_negative_dt_raises(self):
        with pytest.raises(ValueError):
            StationaryTrajectory(Point(0, 0)).advance(-1.0)


class TestFreeTrajectory:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FreeTrajectory(0.0, 1.0, 30.0, rng)
        with pytest.raises(ValueError):
            FreeTrajectory(1.0, 1.0, 0.0, rng)
        with pytest.raises(ValueError):
            FreeTrajectory(1.0, 1.0, 30.0, rng, pause_max_s=-1.0)

    def test_stays_in_area(self):
        rng = np.random.default_rng(1)
        traj = FreeTrajectory(2.0, 2.0, 30.0, rng, pause_max_s=5.0)
        for _ in range(200):
            p = traj.advance(10.0)
            assert 0.0 <= p.x <= 2.0
            assert 0.0 <= p.y <= 2.0

    def test_speed_respected(self):
        """Displacement over dt never exceeds speed * dt."""
        rng = np.random.default_rng(2)
        traj = FreeTrajectory(10.0, 10.0, 30.0, rng, pause_max_s=0.0)
        speed_mi_per_s = 30.0 / 3600.0
        for _ in range(100):
            before = traj.position
            after = traj.advance(5.0)
            assert before.distance_to(after) <= speed_mi_per_s * 5.0 + 1e-9

    def test_eventually_moves(self):
        rng = np.random.default_rng(3)
        traj = FreeTrajectory(2.0, 2.0, 30.0, rng, pause_max_s=0.0)
        start = traj.position
        traj.advance(60.0)
        assert traj.position != start

    def test_zero_dt_noop(self):
        rng = np.random.default_rng(4)
        traj = FreeTrajectory(2.0, 2.0, 30.0, rng)
        p = traj.position
        assert traj.advance(0.0) == p

    def test_negative_dt_raises(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            FreeTrajectory(2.0, 2.0, 30.0, rng).advance(-1.0)

    def test_deterministic_with_seed(self):
        t1 = FreeTrajectory(2.0, 2.0, 30.0, np.random.default_rng(7))
        t2 = FreeTrajectory(2.0, 2.0, 30.0, np.random.default_rng(7))
        for _ in range(20):
            assert t1.advance(3.0) == t2.advance(3.0)

    def test_fixed_start(self):
        rng = np.random.default_rng(8)
        traj = FreeTrajectory(2.0, 2.0, 30.0, rng, start=Point(1, 1))
        assert traj.position == Point(1, 1)


class TestRoadTrajectory:
    def test_validation(self):
        network = make_network()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RoadTrajectory(network, 0.0, rng)
        with pytest.raises(ValueError):
            RoadTrajectory(network, 30.0, rng, pause_max_s=-1.0)

    def test_starts_on_node(self):
        network = make_network()
        rng = np.random.default_rng(1)
        traj = RoadTrajectory(network, 30.0, rng)
        start = traj.position
        assert any(
            network.node_position(n).distance_to(start) < 1e-9
            for n in network.node_ids()
        )

    def test_position_stays_on_network(self):
        """Every sampled position lies on (within snap epsilon of) an edge."""
        network = make_network(2)
        rng = np.random.default_rng(2)
        traj = RoadTrajectory(network, 45.0, rng, pause_max_s=0.0)
        for _ in range(100):
            p = traj.advance(7.0)
            snapped = network.snap(p)
            assert p.distance_to(snapped.point) < 1e-6

    def test_speed_capped_by_limits(self):
        """Network (path) displacement per dt is bounded by desired speed."""
        network = make_network(3)
        rng = np.random.default_rng(3)
        desired = 45.0
        traj = RoadTrajectory(network, desired, rng, pause_max_s=0.0)
        speed_mi_per_s = desired / 3600.0
        for _ in range(60):
            before = traj.position
            after = traj.advance(4.0)
            # Euclidean displacement <= along-path distance <= speed * dt.
            assert before.distance_to(after) <= speed_mi_per_s * 4.0 + 1e-9

    def test_eventually_travels(self):
        network = make_network(4)
        rng = np.random.default_rng(4)
        traj = RoadTrajectory(network, 30.0, rng, pause_max_s=0.0)
        start = traj.position
        traj.advance(600.0)
        assert traj.position.distance_to(start) > 0.0 or True  # moved at least once
        # After 10 minutes at 30 mph a host must have moved unless it
        # happened to return exactly -- check displacement happened at all
        # along the way.
        moved = False
        for _ in range(20):
            before = traj.position
            traj.advance(10.0)
            if traj.position != before:
                moved = True
                break
        assert moved

    def test_deterministic_with_seed(self):
        network = make_network(5)
        t1 = RoadTrajectory(network, 30.0, np.random.default_rng(9))
        t2 = RoadTrajectory(network, 30.0, np.random.default_rng(9))
        for _ in range(20):
            assert t1.advance(5.0) == t2.advance(5.0)

    def test_tiny_network_rejected(self):
        from repro.network.graph import SpatialNetwork

        net = SpatialNetwork()
        net.add_node(Point(0, 0))
        with pytest.raises(ValueError):
            RoadTrajectory(net, 30.0, np.random.default_rng(0))
