"""Continuous navigation: keeping "nearest 3 gas stations" fresh while
driving.

Contrasts four ways a navigation system can maintain a kNN answer for a
moving car (the strategies surveyed in the paper's Section 2):

1. naive multi-step -- ask the server at every position update;
2. Song-Roussopoulos bounded reuse -- over-fetch and re-rank locally
   inside the safe radius;
3. split points -- precompute where the (1)NN answer changes along the
   planned route;
4. the paper's peer sharing -- reuse results cached by cars driving the
   same road moments earlier.

Run with::

    python examples/continuous_navigation.py
"""

import numpy as np

from repro.continuous.multistep import bounded_multistep_knn, naive_multistep_knn
from repro.continuous.splitpoints import continuous_nearest_segment
from repro.continuous.trajectory import Trajectory
from repro.core import MobileHost, SennConfig, SpatialDatabaseServer
from repro.geometry.point import Point


def main() -> None:
    rng = np.random.default_rng(11)
    extent = 10.0
    stations = [
        (Point(float(x), float(y)), f"station-{i}")
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, extent, 50), rng.uniform(0, extent, 50))
        )
    ]
    route = Trajectory([Point(0.5, 0.5), Point(8.0, 3.0), Point(9.5, 9.5)])
    positions = route.sample(0.2)
    k = 3
    print(f"route: {route}, {len(positions)} position updates, k={k}\n")

    server = SpatialDatabaseServer.from_points(stations)
    naive = naive_multistep_knn(server, positions, k)
    print(f"naive multi-step:    {naive.server_queries:>4} server queries, "
          f"{naive.server_pages} pages")

    server = SpatialDatabaseServer.from_points(stations)
    bounded = bounded_multistep_knn(server, positions, k)
    print(f"bounded reuse [18]:  {bounded.server_queries:>4} server queries, "
          f"{bounded.server_pages} pages")

    splits = [
        interval
        for a, b in route.segments()
        for interval in continuous_nearest_segment(stations, a, b)
    ]
    print(f"split points [19]:   {0:>4} server queries after precomputing "
          f"{len(splits)} 1NN intervals")

    # Peer sharing: a convoy of cars ahead already cached their answers.
    server = SpatialDatabaseServer.from_points(stations)
    config = SennConfig(k=k, transmission_range=0.5, cache_capacity=10)
    convoy = []
    for i, position in enumerate(positions[::4]):
        scout = MobileHost(100 + i, position, config)
        scout.query_knn(peers=convoy, server=server)
        convoy.append(scout)
    scout_queries = server.queries_served

    car = MobileHost(1, positions[0], config)
    for position in positions:
        car.position = position
        car.query_knn(peers=convoy, server=server)
    own_queries = server.queries_served - scout_queries
    print(f"peer sharing (SENN): {own_queries:>4} server queries for the car "
          f"itself ({car.server_share() * 100:.0f}% of its updates)")

    print("\nanswers are exact in all four strategies; the difference is "
          "purely who pays for them.")


if __name__ == "__main__":
    main()
