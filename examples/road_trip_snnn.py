"""Network-distance queries along a drive (SNNN, Algorithm 2).

A vehicle drives across a generated road network and periodically asks
for its k nearest restaurants *by road distance* -- the realistic metric
when you cannot drive through buildings.  The example contrasts:

- the Euclidean kNN (what SENN alone returns);
- the network-distance kNN from SNNN (Algorithm 2), which keeps pulling
  Euclidean candidates until none can beat the k-th road distance;
- the INE oracle, verifying SNNN exactly.

Run with::

    python examples/road_trip_snnn.py
"""

import numpy as np

from repro.core import SennConfig, SpatialDatabaseServer, snnn_query
from repro.geometry.point import Point
from repro.network.dijkstra import network_distance
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.ier import incremental_network_expansion
from repro.sim.mobility import RoadTrajectory


def main() -> None:
    rng = np.random.default_rng(7)
    network = generate_road_network(
        RoadNetworkSpec(width=4.0, height=4.0, secondary_spacing=0.4, seed=7)
    )
    print(f"road network: {network}")

    # Thirty restaurants, all sitting on road segments.
    restaurants = []
    for i in range(30):
        raw = Point(float(rng.uniform(0, 4)), float(rng.uniform(0, 4)))
        restaurants.append((network.snap(raw).point, f"restaurant-{i}"))
    server = SpatialDatabaseServer.from_points(restaurants)
    poi_locations = [(network.snap(p), payload) for p, payload in restaurants]

    config = SennConfig(k=3, cache_capacity=10)
    car = RoadTrajectory(network, desired_speed_mph=45.0, rng=rng, pause_max_s=0.0)

    for leg in range(4):
        car.advance(240.0)  # drive four minutes between queries
        here = car.position
        print(f"\n-- query {leg + 1} at ({here.x:.2f}, {here.y:.2f}) --")

        result = snnn_query(here, 3, network, None, [], config, server=server)
        euclidean = sorted(
            (here.distance_to(p), payload) for p, payload in restaurants
        )[:3]
        print("   nearest by Euclidean distance:")
        for dist, payload in euclidean:
            print(f"     {payload:>14}  {dist:.3f} mi (straight line)")
        print("   nearest by road distance (SNNN):")
        for neighbor in result.neighbors:
            print(
                f"     {neighbor.payload:>14}  {neighbor.network_distance:.3f} mi "
                f"(vs {neighbor.euclidean_distance:.3f} straight)"
            )

        oracle = incremental_network_expansion(
            network, network.snap(here), poi_locations, 3
        )
        got = [round(n.network_distance, 6) for n in result.neighbors]
        want = [round(n.network_distance, 6) for n in oracle]
        assert got == want, "SNNN must match the INE oracle"
    print("\nall SNNN answers verified against the INE oracle")


if __name__ == "__main__":
    main()
