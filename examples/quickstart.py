"""Quickstart: sharing-based kNN queries between two mobile hosts.

Builds a tiny world of gas stations, lets a first vehicle query the
remote server (filling its cache), and shows how a second vehicle nearby
answers the same kind of query entirely from the first one's cache --
with the verification guarantees of Lemma 3.2.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import MobileHost, SennConfig, SpatialDatabaseServer
from repro.geometry.point import Point


def main() -> None:
    rng = np.random.default_rng(42)

    # Sixteen gas stations in a 2x2-mile downtown area (LA density).
    stations = [
        (Point(float(x), float(y)), f"station-{i}")
        for i, (x, y) in enumerate(rng.uniform(0.0, 2.0, size=(16, 2)))
    ]
    server = SpatialDatabaseServer.from_points(stations)

    config = SennConfig(
        k=3,  # nearest 3 stations
        transmission_range=0.124,  # 200 m, in miles
        cache_capacity=10,  # slots of cached NN objects
    )

    # Vehicle A queries first: the cache is cold, so the server answers.
    vehicle_a = MobileHost(host_id=1, position=Point(1.00, 1.00), config=config)
    result_a = vehicle_a.query_knn(peers=[], server=server)
    print(f"vehicle A resolved via: {result_a.tier.value}")
    for neighbor in result_a.neighbors[:3]:
        print(f"   {neighbor.payload}  at {neighbor.distance:.3f} mi")

    # Vehicle B pulls up 100 m away and asks the same question.  The
    # cached result of A verifies locally (Lemma 3.2): no server contact.
    vehicle_b = MobileHost(host_id=2, position=Point(1.06, 1.00), config=config)
    result_b = vehicle_b.query_knn(peers=[vehicle_a], server=server)
    print(f"vehicle B resolved via: {result_b.tier.value}")
    for neighbor in result_b.neighbors:
        print(f"   {neighbor.payload}  at {neighbor.distance:.3f} mi")

    print(f"server queries served in total: {server.queries_served}")
    assert server.queries_served == 1, "vehicle B should not have hit the server"

    # The certainty guarantee: B's answers are the true 3 nearest.
    truth = sorted(
        (vehicle_b.position.distance_to(p), payload) for p, payload in stations
    )[:3]
    got = [(round(n.distance, 9), n.payload) for n in result_b.neighbors]
    want = [(round(d, 9), payload) for d, payload in truth]
    # Exact compare is safe: both sides were rounded to 9 digits above.
    assert got == want, "peer-verified answers must equal the true kNN"  # repro: noqa(RPR001)
    print("verified: peer-shared answers equal the true 3 nearest stations")


if __name__ == "__main__":
    main()
