"""Mini parameter study: how range and density drive server offload.

A compressed version of the paper's Figures 9/15 sweeps, runnable in
about a minute: sweeps the wireless transmission range and the number of
requested neighbors k for the dense (LA) and sparse (Riverside)
configurations, printing the server share for each combination.

Run with::

    python examples/server_offload_study.py [--fast]
"""

import argparse
import dataclasses

from repro.experiments.runner import run_one
from repro.sim.config import los_angeles_2x2, riverside_2x2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="shorter simulated horizon"
    )
    args = parser.parse_args()
    duration = 300.0 if args.fast else 900.0

    regions = {"Los Angeles": los_angeles_2x2, "Riverside": riverside_2x2}
    ranges_m = [50.0, 125.0, 200.0]
    ks = [1, 3, 6]

    print(f"server share (%% of queries the server must process), "
          f"{duration / 60:.0f} simulated minutes per cell\n")
    header = f"{'region':>12} {'k':>3} " + " ".join(
        f"{r:>7.0f}m" for r in ranges_m
    )
    print(header)
    for region, factory in regions.items():
        for k in ks:
            row = [f"{region:>12} {k:>3}"]
            for tx in ranges_m:
                params = dataclasses.replace(
                    factory(), tx_range_m=tx, lambda_knn=k
                )
                metrics = run_one(params, t_execution_s=duration, seed=1)
                row.append(f"{100.0 * metrics.server_share:>7.1f}%")
            print(" ".join(row))
    print(
        "\nreadings: server share falls with wider radios and rises with k;"
        "\nthe dense region offloads far more than the sparse one."
    )


if __name__ == "__main__":
    main()
