"""The paper's motivating scenario at city scale.

Runs the Los Angeles County 2x2-mile configuration (Table 3): 463
vehicles driving a generated road network, issuing "find my k nearest
gas stations" queries at 23 per minute, sharing cached results over
200 m ad-hoc links.  Prints the SQRR breakdown (how many queries each
tier resolved) and the server's page-access statistics -- the paper's
headline claim is that in such a dense area the remote server can be
relieved of most of the query load.

Run with::

    python examples/gas_station_scenario.py [--minutes 20] [--seed 0]
"""

import argparse

from repro.sim.config import SimulationConfig, los_angeles_2x2
from repro.sim.simulation import Simulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=20.0,
                        help="simulated minutes to run (default 20)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = SimulationConfig(
        parameters=los_angeles_2x2(),
        t_execution_s=args.minutes * 60.0,
        seed=args.seed,
    )
    sim = Simulation(config)
    print(sim)
    print(f"road network: {sim.network}")
    print(f"simulating {args.minutes:g} minutes of Los Angeles traffic...")

    metrics = sim.run()
    shares = metrics.percentages()
    print()
    print(f"queries recorded (after warm-up): {metrics.total_queries}")
    print(f"  answered by a single peer's cache: {shares['single_peer']:.1f}%")
    print(f"  answered by merging multiple peers: {shares['multi_peer']:.1f}%")
    print(f"  forwarded to the remote server:     {shares['server']:.1f}%")
    print()
    print(f"mean R*-tree pages per server query: {metrics.mean_server_pages():.1f}")
    offload = 100.0 - shares["server"]
    print(f"=> the P2P sharing scheme absorbed {offload:.1f}% of the query load")


if __name__ == "__main__":
    main()
