"""Archiving and replaying a simulation world.

Reproducibility workflow: generate a world (road network + POIs), write
it to disk as JSON, reload it elsewhere, and verify the reloaded world
answers queries identically.  Also exports an experiment figure to JSON
and CSV for external plotting.

Run with::

    python examples/world_archive.py [--out-dir /tmp/repro-archive]
"""

import argparse
import pathlib

import numpy as np

from repro.core import SpatialDatabaseServer
from repro.experiments import figures
from repro.experiments.runner import Quality, format_figure
from repro.geometry.point import Point
from repro.io import (
    load_network,
    load_pois,
    save_figure,
    save_network,
    save_pois,
    write_figure_csv,
)
from repro.network.dijkstra import network_distance
from repro.network.generator import RoadNetworkSpec, generate_road_network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="/tmp/repro-archive")
    args = parser.parse_args()
    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)

    # --- generate and archive a world --------------------------------
    network = generate_road_network(
        RoadNetworkSpec(width=3.0, height=3.0, secondary_spacing=0.4, seed=21)
    )
    rng = np.random.default_rng(21)
    pois = [
        (network.snap(Point(float(x), float(y))).point, f"poi-{i}")
        for i, (x, y) in enumerate(rng.uniform(0, 3, size=(25, 2)))
    ]
    save_network(network, out / "network.json")
    save_pois(pois, out / "pois.json")
    print(f"archived {network} and {len(pois)} POIs to {out}")

    # --- reload and verify equivalence --------------------------------
    network2 = load_network(out / "network.json")
    pois2 = load_pois(out / "pois.json")
    assert pois2 == pois

    q = Point(1.5, 1.5)
    server_a = SpatialDatabaseServer.from_points(pois)
    server_b = SpatialDatabaseServer.from_points(pois2)
    knn_a = [(r.payload, round(r.distance, 12)) for r in server_a.knn_query(q, 5)]
    knn_b = [(r.payload, round(r.distance, 12)) for r in server_b.knn_query(q, 5)]
    # Exact compare is safe: both sides were rounded to 12 digits above.
    assert knn_a == knn_b  # repro: noqa(RPR001)
    print("reloaded world answers kNN queries identically")

    loc_a = network.snap(q)
    loc_b = network2.snap(q)
    target_a = network.snap(pois[0][0])
    target_b = network2.snap(pois2[0][0])
    nd_a = network_distance(network, loc_a, target_a)
    nd_b = network_distance(network2, loc_b, target_b)
    assert abs(nd_a - nd_b) < 1e-9
    print(f"network distances match after reload ({nd_a:.4f} mi)")

    # --- archive an experiment figure ---------------------------------
    result = figures.fig17(Quality.FAST, seed=21)
    save_figure(result, out / "fig17.json")
    write_figure_csv(result, out / "fig17.csv")
    print(f"\n{format_figure(result)}")
    print(f"\nfigure archived as {out / 'fig17.json'} and {out / 'fig17.csv'}")


if __name__ == "__main__":
    main()
