"""Continuous nearest-neighbor queries for moving query points (k-NNMP).

Section 2 of the paper surveys the moving-query-point techniques its
sharing scheme competes with; this package implements them as runnable
baselines:

- :mod:`repro.continuous.trajectory` -- polyline trajectories with exact
  arc-length parameterization;
- :mod:`repro.continuous.multistep` -- the naive multi-step search
  (re-query the server at every sampled position) and the bounded
  reuse of Song & Roussopoulos [18]: over-fetch ``m > k`` neighbors and
  answer locally while the moved distance stays within the safe radius
  ``(d_m - d_k) / 2``;
- :mod:`repro.continuous.splitpoints` -- Tao, Papadias & Shen's [19]
  split-point computation: the exact piecewise-constant 1NN answer along
  a line segment, found by walking bisector crossings.
"""

from repro.continuous.multistep import (
    MultistepResult,
    bounded_multistep_knn,
    naive_multistep_knn,
)
from repro.continuous.splitpoints import SplitInterval, continuous_nearest_segment
from repro.continuous.trajectory import Trajectory

__all__ = [
    "MultistepResult",
    "SplitInterval",
    "Trajectory",
    "bounded_multistep_knn",
    "continuous_nearest_segment",
    "naive_multistep_knn",
]
