"""Polyline trajectories with exact arc-length parameterization.

Continuous-query algorithms need to sample and parameterize the path of
a moving object.  :class:`Trajectory` wraps an ordered list of waypoints
and answers "where am I after driving ``s`` units?" exactly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.point import Point

__all__ = ["Trajectory"]


class Trajectory:
    """An immutable polyline through two or more waypoints."""

    def __init__(self, waypoints: Sequence[Point]) -> None:
        if len(waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        self._waypoints: Tuple[Point, ...] = tuple(waypoints)
        self._cumulative: List[float] = [0.0]
        for a, b in zip(self._waypoints, self._waypoints[1:]):
            step = a.distance_to(b)
            # Exactly coincident waypoints break direction vectors; any
            # non-zero step, however small, keeps the polyline walkable.
            if step == 0.0:  # repro: noqa(RPR001)
                raise ValueError("consecutive duplicate waypoints are not allowed")
            self._cumulative.append(self._cumulative[-1] + step)

    @property
    def waypoints(self) -> Tuple[Point, ...]:
        return self._waypoints

    @property
    def length(self) -> float:
        """Total arc length."""
        return self._cumulative[-1]

    def point_at(self, distance: float) -> Point:
        """Position after driving ``distance`` from the start (clamped)."""
        if distance <= 0.0:
            return self._waypoints[0]
        if distance >= self.length:
            return self._waypoints[-1]
        # Binary search for the containing leg.
        lo, hi = 0, len(self._cumulative) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] <= distance:
                lo = mid
            else:
                hi = mid
        leg_start = self._waypoints[lo]
        leg_end = self._waypoints[lo + 1]
        into_leg = distance - self._cumulative[lo]
        return leg_start.towards(leg_end, into_leg)

    def sample(self, interval: float) -> List[Point]:
        """Points every ``interval`` of arc length, endpoints included."""
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        distances = []
        s = 0.0
        while s < self.length:
            distances.append(s)
            s += interval
        distances.append(self.length)
        return [self.point_at(d) for d in distances]

    def segments(self) -> List[Tuple[Point, Point]]:
        """The polyline legs as ``(start, end)`` pairs."""
        return list(zip(self._waypoints, self._waypoints[1:]))

    def __repr__(self) -> str:
        return (
            f"Trajectory({len(self._waypoints)} waypoints, "
            f"length={self.length:.4g})"
        )
