"""Split points: the exact continuous 1NN answer along a segment.

Tao, Papadias & Shen [19] observed that when the trajectory is a known
line segment, the nearest-neighbor answer is piecewise constant: the
segment splits at the points where the moving query crosses a bisector
between the current NN and a competitor.  Pre-computing those *split
points* answers the continuous query with no further searches.

This module implements the 1NN case exactly by walking the segment:

1. the answer at the segment start is the plain nearest neighbor;
2. while parameter ``t < 1``: among all other POIs find the smallest
   crossing ``t* > t`` where some POI overtakes the current answer --
   the squared-distance difference along the segment is *linear* in
   ``t``, so each candidate contributes at most one crossing;
3. record the interval, advance to ``t*``, and continue with the new
   nearest POI (evaluated just past the crossing to resolve ties).

The result is validated in the tests against a dense-sampling oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.geometry.point import Point

__all__ = ["SplitInterval", "continuous_nearest_segment"]

_EPSILON = 1e-9


@dataclass(frozen=True)
class SplitInterval:
    """One piece of the piecewise-constant answer: ``[start_t, end_t]``."""

    start_t: float
    end_t: float
    point: Point
    payload: Any

    def midpoint_t(self) -> float:
        return (self.start_t + self.end_t) / 2.0


def continuous_nearest_segment(
    pois: Sequence[Tuple[Point, Any]],
    start: Point,
    end: Point,
) -> List[SplitInterval]:
    """Exact continuous 1NN along the segment ``start -> end``.

    Returns the ordered split intervals covering ``t in [0, 1]``.  POIs
    may be anywhere in the plane; ties on bisectors are resolved towards
    the POI that wins immediately after the crossing.
    """
    if not pois:
        raise ValueError("at least one POI is required")
    if start == end:
        index = _nearest_index(pois, start)
        point, payload = pois[index]
        return [SplitInterval(0.0, 1.0, point, payload)]

    direction = Point(end.x - start.x, end.y - start.y)
    intervals: List[SplitInterval] = []
    t = 0.0
    current = _nearest_index(pois, _interpolate(start, direction, _EPSILON))
    guard = 0
    max_iterations = max(16, 4 * len(pois) * len(pois))
    while t < 1.0:
        guard += 1
        if guard > max_iterations:
            raise RuntimeError("split-point walk failed to converge")
        t_next = _next_crossing(pois, current, start, direction, t)
        point, payload = pois[current]
        intervals.append(SplitInterval(t, min(t_next, 1.0), point, payload))
        if t_next >= 1.0:
            break
        t = t_next
        probe = _interpolate(start, direction, min(1.0, t + _EPSILON))
        current = _nearest_index(pois, probe)
    return intervals


def _interpolate(start: Point, direction: Point, t: float) -> Point:
    return Point(start.x + t * direction.x, start.y + t * direction.y)


def _nearest_index(pois: Sequence[Tuple[Point, Any]], position: Point) -> int:
    return min(
        range(len(pois)), key=lambda i: position.squared_distance_to(pois[i][0])
    )


def _next_crossing(
    pois: Sequence[Tuple[Point, Any]],
    current: int,
    start: Point,
    direction: Point,
    t: float,
) -> float:
    """Smallest ``t* > t`` where another POI becomes strictly closer.

    Writing ``x(t) = start + t * direction``, the difference
    ``|x - c|^2 - |x - p|^2`` is linear in ``t`` (the quadratic terms
    cancel), so each competitor crosses at most once.
    """
    c, _ = pois[current]
    best = float("inf")
    for i, (p, _) in enumerate(pois):
        if i == current:
            continue
        # f(t) = |x - c|^2 - |x - p|^2 = A + B * t; competitor wins when
        # f > 0.
        a_term = (
            (start.x - c.x) ** 2
            + (start.y - c.y) ** 2
            - (start.x - p.x) ** 2
            - (start.y - p.y) ** 2
        )
        b_term = 2.0 * (direction.x * (p.x - c.x) + direction.y * (p.y - c.y))
        if b_term <= _EPSILON:
            # The competitor never improves relative to the current NN in
            # the direction of travel (or stays parallel).
            continue
        crossing = -a_term / b_term
        if t + _EPSILON < crossing < best:
            best = crossing
    return best if best <= 1.0 else 1.0
