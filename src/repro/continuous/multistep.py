"""Multi-step kNN search for a moving query point.

Two strategies from the paper's related work (Section 2):

- :func:`naive_multistep_knn` -- "continuously issue kNN queries along
  the route of a moving object": one server query per sampled position.
  The paper calls this out as inefficient; it is the baseline.
- :func:`bounded_multistep_knn` -- Song & Roussopoulos [18]: fetch
  ``m > k`` neighbors at an anchor position and keep answering locally
  while the query point stays within the *safe radius*
  ``(d_m - d_k) / 2`` of the anchor, where ``d_i`` is the distance of
  the i-th fetched neighbor from the anchor.  Inside that radius every
  un-fetched POI is provably farther than at least ``k`` fetched ones,
  so re-ranking the fetched set yields the exact kNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.core.backend import SpatialBackend

__all__ = ["MultistepResult", "naive_multistep_knn", "bounded_multistep_knn"]


@dataclass
class MultistepResult:
    """Per-position answers plus the server cost of producing them."""

    per_point: List[List[NeighborResult]]
    server_queries: int
    server_pages: int

    @property
    def positions(self) -> int:
        return len(self.per_point)


def naive_multistep_knn(
    server: SpatialBackend,
    positions: Sequence[Point],
    k: int,
) -> MultistepResult:
    """One full server kNN query per position."""
    if k < 1:
        raise ValueError("k must be at least 1")
    answers: List[List[NeighborResult]] = []
    pages = 0
    for position in positions:
        answer = server.knn_query_detailed(position, k)
        answers.append(answer.neighbors)
        pages += answer.pages.total
    return MultistepResult(answers, server_queries=len(positions), server_pages=pages)


def bounded_multistep_knn(
    server: SpatialBackend,
    positions: Sequence[Point],
    k: int,
    fetch_count: Optional[int] = None,
) -> MultistepResult:
    """Song-Roussopoulos reuse: re-fetch only outside the safe radius.

    ``fetch_count`` is the over-fetch ``m`` (defaults to ``2k``, at
    least ``k + 1``).  Correctness: between refetches, every reported
    set is re-ranked from the anchor's ``m`` candidates, valid because
    the moved distance never exceeds ``(d_m - d_k) / 2``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    m = max(k + 1, 2 * k) if fetch_count is None else fetch_count
    if m <= k:
        raise ValueError("fetch_count must exceed k")

    answers: List[List[NeighborResult]] = []
    anchor: Optional[Point] = None
    fetched: List[NeighborResult] = []
    safe_radius = 0.0
    server_queries = 0
    pages = 0

    for position in positions:
        need_fetch = anchor is None or position.distance_to(anchor) > safe_radius
        if need_fetch:
            answer = server.knn_query_detailed(position, m)
            fetched = answer.neighbors
            pages += answer.pages.total
            server_queries += 1
            anchor = position
            if len(fetched) == m:
                safe_radius = (fetched[-1].distance - fetched[k - 1].distance) / 2.0
            else:
                # Fewer than m POIs exist: the fetched set is the whole
                # database and stays valid everywhere.
                safe_radius = float("inf")
        answers.append(_rerank(fetched, position, k))
    return MultistepResult(answers, server_queries=server_queries, server_pages=pages)


def _rerank(
    candidates: Sequence[NeighborResult], position: Point, k: int
) -> List[NeighborResult]:
    """Exact kNN at ``position`` among the fetched candidates."""
    rescored = sorted(
        (
            NeighborResult(c.point, c.payload, position.distance_to(c.point))
            for c in candidates
        ),
        key=lambda r: r.distance,
    )
    return rescored[:k]
