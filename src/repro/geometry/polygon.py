"""Simple polygons and circle polygonization.

The paper's ``kNN_multiple`` implementation (Section 3.2.2 / 4.1)
approximates each peer's certain circle with a polygon and merges the
polygons into a certain region via the MapOverlay algorithm.  We provide
the polygon substrate for that path:

- :class:`Polygon` -- a simple polygon with area, orientation,
  point-containment (boundary counts as inside) and edge iteration;
- :func:`Polygon.inscribed_in_circle` -- the *inscribed* regular polygon of
  a circle.  Inscribed (not circumscribed) polygons are what a sound
  approximation of a certain region needs: they under-approximate the
  region, so a candidate certified against them is still a true NN;
- :func:`Polygon.circumscribed_around_circle` -- the circumscribed regular
  polygon, used to *over*-approximate the query disk being verified (again
  the conservative direction);
- :func:`segment_intersections` -- the segment-overlay kernel used by the
  polygon coverage test in :mod:`repro.geometry.coverage`.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.circle import Circle
from repro.geometry.point import Point

__all__ = ["Polygon", "segment_intersections", "Segment"]

Segment = Tuple[Point, Point]


def _cross(o: Point, a: Point, b: Point) -> float:
    """Cross product of vectors ``o->a`` and ``o->b``."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def _on_segment(p: Point, a: Point, b: Point, tolerance: float = 1e-12) -> bool:
    """True when ``p`` lies on the closed segment ``a-b`` (collinear assumed)."""
    return (
        min(a.x, b.x) - tolerance <= p.x <= max(a.x, b.x) + tolerance
        and min(a.y, b.y) - tolerance <= p.y <= max(a.y, b.y) + tolerance
    )


def segment_intersections(
    seg_a: Segment, seg_b: Segment, tolerance: float = 1e-12
) -> List[Point]:
    """Intersection points of two closed segments (0, 1, or 2 for overlap).

    Collinear overlapping segments return the two endpoints of the shared
    sub-segment, which is what an overlay needs to split edges at.
    """
    p1, p2 = seg_a
    p3, p4 = seg_b
    d1x, d1y = p2.x - p1.x, p2.y - p1.y
    d2x, d2y = p4.x - p3.x, p4.y - p3.y
    denom = d1x * d2y - d1y * d2x
    if abs(denom) > tolerance:
        # Proper (non-parallel) case: solve for parameters t, u.
        t = ((p3.x - p1.x) * d2y - (p3.y - p1.y) * d2x) / denom
        u = ((p3.x - p1.x) * d1y - (p3.y - p1.y) * d1x) / denom
        if -tolerance <= t <= 1.0 + tolerance and -tolerance <= u <= 1.0 + tolerance:
            return [Point(p1.x + t * d1x, p1.y + t * d1y)]
        return []
    # Parallel: only collinear segments can intersect.
    if abs(_cross(p1, p2, p3)) > tolerance:
        return []
    # Project onto the dominant axis to find the shared range.
    points = []
    for candidate in (p3, p4):
        if _on_segment(candidate, p1, p2, tolerance):
            points.append(candidate)
    for candidate in (p1, p2):
        if _on_segment(candidate, p3, p4, tolerance):
            points.append(candidate)
    # Deduplicate while keeping order.
    unique: List[Point] = []
    for point in points:
        if not any(
            abs(point.x - seen.x) <= tolerance and abs(point.y - seen.y) <= tolerance
            for seen in unique
        ):
            unique.append(point)
    return unique[:2]


class Polygon:
    """A simple polygon defined by its vertices in order.

    Vertices are stored counter-clockwise regardless of the input winding.
    The polygon is treated as the *closed* region (boundary included) --
    coverage tests need closed-region semantics.
    """

    __slots__ = ("_vertices", "_bbox")

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        signed = _signed_area(vertices)
        if signed == 0.0:
            raise ValueError("degenerate polygon with zero area")
        ordered = list(vertices) if signed > 0.0 else list(reversed(vertices))
        self._vertices: Tuple[Point, ...] = tuple(ordered)
        self._bbox = BoundingBox.from_points(self._vertices)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def inscribed_in_circle(cls, circle: Circle, sides: int = 32, phase: float = 0.0) -> "Polygon":
        """Regular ``sides``-gon whose vertices lie on ``circle``.

        The inscribed polygon is a subset of the disk, so using it as a
        certain-region piece keeps multi-peer verification sound.
        """
        if sides < 3:
            raise ValueError("sides must be >= 3")
        if circle.radius <= 0.0:
            raise ValueError("cannot polygonize a zero-radius circle")
        step = 2.0 * math.pi / sides
        return cls([circle.point_at_angle(phase + i * step) for i in range(sides)])

    @classmethod
    def circumscribed_around_circle(
        cls, circle: Circle, sides: int = 32, phase: float = 0.0
    ) -> "Polygon":
        """Regular ``sides``-gon tangent to ``circle`` (a superset of the disk).

        Used to over-approximate the query disk when testing it against an
        under-approximated certain region: if the superset is covered, the
        disk certainly is.
        """
        if sides < 3:
            raise ValueError("sides must be >= 3")
        if circle.radius <= 0.0:
            raise ValueError("cannot polygonize a zero-radius circle")
        scaled = Circle(circle.center, circle.radius / math.cos(math.pi / sides))
        return cls.inscribed_in_circle(scaled, sides=sides, phase=phase)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Point, ...]:
        return self._vertices

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def area(self) -> float:
        return _signed_area(self._vertices)

    @property
    def perimeter(self) -> float:
        return sum(a.distance_to(b) for a, b in self.edges())

    def edges(self) -> Iterator[Segment]:
        """Yield the polygon's edges as ``(start, end)`` pairs, CCW order."""
        count = len(self._vertices)
        for i in range(count):
            yield (self._vertices[i], self._vertices[(i + 1) % count])

    def is_convex(self) -> bool:
        """True for convex polygons (collinear runs allowed)."""
        count = len(self._vertices)
        for i in range(count):
            o = self._vertices[i]
            a = self._vertices[(i + 1) % count]
            b = self._vertices[(i + 2) % count]
            if _cross(o, a, b) < 0.0:
                return False
        return True

    # ------------------------------------------------------------------
    # containment
    # ------------------------------------------------------------------
    def contains_point(self, point: Point, tolerance: float = 1e-12) -> bool:
        """Closed containment test (boundary points are inside).

        Uses the winding-free crossing-number algorithm with an explicit
        on-boundary check first so that boundary points are never subject
        to ray-casting edge cases.
        """
        if not self._bbox.contains_point(point):
            # Fast reject, with a tolerance-sized grace band.
            expanded = BoundingBox(
                self._bbox.min_x - tolerance,
                self._bbox.min_y - tolerance,
                self._bbox.max_x + tolerance,
                self._bbox.max_y + tolerance,
            )
            if not expanded.contains_point(point):
                return False
        for a, b in self.edges():
            if abs(_cross(a, b, point)) <= tolerance * max(
                1.0, a.distance_to(b)
            ) and _on_segment(point, a, b, tolerance):
                return True
        inside = False
        x, y = point.x, point.y
        for a, b in self.edges():
            # Half-open rule on y avoids double counting at vertices.
            if (a.y > y) != (b.y > y):
                x_cross = a.x + (y - a.y) * (b.x - a.x) / (b.y - a.y)
                if x < x_cross:
                    inside = not inside
        return inside

    def contains_polygon(self, other: "Polygon", tolerance: float = 1e-12) -> bool:
        """True when every vertex of ``other`` is inside and no edges cross.

        For convex ``self`` vertex containment alone suffices; the edge
        check makes the test correct for non-convex polygons too.
        """
        if not all(self.contains_point(v, tolerance) for v in other.vertices):
            return False
        # For non-convex ``self`` an edge of ``other`` may dip outside even
        # with both endpoints inside.  Split each edge of ``other`` at its
        # crossings with our boundary and require every piece midpoint to be
        # inside: containment of a segment changes only at such crossings.
        for a, b in other.edges():
            cut_params = [0.0, 1.0]
            for edge in self.edges():
                for crossing in segment_intersections((a, b), edge, tolerance):
                    length_sq = a.squared_distance_to(b)
                    if length_sq > 0.0:
                        t = (
                            (crossing.x - a.x) * (b.x - a.x)
                            + (crossing.y - a.y) * (b.y - a.y)
                        ) / length_sq
                        cut_params.append(min(1.0, max(0.0, t)))
            cut_params.sort()
            for t0, t1 in zip(cut_params, cut_params[1:]):
                if t1 - t0 <= tolerance:
                    continue
                t_mid = (t0 + t1) / 2.0
                midpoint = Point(a.x + t_mid * (b.x - a.x), a.y + t_mid * (b.y - a.y))
                if not self.contains_point(midpoint, tolerance):
                    return False
        return True

    def clip_half_plane(
        self, a: float, b: float, c: float, tolerance: float = 1e-12
    ) -> Optional["Polygon"]:
        """Clip against the half-plane ``a*x + b*y <= c`` (Sutherland-Hodgman).

        Returns the clipped polygon, or ``None`` when nothing (of
        positive area) remains.  Clipping a convex polygon stays convex,
        which is what the Voronoi-cell construction needs.
        """
        if a == 0.0 and b == 0.0:
            raise ValueError("degenerate half-plane: a and b cannot both be 0")
        kept: List[Point] = []
        vertices = self._vertices
        count = len(vertices)
        for i in range(count):
            current = vertices[i]
            following = vertices[(i + 1) % count]
            current_in = a * current.x + b * current.y <= c + tolerance
            following_in = a * following.x + b * following.y <= c + tolerance
            if current_in:
                kept.append(current)
            if current_in != following_in:
                # Edge crosses the boundary line: add the intersection.
                denom = a * (following.x - current.x) + b * (following.y - current.y)
                if abs(denom) > tolerance:
                    t = (c - a * current.x - b * current.y) / denom
                    t = min(1.0, max(0.0, t))
                    kept.append(
                        Point(
                            current.x + t * (following.x - current.x),
                            current.y + t * (following.y - current.y),
                        )
                    )
        # Drop consecutive duplicates introduced by boundary touching.
        deduped: List[Point] = []
        for vertex in kept:
            if not deduped or vertex.distance_to(deduped[-1]) > tolerance:
                deduped.append(vertex)
        if len(deduped) >= 2 and deduped[0].distance_to(deduped[-1]) <= tolerance:
            deduped.pop()
        if len(deduped) < 3:
            return None
        if abs(_signed_area(deduped)) <= tolerance:
            return None
        return Polygon(deduped)

    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        acc_x = 0.0
        acc_y = 0.0
        acc_area = 0.0
        for a, b in self.edges():
            cross = a.x * b.y - b.x * a.y
            acc_x += (a.x + b.x) * cross
            acc_y += (a.y + b.y) * cross
            acc_area += cross
        acc_area *= 0.5
        return Point(acc_x / (6.0 * acc_area), acc_y / (6.0 * acc_area))

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.4g})"


def _signed_area(vertices: Sequence[Point]) -> float:
    """Shoelace signed area; positive for counter-clockwise winding."""
    total = 0.0
    count = len(vertices)
    for i in range(count):
        a = vertices[i]
        b = vertices[(i + 1) % count]
        total += a.x * b.y - b.x * a.y
    return total / 2.0
