"""Angular interval algebra on a circle boundary.

The exact multi-peer coverage test (:mod:`repro.geometry.coverage`) needs
to decide whether the *entire* boundary of the query disk is covered by a
union of peer disks.  Each peer disk covers a contiguous angular arc of the
query circle; the boundary is fully covered iff the union of those arcs is
the full circle.  :class:`AngularIntervalSet` implements that union.

Angles are radians.  Intervals are closed and may wrap around ``pi``; they
are normalized into ``[-pi, pi)`` internally.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["AngularIntervalSet", "normalize_angle"]

_TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Map ``theta`` into ``[-pi, pi)``."""
    theta = math.fmod(theta + math.pi, _TWO_PI)
    if theta < 0.0:
        theta += _TWO_PI
    return theta - math.pi


class AngularIntervalSet:
    """A set of closed angular intervals on the unit circle.

    The set supports adding arcs (possibly wrap-around), merging them, and
    asking whether the whole circle is covered or which gaps remain.

    A tiny ``tolerance`` (radians) absorbs floating point noise when two
    arcs abut: arcs whose endpoints are within ``tolerance`` are considered
    touching.
    """

    def __init__(self, tolerance: float = 1e-12) -> None:
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        self._tolerance = tolerance
        self._full = False
        # Non-wrapping intervals in [-pi, pi], unsorted until needed.
        self._intervals: List[Tuple[float, float]] = []

    @property
    def tolerance(self) -> float:
        return self._tolerance

    def add(self, start: float, end: float) -> None:
        """Add the closed arc swept counter-clockwise from ``start`` to ``end``.

        If the normalized ``end`` lies counter-clockwise before ``start``
        the arc wraps through ``pi`` and is stored as two pieces.  Adding an
        arc whose sweep is >= 2*pi marks the whole circle covered.
        """
        if self._full:
            return
        sweep = end - start
        if sweep >= _TWO_PI - self._tolerance:
            self._full = True
            self._intervals.clear()
            return
        if sweep <= 0.0:
            # Zero or negative sweep: treat as the single point ``start``
            # (points contribute nothing to coverage of an open gap).
            return
        lo = normalize_angle(start)
        hi = lo + sweep
        if hi <= math.pi:
            self._intervals.append((lo, hi))
        else:
            # Wraps past pi: split into [lo, pi] and [-pi, hi - 2*pi].
            self._intervals.append((lo, math.pi))
            self._intervals.append((-math.pi, hi - _TWO_PI))

    def add_centered(self, center: float, half_width: float) -> None:
        """Add the arc ``[center - half_width, center + half_width]``."""
        self.add(center - half_width, center + half_width)

    def merged(self) -> List[Tuple[float, float]]:
        """Return the merged, sorted intervals (in ``[-pi, pi]``)."""
        if self._full:
            return [(-math.pi, math.pi)]
        if not self._intervals:
            return []
        ordered = sorted(self._intervals)
        merged: List[Tuple[float, float]] = [ordered[0]]
        for lo, hi in ordered[1:]:
            last_lo, last_hi = merged[-1]
            if lo <= last_hi + self._tolerance:
                merged[-1] = (last_lo, max(last_hi, hi))
            else:
                merged.append((lo, hi))
        return merged

    def covers_full_circle(self) -> bool:
        """True when the union of arcs covers the entire circle."""
        if self._full:
            return True
        merged = self.merged()
        if not merged:
            return False
        # The merged pieces must form a single run from -pi to pi; the two
        # boundary angles are the same physical point on the circle.
        if len(merged) != 1:
            return False
        lo, hi = merged[0]
        return lo <= -math.pi + self._tolerance and hi >= math.pi - self._tolerance

    def gaps(self) -> List[Tuple[float, float]]:
        """Return the uncovered arcs, as ``(start, end)`` pairs in order.

        A wrap-around gap is reported as a single pair whose ``end`` is less
        than ``start`` plus ``2*pi`` -- i.e. ``(hi_last, lo_first + 2*pi)``
        mapped back into a continuous sweep.  Callers mostly need gap
        midpoints; :meth:`gap_midpoints` does that mapping for them.
        """
        if self._full:
            return []
        merged = self.merged()
        if not merged:
            return [(-math.pi, math.pi)]
        gaps: List[Tuple[float, float]] = []
        for (_, hi), (next_lo, _) in zip(merged, merged[1:]):
            if next_lo - hi > self._tolerance:
                gaps.append((hi, next_lo))
        first_lo = merged[0][0]
        last_hi = merged[-1][1]
        wrap_gap = (first_lo + math.pi) + (math.pi - last_hi)
        if wrap_gap > self._tolerance:
            gaps.append((last_hi, first_lo + _TWO_PI))
        return gaps

    def gap_midpoints(self) -> List[float]:
        """Midpoint angle of every uncovered arc, normalized to [-pi, pi)."""
        return [normalize_angle((lo + hi) / 2.0) for lo, hi in self.gaps()]

    def covered_fraction(self) -> float:
        """Fraction of the circle covered, in ``[0, 1]``."""
        if self._full:
            return 1.0
        total = sum(hi - lo for lo, hi in self.merged())
        return min(total / _TWO_PI, 1.0)

    def covers_angle(self, theta: float) -> bool:
        """True when the angle ``theta`` lies inside some covered arc."""
        if self._full:
            return True
        theta = normalize_angle(theta)
        for lo, hi in self.merged():
            if lo - self._tolerance <= theta <= hi + self._tolerance:
                return True
        # ``theta`` close to -pi may be covered by an arc ending at pi.
        wrapped = theta + _TWO_PI
        for lo, hi in self.merged():
            if lo - self._tolerance <= wrapped <= hi + self._tolerance:
                return True
        return False

    @classmethod
    def from_arcs(
        cls, arcs: Iterable[Sequence[float]], tolerance: float = 1e-12
    ) -> "AngularIntervalSet":
        """Build a set from an iterable of ``(start, end)`` arcs."""
        interval_set = cls(tolerance=tolerance)
        for start, end in arcs:
            interval_set.add(start, end)
        return interval_set
