"""Circles and circle-circle relationships.

The paper's verification machinery is built almost entirely out of disks:

- a peer ``P`` with ``k`` cached nearest neighbors contributes a *certain
  circle* centered at its query location with radius ``Dist(P, n_k)``
  (every POI inside that circle is known to the peer);
- verifying a candidate POI for the querier ``Q`` asks whether the disk
  centered at ``Q`` through the candidate is covered by the union of
  certain circles (Lemma 3.8).

This module provides the disk arithmetic those tests need, including the
two geometric kernels of the exact coverage test: boundary-arc coverage
(what angular arc of circle A is inside disk B) and boundary intersection
points of two circles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

__all__ = ["Circle", "ArcCoverage"]


@dataclass(frozen=True, slots=True)
class ArcCoverage:
    """The arc of a circle's boundary covered by another disk.

    ``full`` means the entire boundary is covered; otherwise the covered
    arc is centered at angle ``center`` (radians, measured at the circle's
    center) with angular half-width ``half_width``.  ``empty`` means no
    boundary point is covered.
    """

    full: bool
    empty: bool
    center: float = 0.0
    half_width: float = 0.0


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle (and its closed disk) with center ``center`` and ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    # ------------------------------------------------------------------
    # containment
    # ------------------------------------------------------------------
    def contains_point(self, point: Point, tolerance: float = 0.0) -> bool:
        """True when ``point`` is in the closed disk (within ``tolerance``)."""
        return self.center.distance_to(point) <= self.radius + tolerance

    def strictly_contains_point(self, point: Point, tolerance: float = 0.0) -> bool:
        """True when ``point`` is in the open disk by at least ``tolerance``."""
        return self.center.distance_to(point) < self.radius - tolerance

    def contains_circle(self, other: "Circle", tolerance: float = 0.0) -> bool:
        """True when ``other``'s disk lies entirely inside this disk.

        This is exactly the geometric content of Lemma 3.2: the disk around
        ``Q`` through candidate ``n_i`` is inside the peer's certain circle
        iff ``Dist(Q, n_i) + Dist(Q, P) <= Dist(P, n_k)``.
        """
        separation = self.center.distance_to(other.center)
        return separation + other.radius <= self.radius + tolerance

    def intersects_circle(self, other: "Circle") -> bool:
        """True when the two closed disks share at least one point."""
        return self.center.distance_to(other.center) <= self.radius + other.radius

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def bounding_box(self) -> BoundingBox:
        """Tight axis-aligned box around the circle."""
        return BoundingBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def point_at_angle(self, theta: float) -> Point:
        """Boundary point at angle ``theta`` (radians)."""
        return Point(
            self.center.x + self.radius * math.cos(theta),
            self.center.y + self.radius * math.sin(theta),
        )

    # ------------------------------------------------------------------
    # geometric kernels for the coverage test
    # ------------------------------------------------------------------
    def boundary_arc_covered_by(self, other: "Circle") -> ArcCoverage:
        """Which arc of *this* circle's boundary lies inside ``other``'s disk.

        Derivation: a boundary point of this circle at angle ``theta`` is in
        the other disk iff its distance to ``other.center`` is at most
        ``other.radius``.  Writing ``d`` for the center separation and
        ``r`` for this circle's radius, the law of cosines gives the limit
        angle ``phi = acos((d^2 + r^2 - other.radius^2) / (2 d r))`` around
        the direction from this center to the other center.
        """
        d = self.center.distance_to(other.center)
        r = self.radius
        if d + r <= other.radius:
            # This whole circle (boundary included) lies inside the other disk.
            return ArcCoverage(full=True, empty=False)
        if d > r + other.radius or d + other.radius < r:
            # Disks disjoint, or the other disk is strictly inside this
            # circle without reaching the boundary: no boundary coverage.
            return ArcCoverage(full=False, empty=True)
        # Exact zero guard for the concentric case: d divides the law-of-
        # cosines expression below, so only a literal zero is degenerate.
        if d == 0.0:  # repro: noqa(RPR001)
            # Concentric with other.radius < r (the full-coverage case
            # returned above): boundary not covered.
            return ArcCoverage(full=False, empty=True)
        cos_phi = (d * d + r * r - other.radius * other.radius) / (2.0 * d * r)
        cos_phi = max(-1.0, min(1.0, cos_phi))
        half_width = math.acos(cos_phi)
        center_angle = self.center.angle_to(other.center)
        return ArcCoverage(full=False, empty=False, center=center_angle, half_width=half_width)

    def boundary_intersections(self, other: "Circle") -> List[Point]:
        """Intersection points of the two circle *boundaries* (0, 1 or 2).

        Tangency returns a single point; coincident circles return an empty
        list (infinitely many intersections are useless for the coverage
        test and coincident certain circles never add information).
        """
        d = self.center.distance_to(other.center)
        r0, r1 = self.radius, other.radius
        # Exact zero guard: d divides the chord computation below.
        if d == 0.0:  # repro: noqa(RPR001)
            return []
        if d > r0 + r1 or d < abs(r0 - r1):
            return []
        # Distance from self.center to the chord midpoint along the center line.
        a = (d * d + r0 * r0 - r1 * r1) / (2.0 * d)
        h_sq = r0 * r0 - a * a
        if h_sq < 0.0:
            # Numerical noise around tangency.
            h_sq = 0.0
        h = math.sqrt(h_sq)
        ux = (other.center.x - self.center.x) / d
        uy = (other.center.y - self.center.y) / d
        mid = Point(self.center.x + a * ux, self.center.y + a * uy)
        # Exact tangency: h_sq was clamped to literal 0.0 above, so the
        # single-point case is an exact comparison by construction.
        if h == 0.0:  # repro: noqa(RPR001)
            return [mid]
        return [
            Point(mid.x - h * uy, mid.y + h * ux),
            Point(mid.x + h * uy, mid.y - h * ux),
        ]

    def overlap_area(self, other: "Circle") -> float:
        """Area of the intersection of the two disks (lens area)."""
        d = self.center.distance_to(other.center)
        r0, r1 = self.radius, other.radius
        if d >= r0 + r1:
            return 0.0
        # Subnormal center distances can underflow the segment formula's
        # ``2*d*r`` denominators to exactly 0.0 even though ``d > 0``; at
        # float precision the disks are concentric, so the lens is the
        # smaller disk.
        if (
            d <= abs(r0 - r1)
            or 2.0 * d * r0 == 0.0  # repro: noqa(RPR001)
            or 2.0 * d * r1 == 0.0  # repro: noqa(RPR001)
        ):
            smaller = min(r0, r1)
            return math.pi * smaller * smaller
        # Standard circular-segment decomposition.
        alpha = math.acos((d * d + r0 * r0 - r1 * r1) / (2.0 * d * r0))
        beta = math.acos((d * d + r1 * r1 - r0 * r0) / (2.0 * d * r1))
        return (
            r0 * r0 * (alpha - math.sin(2.0 * alpha) / 2.0)
            + r1 * r1 * (beta - math.sin(2.0 * beta) / 2.0)
        )

    @staticmethod
    def through_point(center: Point, boundary_point: Point) -> "Circle":
        """Circle centered at ``center`` passing through ``boundary_point``."""
        return Circle(center, center.distance_to(boundary_point))
