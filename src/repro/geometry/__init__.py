"""Pure 2-D computational geometry substrate.

Everything in this package is implemented from scratch on top of the
standard library and ``math``; there is no dependency on shapely or any
other geometry library.  The package provides the geometric machinery the
paper's verification lemmas need:

- :mod:`repro.geometry.point` -- immutable 2-D points and distances;
- :mod:`repro.geometry.bbox` -- axis-aligned bounding boxes with the
  MINDIST / MAXDIST metrics used by R-tree search;
- :mod:`repro.geometry.circle` -- circles, circle-circle intersection and
  the angular extent of one circle's boundary covered by another disk;
- :mod:`repro.geometry.intervals` -- algebra over angular intervals on a
  circle boundary (union, full-circle coverage);
- :mod:`repro.geometry.polygon` -- simple polygons, point containment,
  segment intersection and circle polygonization;
- :mod:`repro.geometry.coverage` -- the certain-region coverage tests used
  by multi-peer verification (exact disk-union test and the paper's
  polygon-overlay approximation);
- :mod:`repro.geometry.tolerance` -- explicit-epsilon float comparison
  helpers (the lint rule RPR001 steers distance comparisons here).
"""

from repro.geometry.bbox import BoundingBox
from repro.geometry.circle import Circle
from repro.geometry.coverage import (
    CoverageMethod,
    disk_covered_by_disks,
    disk_covered_by_polygons,
)
from repro.geometry.intervals import AngularIntervalSet
from repro.geometry.point import Point, distance
from repro.geometry.polygon import Polygon
from repro.geometry.tolerance import (
    DEFAULT_TOLERANCE,
    feq,
    fge,
    fle,
    fne,
    near_zero,
)

__all__ = [
    "AngularIntervalSet",
    "BoundingBox",
    "Circle",
    "CoverageMethod",
    "DEFAULT_TOLERANCE",
    "Point",
    "Polygon",
    "disk_covered_by_disks",
    "disk_covered_by_polygons",
    "distance",
    "feq",
    "fge",
    "fle",
    "fne",
    "near_zero",
]
