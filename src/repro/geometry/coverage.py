"""Certain-region coverage tests for multi-peer verification.

Lemma 3.8 of the paper reduces multi-peer verification to a coverage
question: the certain region ``R_c`` is the union of the peers' certain
circles, and a candidate POI ``n_i`` is a certain NN of ``Q`` iff the disk
``C_ni`` (center ``Q``, radius ``Dist(Q, n_i)``) is fully covered by
``R_c``.

Two interchangeable backends answer that question:

``CoverageMethod.EXACT``
    An exact test on the union of disks.  In general position a disk ``D``
    is contained in a union of disks ``U = D_1 | ... | D_m`` iff

    1. every point of the boundary circle of ``D`` lies in some ``D_i``
       (checked exactly with angular-interval union), and
    2. every intersection point of two covering circles that lies strictly
       inside ``D`` lies strictly inside some covering disk.

    Sketch: if ``D`` is not covered, the uncovered set is open and some
    component either touches the boundary of ``D`` (violating 1) or is
    bounded entirely by covering-circle arcs, in which case its corners
    are circle-circle intersection points strictly inside ``D`` that are
    on the boundary of ``U`` -- i.e. not strictly inside any disk
    (violating 2).  Conversely if 1 and 2 hold every candidate hole has
    nowhere to put a corner or a boundary touch.  Degeneracies (tangent
    circles, triple points) are absorbed conservatively by ``tolerance``:
    a borderline configuration is declared *not covered*, which keeps
    verification sound (a certain answer is never wrong).

``CoverageMethod.POLYGON``
    The paper's approach: each covering circle is replaced by an inscribed
    regular polygon (an under-approximation, so soundness is preserved)
    and the query disk by a circumscribed polygon (an over-approximation,
    same direction).  Coverage of the polygonal target by the polygonal
    union is then decided with an overlay-style test: target edge
    fragments between crossings must have covered midpoints, and every
    arrangement vertex (edge-edge crossing or covering-polygon vertex)
    strictly inside the target must lie strictly inside some covering
    polygon.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geometry.circle import Circle
from repro.geometry.intervals import AngularIntervalSet
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon, segment_intersections
from repro.geometry.tolerance import near_zero

__all__ = [
    "CoverageMethod",
    "CertainRegion",
    "disk_covered_by_disks",
    "disk_covered_by_polygons",
]


class CoverageMethod(enum.Enum):
    """Backend used to decide certain-region coverage."""

    EXACT = "exact"
    POLYGON = "polygon"


def disk_covered_by_disks(
    target: Circle,
    cover: Sequence[Circle],
    tolerance: float = 1e-9,
) -> bool:
    """Exact test: is the closed disk ``target`` inside the union of ``cover``?

    The test is sound under floating point: borderline configurations
    (within ``tolerance``) are reported as not covered.
    """
    if target.radius < 0.0:
        raise ValueError("target radius must be non-negative")
    relevant = [disk for disk in cover if disk.intersects_circle(target)]
    if not relevant:
        return False
    # Fast path -- also the exact semantics of single-peer verification.
    for disk in relevant:
        if disk.contains_circle(target, tolerance=-tolerance):
            return True
    if near_zero(target.radius, tolerance):
        # A disk no larger than the tolerance degenerates to its center.
        return any(
            disk.strictly_contains_point(target.center, tolerance) for disk in relevant
        )

    # Condition 1: the target boundary must be fully covered by arcs.
    arcs = AngularIntervalSet(tolerance=1e-12)
    angular_tol = tolerance / max(target.radius, tolerance)
    for disk in relevant:
        coverage = target.boundary_arc_covered_by(disk)
        if coverage.full:
            # The strict fast path above already failed for this disk, so
            # the containment is borderline: the target is internally
            # tangent (within ``tolerance``).  The tangency point -- the
            # target boundary point opposite the covering center -- is not
            # robustly covered, so leave a tolerance gap there instead of
            # certifying the full circle.  (Found by repro-difftest: an
            # uncached POI tied exactly at a peer's k-th distance sits on
            # that tangency point.)
            separation = target.center.distance_to(disk.center)
            if near_zero(separation, tolerance):
                # Borderline concentric ring: no direction is robust.
                continue
            half = math.pi - angular_tol
            if half > 0.0:
                arcs.add_centered(
                    target.center.angle_to(disk.center), half
                )
            continue
        if not coverage.empty:
            # Shrink each arc by an angular tolerance so borderline
            # touching arcs do not spuriously certify coverage.
            half = coverage.half_width - angular_tol
            if half > 0.0:
                arcs.add_centered(coverage.center, half)
    if not arcs.covers_full_circle():
        return False

    # Condition 2: circle-circle intersection vertices strictly inside the
    # target must be strictly inside some covering disk.
    count = len(relevant)
    for i in range(count):
        for j in range(i + 1, count):
            for vertex in relevant[i].boundary_intersections(relevant[j]):
                if not target.strictly_contains_point(vertex, tolerance):
                    continue
                if not any(
                    disk.strictly_contains_point(vertex, tolerance)
                    for disk in relevant
                ):
                    return False
    return True


def disk_covered_by_polygons(
    target: Circle,
    cover_polygons: Sequence[Polygon],
    sides: int = 32,
    tolerance: float = 1e-9,
) -> bool:
    """Paper-style overlay test of a disk against a union of polygons.

    ``target`` is over-approximated by its circumscribed regular
    ``sides``-gon; the polygons (normally inscribed approximations of the
    peers' certain circles) must cover that polygon entirely.
    """
    if not cover_polygons:
        return False
    if near_zero(target.radius, tolerance):
        # A disk no larger than the tolerance degenerates to its center.
        return any(poly.contains_point(target.center) for poly in cover_polygons)
    target_polygon = Polygon.circumscribed_around_circle(target, sides=sides)
    return polygon_covered_by_polygons(target_polygon, cover_polygons, tolerance)


def polygon_covered_by_polygons(
    target: Polygon,
    cover: Sequence[Polygon],
    tolerance: float = 1e-9,
) -> bool:
    """Overlay coverage test: is ``target`` inside the union of ``cover``?

    Sound and complete for polygons in general position; degeneracies are
    resolved conservatively towards "not covered".
    """
    relevant = [
        poly for poly in cover if poly.bounding_box.intersects(target.bounding_box)
    ]
    if not relevant:
        return False
    for poly in relevant:
        if poly.contains_polygon(target, tolerance):
            return True

    cover_edges = [edge for poly in relevant for edge in poly.edges()]

    # Condition 1: every fragment of the target boundary is covered.  A
    # fragment's coverage status is constant between crossings with cover
    # edges, so testing fragment midpoints is exact.
    for a, b in target.edges():
        if not _segment_covered(a, b, relevant, cover_edges, tolerance):
            return False

    # Condition 2a: edge-edge crossings strictly inside the target must be
    # strictly interior to the union.
    edge_count = len(cover_edges)
    for i in range(edge_count):
        for j in range(i + 1, edge_count):
            for vertex in segment_intersections(cover_edges[i], cover_edges[j]):
                if not _strictly_inside_polygon(target, vertex, tolerance):
                    continue
                if not _strictly_inside_union(relevant, vertex, tolerance):
                    return False

    # Condition 2b: covering-polygon vertices strictly inside the target
    # are potential hole corners too (the exterior wedge at a convex vertex
    # is uncovered unless another polygon strictly contains the vertex).
    for poly in relevant:
        for vertex in poly.vertices:
            if not _strictly_inside_polygon(target, vertex, tolerance):
                continue
            others = [  # repro: hot-alloc(per-vertex exclusion list; relevant covers are a handful of peer regions and this branch runs only for vertices strictly inside the target)
                other for other in relevant if other is not poly
            ]
            if not _strictly_inside_union(others, vertex, tolerance):
                return False
    return True


def _segment_covered(
    a: Point,
    b: Point,
    polygons: Sequence[Polygon],
    cover_edges: Sequence[Tuple[Point, Point]],
    tolerance: float,
) -> bool:
    """True when the closed segment ``a-b`` lies inside the polygon union."""
    length_sq = a.squared_distance_to(b)
    # Exact zero guard: any non-zero squared length is safely divisible.
    if length_sq == 0.0:  # repro: noqa(RPR001, RPR011)
        return any(poly.contains_point(a, tolerance) for poly in polygons)
    cut_params: List[float] = [0.0, 1.0]
    for edge in cover_edges:
        for crossing in segment_intersections((a, b), edge):
            t = (
                (crossing.x - a.x) * (b.x - a.x) + (crossing.y - a.y) * (b.y - a.y)
            ) / length_sq
            cut_params.append(min(1.0, max(0.0, t)))
    cut_params.sort()
    for t0, t1 in zip(cut_params, cut_params[1:]):
        if t1 - t0 <= 1e-12:
            continue
        t_mid = (t0 + t1) / 2.0
        midpoint = Point(a.x + t_mid * (b.x - a.x), a.y + t_mid * (b.y - a.y))
        if not any(poly.contains_point(midpoint, tolerance) for poly in polygons):
            return False
    return True


def _strictly_inside_polygon(polygon: Polygon, point: Point, tolerance: float) -> bool:
    """True when ``point`` is inside ``polygon`` and not within ``tolerance``
    of its boundary."""
    if not polygon.contains_point(point):
        return False
    return _distance_to_boundary(polygon, point) > tolerance


def _strictly_inside_union(
    polygons: Sequence[Polygon], point: Point, tolerance: float
) -> bool:
    """Conservative interior-of-union membership: strictly inside some piece."""
    return any(_strictly_inside_polygon(poly, point, tolerance) for poly in polygons)


def _distance_to_boundary(polygon: Polygon, point: Point) -> float:
    """Distance from ``point`` to the polygon boundary."""
    best = math.inf
    for a, b in polygon.edges():
        best = min(best, _point_segment_distance(point, a, b))
    return best


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the closed segment ``a-b``."""
    length_sq = a.squared_distance_to(b)
    # Exact zero guard: any non-zero squared length is safely divisible.
    if length_sq == 0.0:  # repro: noqa(RPR001, RPR011)
        return p.distance_to(a)
    t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / length_sq
    t = min(1.0, max(0.0, t))
    closest = Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    return p.distance_to(closest)


@dataclass
class CertainRegion:
    """The union of peer certain circles, with a pluggable coverage backend.

    This is the object Lemma 3.8 calls ``R_c``.  Verification code builds
    one region per query from the usable peer caches and then asks
    :meth:`covers_disk` once per candidate POI.
    """

    circles: List[Circle] = field(default_factory=list)
    method: CoverageMethod = CoverageMethod.EXACT
    polygon_sides: int = 32
    tolerance: float = 1e-9
    _polygons: Optional[List[Polygon]] = field(default=None, repr=False)

    def add_circle(self, circle: Circle) -> None:
        """Add a peer's certain circle to the region."""
        if circle.radius <= 0.0:
            return
        self.circles.append(circle)
        self._polygons = None

    def __len__(self) -> int:
        return len(self.circles)

    def is_empty(self) -> bool:
        return not self.circles

    def covers_disk(self, target: Circle) -> bool:
        """True when ``target`` is certainly inside the region.

        Both backends are conservative: ``True`` always implies genuine
        coverage; ``False`` may occasionally be a false negative (polygon
        backend, or borderline geometry within tolerance).
        """
        if not self.circles:
            return False
        if self.method is CoverageMethod.EXACT:
            return disk_covered_by_disks(target, self.circles, self.tolerance)
        return disk_covered_by_polygons(
            target, self._cover_polygons(), sides=self.polygon_sides, tolerance=self.tolerance
        )

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies in the region (union membership)."""
        if self.method is CoverageMethod.EXACT:
            return any(circle.contains_point(point) for circle in self.circles)
        return any(poly.contains_point(point) for poly in self._cover_polygons())

    def _cover_polygons(self) -> List[Polygon]:
        if self._polygons is None:
            # Memoized derived state: the polygon cache is a pure function
            # of the frozen circles, so filling it is observationally pure.
            self._polygons = [  # repro: noqa(RPR009)
                Polygon.inscribed_in_circle(circle, sides=self.polygon_sides)
                for circle in self.circles
                if circle.radius > 0.0
            ]
        return self._polygons
