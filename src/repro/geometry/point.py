"""Immutable 2-D points and distance helpers.

The whole library works in a flat Cartesian plane.  Simulation configs are
responsible for converting real-world units (miles, meters) into plane
units; geometry itself is unit-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = ["Point", "distance", "squared_distance", "centroid"]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane.

    ``Point`` is hashable and immutable so it can be used as a dictionary
    key (e.g. to memoize network distances between snapped locations).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt when comparing)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point", dist: float) -> "Point":
        """Return the point ``dist`` away from ``self`` towards ``other``.

        If ``other`` coincides with ``self`` the point itself is returned;
        there is no direction to move in.
        """
        total = self.distance_to(other)
        # Exact zero guard: any non-zero distance is safely divisible.
        if total == 0.0:  # repro: noqa(RPR001)
            return self
        frac = dist / total
        if not math.isfinite(frac):
            # ``total`` can be subnormal (denormal separation), overflowing
            # ``dist / total`` to inf. Normalizing the direction first keeps
            # every intermediate bounded by ``max(1, dist)``.
            ux = (other.x - self.x) / total
            uy = (other.y - self.y) / total
            return Point(self.x + ux * dist, self.y + uy * dist)
        return Point(self.x + (other.x - self.x) * frac, self.y + (other.y - self.y) * frac)

    def angle_to(self, other: "Point") -> float:
        """Angle of the vector from ``self`` to ``other`` in ``[-pi, pi]``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return a.distance_to(b)


def squared_distance(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    return a.squared_distance_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    xs = 0.0
    ys = 0.0
    count = 0
    for point in points:
        xs += point.x
        ys += point.y
        count += 1
    if count == 0:
        raise ValueError("centroid() requires at least one point")
    return Point(xs / count, ys / count)
