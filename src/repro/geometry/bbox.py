"""Axis-aligned bounding boxes (minimum bounding rectangles).

These are the MBRs stored in R-tree entries.  Besides the usual box
algebra (union, intersection, containment) the class provides the three
point-to-box metrics spatial NN search relies on:

- ``mindist`` -- the MINDIST metric of Roussopoulos et al.: the smallest
  possible distance from the query point to any object inside the box;
- ``maxdist`` -- the largest possible distance from the query point to a
  point of the box.  The paper's EINN algorithm (Section 3.3) prunes any
  MBR whose MAXDIST falls below the branch-expanding *lower* bound,
  because every object in such a box is already known to be certain;
- ``minmaxdist`` -- the classic MINMAXDIST upper bound on the distance to
  the nearest object guaranteed to be inside the box (provided for the
  depth-first baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.point import Point

__all__ = ["BoundingBox"]


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "invalid bounding box: "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Point) -> "BoundingBox":
        """Degenerate box covering a single point."""
        return cls(point.x, point.y, point.x, point.y)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Smallest box covering all ``points`` (must be non-empty)."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("from_points() requires at least one point") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for point in iterator:
            min_x = min(min_x, point.x)
            max_x = max(max_x, point.x)
            min_y = min(min_y, point.y)
            max_y = max(max_y, point.y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def union_all(cls, boxes: Iterable["BoundingBox"]) -> "BoundingBox":
        """Smallest box covering all ``boxes`` (must be non-empty)."""
        iterator = iter(boxes)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("union_all() requires at least one box") from None
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for box in iterator:
            min_x = min(min_x, box.min_x)
            min_y = min(min_y, box.min_y)
            max_x = max(max_x, box.max_x)
            max_y = max(max_y, box.max_y)
        return cls(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # box algebra
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter; the R*-tree split heuristic minimizes this."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box covering both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "BoundingBox") -> Optional["BoundingBox"]:
        """Overlapping region, or ``None`` when the boxes are disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return BoundingBox(min_x, min_y, max_x, max_y)

    def overlap_area(self, other: "BoundingBox") -> float:
        """Area of the overlap with ``other`` (0.0 when disjoint)."""
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.area

    def enlargement(self, other: "BoundingBox") -> float:
        """Area growth needed to absorb ``other`` (R-tree ChooseSubtree)."""
        return self.union(other).area - self.area

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the closed boxes share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    # ------------------------------------------------------------------
    # point-to-box metrics used by NN search
    # ------------------------------------------------------------------
    def mindist(self, point: Point) -> float:
        """MINDIST: distance from ``point`` to the closest point of the box."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    def maxdist(self, point: Point) -> float:
        """MAXDIST: distance from ``point`` to the farthest point of the box.

        When ``maxdist(q) <= r`` the whole box lies inside the disk of
        radius ``r`` around ``q`` -- this is the containment test behind
        EINN's downward pruning (Section 3.3).
        """
        dx = max(point.x - self.min_x, self.max_x - point.x)
        dy = max(point.y - self.min_y, self.max_y - point.y)
        return math.hypot(dx, dy)

    def minmaxdist(self, point: Point) -> float:
        """MINMAXDIST: upper bound on the NN distance within a non-empty box.

        Defined by Roussopoulos et al. as the minimum over the box faces of
        the maximal distance to the nearer half of that face.  Any object
        pruned at a distance above MINMAXDIST cannot be the nearest
        neighbor.
        """
        # Midpoints of the box along each axis decide the "nearer" face.
        rm_x = self.min_x if point.x <= (self.min_x + self.max_x) / 2.0 else self.max_x
        rm_y = self.min_y if point.y <= (self.min_y + self.max_y) / 2.0 else self.max_y
        # Farthest corner along each axis.
        r_far_x = self.min_x if point.x >= (self.min_x + self.max_x) / 2.0 else self.max_x
        r_far_y = self.min_y if point.y >= (self.min_y + self.max_y) / 2.0 else self.max_y
        candidate_x = math.hypot(point.x - rm_x, point.y - r_far_y)
        candidate_y = math.hypot(point.x - r_far_x, point.y - rm_y)
        return min(candidate_x, candidate_y)

    def fully_inside_circle(self, center: Point, radius: float) -> bool:
        """True when every point of the box is within ``radius`` of ``center``."""
        return self.maxdist(center) <= radius
