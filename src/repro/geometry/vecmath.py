"""Vectorized distance kernels, bit-identical to the scalar metric.

The repo's canonical metric is CPython's ``math.hypot`` — correctly
rounded on every platform we target (verified by exact rational
arithmetic over adversarial inputs in the scalar-oracle suite).  NumPy's
``np.hypot`` is *not* the same function: it disagrees with
``math.hypot`` by one ulp on roughly 1 in 1000 inputs, which is enough
to flip a Lemma 3.2 boundary comparison or an R-tree traversal order.

The kernels here therefore vectorize everything *around* the final
square root — the clamps, subtractions and comparisons, all exactly
rounded IEEE-754 operations that NumPy and CPython evaluate identically
— and evaluate the hypotenuse itself through a C-level ``map`` over
``math.hypot``.  The result arrays are bit-for-bit equal to looping the
scalar formulas in :mod:`repro.geometry.bbox` and
:mod:`repro.geometry.point`, which is what makes the vectorized R-tree
page-count-invariant (see ``docs/architecture.md``).

Property tests in ``tests/test_index_vectorized.py`` pin the
equivalence against :mod:`repro.testing.scalar_reference` over
degenerate boxes, touching edges, corner queries and subnormal
coordinates.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np
import numpy.typing as npt

__all__ = [
    "FloatArray",
    "hypot_pairs",
    "maxdist_arrays",
    "mindist_arrays",
    "point_distances",
    "point_distance_list",
]

#: The one array dtype used across the index: IEEE-754 binary64, exactly
#: the Python ``float`` the scalar code operates on.
FloatArray = npt.NDArray[np.float64]


def hypot_pairs(dx: FloatArray, dy: FloatArray) -> FloatArray:
    """``math.hypot`` over parallel component arrays, bit-identical.

    ``np.hypot`` would be faster but is a *different function* at the
    last ulp; the C-level ``map`` keeps every element equal to the
    scalar metric while still avoiding Python-bytecode loop overhead.
    """
    count = len(dx)
    return np.fromiter(
        map(math.hypot, dx.tolist(), dy.tolist()), np.float64, count=count
    )


def point_distances(
    px: float, py: float, xs: FloatArray, ys: FloatArray
) -> FloatArray:
    """Distances from ``(px, py)`` to each point, as the scalar metric.

    Matches ``Point(px, py).distance_to(Point(x, y))`` element-wise:
    the subtraction is a single correctly-rounded IEEE operation, so
    NumPy and CPython agree bit-for-bit before the shared ``hypot``.
    """
    return hypot_pairs(px - xs, py - ys)


def point_distance_list(
    px: float, py: float, xs: Sequence[float], ys: Sequence[float]
) -> List[float]:
    """List variant of :func:`point_distances` for small fan-outs.

    At leaf fan-out (~30 entries) plain lists beat ndarray dispatch
    overhead; the arithmetic is the same two exact operations.
    """
    dx = [px - x for x in xs]
    dy = [py - y for y in ys]
    return list(map(math.hypot, dx, dy))


def mindist_arrays(
    px: float,
    py: float,
    lo_x: FloatArray,
    lo_y: FloatArray,
    hi_x: FloatArray,
    hi_y: FloatArray,
) -> FloatArray:
    """MINDIST from ``(px, py)`` to each box, as ``BoundingBox.mindist``.

    The scalar formula is ``hypot(max(lo - p, 0, p - hi))`` per axis;
    ``np.maximum`` computes the same maxima (the sign of a zero can
    differ from Python's ``max``, which ``hypot`` erases).
    """
    dx = np.maximum(np.maximum(lo_x - px, 0.0), px - hi_x)
    dy = np.maximum(np.maximum(lo_y - py, 0.0), py - hi_y)
    return hypot_pairs(dx, dy)


def maxdist_arrays(
    px: float,
    py: float,
    lo_x: FloatArray,
    lo_y: FloatArray,
    hi_x: FloatArray,
    hi_y: FloatArray,
) -> FloatArray:
    """MAXDIST from ``(px, py)`` to each box, as ``BoundingBox.maxdist``."""
    dx = np.maximum(px - lo_x, hi_x - px)
    dy = np.maximum(py - lo_y, hi_y - py)
    return hypot_pairs(dx, dy)
