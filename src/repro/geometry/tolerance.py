"""Float comparison helpers with explicit tolerances.

All of the verification lemmas ultimately compare Euclidean distances,
and exact ``==``/``!=`` on such values is almost always a latent bug:
two mathematically equal distances rarely share a bit pattern after a
different sequence of operations.  These helpers make the tolerance an
explicit, auditable part of every comparison; the project lint rule
``RPR001`` (see :mod:`repro.analysis`) flags exact float comparisons on
distance expressions and points offenders here.

``DEFAULT_TOLERANCE`` matches the conservative 1e-9 epsilon already used
by the coverage tests in :mod:`repro.geometry.coverage`.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_TOLERANCE",
    "feq",
    "fne",
    "fle",
    "fge",
    "near_zero",
]

DEFAULT_TOLERANCE = 1e-9


def feq(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """True when ``a`` and ``b`` differ by at most ``tolerance``."""
    return abs(a - b) <= tolerance


def fne(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """True when ``a`` and ``b`` differ by more than ``tolerance``."""
    return abs(a - b) > tolerance


def fle(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """``a <= b`` up to ``tolerance`` (``a`` may exceed ``b`` slightly)."""
    return a <= b + tolerance


def fge(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """``a >= b`` up to ``tolerance`` (``a`` may trail ``b`` slightly)."""
    return a >= b - tolerance


def near_zero(value: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """True when ``value`` is within ``tolerance`` of zero."""
    return abs(value) <= tolerance
