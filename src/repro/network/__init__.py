"""Spatial (road) network substrate.

Section 3.4 of the paper extends SENN to network distances: mobile hosts
carry a local *modeling graph* of the road network, compute shortest-path
distances with Dijkstra's algorithm, and run an IER-style incremental
search.  This package provides all of that from scratch:

- :mod:`repro.network.graph` -- the modeling graph (junctions, segment
  endpoints and auxiliary points), road classes with speed limits, and
  point snapping onto edges;
- :mod:`repro.network.dijkstra` -- single/multi-source shortest paths with
  early termination, plus exact point-to-point network distance for
  on-edge locations;
- :mod:`repro.network.ier` -- Incremental Euclidean Restriction (IER) and
  Incremental Network Expansion (INE) for network kNN queries;
- :mod:`repro.network.generator` -- a seeded synthetic TIGER-like road
  network generator (the paper used TIGER/LINE vectors; see DESIGN.md for
  the substitution rationale);
- :mod:`repro.network.index` -- the :class:`NetworkIndex` protocol with
  the Dijkstra reference implementation and the precomputed G-tree-style
  partition hierarchy (see ``docs/network.md``);
- :mod:`repro.network.loaders` -- real road-graph loaders (TIGER edge
  lists, OSM XML), region coordinate frames, and the deterministic
  downsampler behind the committed CI extract.
"""

from repro.network.dijkstra import (
    network_distance,
    shortest_path,
    shortest_path_lengths,
)
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.graph import Edge, NetworkLocation, RoadClass, SpatialNetwork
from repro.network.ier import (
    NetworkNeighbor,
    incremental_euclidean_restriction,
    incremental_network_expansion,
)
from repro.network.index import (
    DijkstraIndex,
    HierarchicalIndex,
    IndexStats,
    NetworkIndex,
)
from repro.network.loaders import (
    LOS_ANGELES,
    RIVERSIDE,
    RegionFrame,
    downsample,
    load_bundled_extract,
    load_osm_xml,
    load_tiger,
    write_tiger,
)

__all__ = [
    "LOS_ANGELES",
    "RIVERSIDE",
    "DijkstraIndex",
    "Edge",
    "HierarchicalIndex",
    "IndexStats",
    "NetworkIndex",
    "NetworkLocation",
    "NetworkNeighbor",
    "RegionFrame",
    "RoadClass",
    "RoadNetworkSpec",
    "SpatialNetwork",
    "downsample",
    "generate_road_network",
    "incremental_euclidean_restriction",
    "incremental_network_expansion",
    "load_bundled_extract",
    "load_osm_xml",
    "load_tiger",
    "network_distance",
    "shortest_path",
    "shortest_path_lengths",
    "write_tiger",
]
