"""Synthetic TIGER-like road network generation.

The paper builds its road networks from U.S. Census TIGER/LINE street
vectors (Section 4.1.2).  That data is not redistributable here, so this
module generates statistically similar synthetic networks:

- a jittered grid of secondary roads (the urban street fabric);
- every ``primary_every``-th grid line upgraded to a primary highway with
  a higher speed limit;
- a random subset of secondary segments downgraded to rural roads;
- random edge removals for irregularity, followed by a largest-connected-
  component pass so mobility never strands a host;
- optional long diagonal *overpass* segments that cross the grid without
  creating junctions -- reproducing the paper's observation that freeway
  crossings in 2-D are often over-passes, not intersections.

Everything is driven by a seeded :class:`numpy.random.Generator`, so a
given spec always produces the same network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.network.graph import RoadClass, SpatialNetwork

__all__ = ["RoadNetworkSpec", "generate_road_network"]


@dataclass(frozen=True)
class RoadNetworkSpec:
    """Parameters of the synthetic network.

    Lengths are in the same plane units as the simulation area (miles in
    the paper's configurations).
    """

    width: float
    height: float
    secondary_spacing: float = 0.25
    primary_every: int = 4
    jitter: float = 0.15
    removal_fraction: float = 0.12
    rural_fraction: float = 0.15
    overpass_count: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.height <= 0.0:
            raise ValueError("area dimensions must be positive")
        if self.secondary_spacing <= 0.0:
            raise ValueError("secondary_spacing must be positive")
        if self.primary_every < 1:
            raise ValueError("primary_every must be >= 1")
        if not 0.0 <= self.jitter < 0.5:
            raise ValueError("jitter must be in [0, 0.5) of the spacing")
        if not 0.0 <= self.removal_fraction < 1.0:
            raise ValueError("removal_fraction must be in [0, 1)")
        if not 0.0 <= self.rural_fraction <= 1.0:
            raise ValueError("rural_fraction must be in [0, 1]")
        if self.overpass_count < 0:
            raise ValueError("overpass_count must be non-negative")


def generate_road_network(spec: RoadNetworkSpec) -> SpatialNetwork:
    """Generate a connected road network for ``spec``.

    The returned network is always connected (largest component of the
    randomized grid) and spans the requested area.
    """
    rng = np.random.default_rng(spec.seed)
    columns = max(2, int(round(spec.width / spec.secondary_spacing)) + 1)
    rows = max(2, int(round(spec.height / spec.secondary_spacing)) + 1)
    dx = spec.width / (columns - 1)
    dy = spec.height / (rows - 1)

    # --- jittered grid nodes -------------------------------------------
    positions: Dict[Tuple[int, int], Point] = {}
    for row in range(rows):
        for col in range(columns):
            jx = rng.uniform(-spec.jitter, spec.jitter) * dx if spec.jitter else 0.0
            jy = rng.uniform(-spec.jitter, spec.jitter) * dy if spec.jitter else 0.0
            x = min(max(col * dx + jx, 0.0), spec.width)
            y = min(max(row * dy + jy, 0.0), spec.height)
            positions[(row, col)] = Point(x, y)

    # --- edge list with road classes -----------------------------------
    edges: List[Tuple[Tuple[int, int], Tuple[int, int], RoadClass]] = []
    for row in range(rows):
        for col in range(columns):
            if col + 1 < columns:
                road_class = _classify(row, spec, rng, is_row_line=True)
                edges.append(((row, col), (row, col + 1), road_class))
            if row + 1 < rows:
                road_class = _classify(col, spec, rng, is_row_line=False)
                edges.append(((row, col), (row + 1, col), road_class))

    # --- random removals (primaries are kept intact) -------------------
    if spec.removal_fraction > 0.0:
        kept = []
        for edge in edges:
            if edge[2] is RoadClass.PRIMARY_HIGHWAY:
                kept.append(edge)
            elif rng.uniform() >= spec.removal_fraction:
                kept.append(edge)
        edges = kept

    # --- largest connected component ------------------------------------
    component = _largest_component(positions.keys(), edges)
    network = SpatialNetwork()
    node_ids: Dict[Tuple[int, int], int] = {}
    for key in sorted(component):
        node_ids[key] = network.add_node(positions[key])
    for a, b, road_class in edges:
        if a in node_ids and b in node_ids:
            network.add_edge(node_ids[a], node_ids[b], road_class)

    # --- overpass freeways ------------------------------------------------
    _add_overpasses(network, node_ids, rows, columns, spec, rng)
    return network


def _classify(
    line_index: int,
    spec: RoadNetworkSpec,
    rng: np.random.Generator,
    is_row_line: bool,
) -> RoadClass:
    """Road class of a grid segment lying on row/column ``line_index``."""
    if line_index % spec.primary_every == 0:
        return RoadClass.PRIMARY_HIGHWAY
    if rng.uniform() < spec.rural_fraction:
        return RoadClass.RURAL_ROAD
    return RoadClass.SECONDARY_ROAD


def _largest_component(nodes, edges) -> set:
    """Union-find over grid keys; returns the largest component's keys."""
    parent: Dict[Tuple[int, int], Tuple[int, int]] = {key: key for key in nodes}

    def find(key):
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    for a, b, _ in edges:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    sizes: Dict[Tuple[int, int], List] = {}
    for key in parent:
        sizes.setdefault(find(key), []).append(key)
    return set(max(sizes.values(), key=len))


def _add_overpasses(
    network: SpatialNetwork,
    node_ids: Dict[Tuple[int, int], int],
    rows: int,
    columns: int,
    spec: RoadNetworkSpec,
    rng: np.random.Generator,
) -> None:
    """Add long diagonal primary segments that do not intersect the grid.

    Endpoints are picked from opposite quadrants of the area so the
    segment crosses many grid edges; no junctions are created where it
    crosses them, which is exactly the over-pass semantics the paper's
    TIGER integration had to detect.
    """
    keys = sorted(node_ids)
    if len(keys) < 4:
        return
    for _ in range(spec.overpass_count):
        lower = [k for k in keys if k[0] < rows // 3 and k[1] < columns // 3]
        upper = [k for k in keys if k[0] > 2 * rows // 3 and k[1] > 2 * columns // 3]
        if not lower or not upper:
            return
        a = lower[int(rng.integers(len(lower)))]
        b = upper[int(rng.integers(len(upper)))]
        u, v = node_ids[a], node_ids[b]
        if network.edge_between(u, v) is None:
            network.add_edge(u, v, RoadClass.PRIMARY_HIGHWAY)
