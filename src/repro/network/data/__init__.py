"""Committed road-graph fixtures.

``la_extract_5k.cnode.gz`` / ``la_extract_5k.cedge.gz`` is the ~5k-node
LA-frame extract CI builds a hierarchy over (see
``repro.network.loaders.load_bundled_extract``); ``sample.osm`` is a
hand-written OSM XML document the loader tests parse.  The extract is a
pure function of the generator seed and the downsampler -- the
regeneration command in ``EXPERIMENTS.md`` reproduces both files byte
for byte.
"""
