"""The road-network modeling graph.

The paper assumes "a digitization process that generates a modeling graph
from an input spatial network" whose nodes are junctions, segment
endpoints and auxiliary points (Section 3.4).  :class:`SpatialNetwork` is
that graph: an undirected graph with geometric nodes and weighted edges
carrying a road class and speed limit (Section 4.1.2 assigns per-class
maximum driving speeds).

Positions *between* nodes are described by :class:`NetworkLocation`
(an edge plus an offset), which is what mobility and network-distance
computations operate on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry.point import Point

__all__ = ["RoadClass", "Edge", "NetworkLocation", "SpatialNetwork"]


class RoadClass(enum.Enum):
    """TIGER-style road categories with their maximum driving speeds (mph).

    The paper: "The segments associated with a different road classes are
    associated with different maximum driving speeds."
    """

    PRIMARY_HIGHWAY = 65.0
    SECONDARY_ROAD = 45.0
    RURAL_ROAD = 30.0

    @property
    def speed_limit_mph(self) -> float:
        """Maximum driving speed of this road class, in mph (Section 4.1.2)."""
        return self.value


@dataclass(frozen=True, slots=True)
class Edge:
    """An undirected road segment between two graph nodes."""

    u: int
    v: int
    length: float
    road_class: RoadClass = RoadClass.SECONDARY_ROAD

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ValueError("edge length must be positive")
        if self.u == self.v:
            raise ValueError("self-loop edges are not allowed")

    @property
    def speed_limit_mph(self) -> float:
        """Speed limit inherited from this segment's road class."""
        return self.road_class.speed_limit_mph

    def other_end(self, node: int) -> int:
        """Return the opposite endpoint of ``node`` on this edge."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of this edge")

    def key(self) -> Tuple[int, int]:
        """Canonical (sorted) endpoint pair."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


@dataclass(frozen=True, slots=True)
class NetworkLocation:
    """A position on the network: ``offset`` along ``edge`` from its ``u`` end.

    ``point`` is the interpolated plane position, cached because mobility
    and Euclidean pre-filters need it constantly.
    """

    edge: Edge
    offset: float
    point: Point

    def __post_init__(self) -> None:
        if not -1e-9 <= self.offset <= self.edge.length + 1e-9:
            raise ValueError(
                f"offset {self.offset} outside edge of length {self.edge.length}"
            )

    @property
    def offset_from_v(self) -> float:
        """Distance along the edge measured from the ``v`` end instead."""
        return self.edge.length - self.offset


class SpatialNetwork:
    """An undirected spatial graph with geometric nodes.

    Node ids are integers assigned by :meth:`add_node`.  The graph is
    deliberately simple -- adjacency dictionaries -- because every
    algorithm in the paper (Dijkstra, INE, mobility) only needs neighbor
    iteration and O(1) edge lookup.
    """

    def __init__(self) -> None:
        self._positions: Dict[int, Point] = {}
        self._adjacency: Dict[int, Dict[int, Edge]] = {}
        self._next_node_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, position: Point) -> int:
        """Add a node and return its id."""
        node_id = self._next_node_id
        self._next_node_id += 1
        self._positions[node_id] = position
        self._adjacency[node_id] = {}
        return node_id

    def add_edge(
        self,
        u: int,
        v: int,
        road_class: RoadClass = RoadClass.SECONDARY_ROAD,
        length: Optional[float] = None,
    ) -> Edge:
        """Connect two existing nodes; length defaults to the Euclidean one.

        An explicit ``length`` above the Euclidean distance models curved
        segments; a length below it is rejected because it would violate
        the Euclidean lower-bound property that IER depends on.
        """
        if u not in self._positions or v not in self._positions:
            raise KeyError("both endpoints must exist before adding an edge")
        # Euclidean by design: an edge's chord length is the geometric
        # lower bound its stored network length must respect.
        euclidean = self._positions[u].distance_to(self._positions[v])  # repro: noqa(RPR003)
        if length is None:
            length = euclidean
        elif length < euclidean - 1e-9:
            raise ValueError(
                "edge length below the Euclidean distance breaks the "
                "Euclidean lower-bound property"
            )
        # Exactly coincident endpoints have no direction; any non-zero
        # chord is a valid (possibly tiny) edge.
        if euclidean == 0.0:  # repro: noqa(RPR001)
            raise ValueError("cannot connect two coincident nodes")
        edge = Edge(u, v, length, road_class)
        self._adjacency[u][v] = edge
        self._adjacency[v][u] = edge
        return edge

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def node_position(self, node: int) -> Point:
        """Plane position of ``node`` (raises ``KeyError`` if unknown)."""
        return self._positions[node]

    def node_ids(self) -> Iterator[int]:
        """Iterate node ids in insertion (ascending) order."""
        return iter(self._positions)

    @property
    def node_count(self) -> int:
        """Number of nodes in the graph."""
        return len(self._positions)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges (each counted once)."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def neighbors(self, node: int) -> Iterator[Tuple[int, Edge]]:
        """Yield ``(neighbor_id, edge)`` pairs."""
        return iter(self._adjacency[node].items())

    def degree(self, node: int) -> int:
        """Number of edges incident to ``node``."""
        return len(self._adjacency[node])

    def edge_between(self, u: int, v: int) -> Optional[Edge]:
        """The edge connecting ``u`` and ``v``, or ``None`` if absent."""
        return self._adjacency.get(u, {}).get(v)

    def edges(self) -> Iterator[Edge]:
        """Yield every edge exactly once."""
        for u, neighbors in self._adjacency.items():
            for v, edge in neighbors.items():
                if u < v:
                    yield edge

    def total_length(self) -> float:
        """Sum of all edge lengths (the total road mileage)."""
        return sum(edge.length for edge in self.edges())

    def is_connected(self) -> bool:
        """True when every node is reachable from every other node."""
        if self.node_count == 0:
            return True
        start = next(iter(self._positions))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == self.node_count

    def largest_component_nodes(self) -> List[int]:
        """Node ids of the largest connected component."""
        remaining = set(self._positions)
        best: List[int] = []
        while remaining:
            start = next(iter(remaining))
            component = [start]
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
                        component.append(neighbor)
            remaining -= seen
            if len(component) > len(best):
                best = component
        return best

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def location_at(self, edge: Edge, offset: float) -> NetworkLocation:
        """Build the :class:`NetworkLocation` at ``offset`` along ``edge``."""
        offset = min(max(offset, 0.0), edge.length)
        start = self._positions[edge.u]
        end = self._positions[edge.v]
        fraction = offset / edge.length
        point = Point(
            start.x + (end.x - start.x) * fraction,
            start.y + (end.y - start.y) * fraction,
        )
        return NetworkLocation(edge, offset, point)

    def location_at_node(self, node: int) -> NetworkLocation:
        """A location sitting exactly on ``node`` (via an incident edge)."""
        neighbors = self._adjacency[node]
        if not neighbors:
            raise ValueError(f"node {node} has no incident edges")
        edge = next(iter(neighbors.values()))
        offset = 0.0 if edge.u == node else edge.length
        return NetworkLocation(edge, offset, self._positions[node])

    def snap(self, point: Point) -> NetworkLocation:
        """Project ``point`` onto the nearest edge of the network.

        Linear scan over edges; snapping happens once per host / POI at
        setup time, so simplicity beats an index here.
        """
        best: Optional[NetworkLocation] = None
        best_dist = math.inf
        for edge in self.edges():
            start = self._positions[edge.u]
            end = self._positions[edge.v]
            # Euclidean by design: snapping projects onto the edge chord.
            length_sq = start.squared_distance_to(end)  # repro: noqa(RPR003)
            t = (
                (point.x - start.x) * (end.x - start.x)
                + (point.y - start.y) * (end.y - start.y)
            ) / length_sq
            t = min(1.0, max(0.0, t))
            projected = Point(
                start.x + t * (end.x - start.x), start.y + t * (end.y - start.y)
            )
            # Euclidean by design: off-network displacement to the chord.
            dist = point.distance_to(projected)  # repro: noqa(RPR003)
            if dist < best_dist:
                best_dist = dist
                # The offset is along the edge's *stored* length, which can
                # exceed the chord length for curved segments.
                best = NetworkLocation(edge, t * edge.length, projected)
        if best is None:
            raise ValueError("cannot snap onto an empty network")
        return best

    def nearest_node(self, point: Point) -> int:
        """Id of the node geometrically closest to ``point``."""
        if not self._positions:
            raise ValueError("network has no nodes")
        return min(
            self._positions,
            # Euclidean by design: geometric nearest node, not reachability.
            key=lambda node: self._positions[node].distance_to(point),  # repro: noqa(RPR003)
        )

    def __repr__(self) -> str:
        return (
            f"SpatialNetwork({self.node_count} nodes, {self.edge_count} edges, "
            f"total length {self.total_length():.3g})"
        )
