"""Network kNN indexes behind the :class:`NetworkIndex` protocol.

SNNN (Section 4) needs exact network distances from the query location to
its candidate POIs.  The seed implementation paid a full Dijkstra per
candidate, which is hopeless on the 100k+-node street graphs the paper's
LA / Riverside regions imply.  This module introduces the seam that fixes
it without giving up the differential-testing story:

- :class:`NetworkIndex` -- the protocol every implementation satisfies:
  exact point-to-point distances, a registered POI set, and top-k by
  ``(network_distance, poi_tie_key)``;
- :class:`DijkstraIndex` -- the reference implementation, a thin stats
  wrapper over :mod:`repro.network.dijkstra`; it settles the origin's
  whole component per kNN query and is what the difftest oracle mirrors;
- :class:`HierarchicalIndex` -- a G-tree-style partition hierarchy
  (recursive METIS-free coordinate bisection, per-partition border sets,
  precomputed border-to-border distance matrices) with assemble-on-demand
  upper bounds and best-first partition expansion, in the style of "kNN
  on Road Networks: A Journey in Experimentation" (arXiv:1601.01549).

Exactness contract
------------------
The hierarchy is *bit-for-tie-key-identical* to the Dijkstra reference by
construction, not by tolerance: partition matrices and Euclidean bounds
are used only to decide *which* POIs need refinement, while every
reported distance comes from :class:`_OriginCursor`, a resumable
multi-source Dijkstra whose settled values follow exactly the recurrence
of :func:`repro.network.dijkstra.shortest_path_lengths` (settled values
are independent of where the search stops, so resuming cannot change
them).  Pruning bounds are sound because the graph enforces the
Euclidean lower-bound property (``SpatialNetwork.add_edge`` rejects
lengths below the chord), and a small safety margin absorbs float
rounding in the assembled upper bounds.  The margin can only cause
extra refinement, never a missed answer.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.geometry.vecmath import FloatArray
from repro.index.knn import TieKey, poi_tie_key
from repro.network.dijkstra import shortest_path_lengths
from repro.network.graph import NetworkLocation, SpatialNetwork
from repro.network.ier import NetworkNeighbor
from repro.obs import OBS

__all__ = [
    "DijkstraIndex",
    "HierarchicalIndex",
    "IndexStats",
    "NetworkIndex",
    "origin_seeds",
]

#: Relative / absolute slack added to pruning comparisons.  Assembled
#: upper bounds and Euclidean lower bounds are float arithmetic over
#: exact invariants; the margin absorbs their rounding so pruning stays
#: sound.  It only ever admits extra candidates for exact refinement.
_MARGIN_REL = 1e-9
_MARGIN_ABS = 1e-7

#: How many per-origin Dijkstra cursors :class:`HierarchicalIndex` keeps
#: alive.  SNNN evaluates many candidates from one origin before moving
#: on, so a small LRU captures nearly all reuse.
_CURSOR_CACHE = 16


@dataclass
class IndexStats:
    """Work counters a :class:`NetworkIndex` accumulates across queries.

    ``settled_vertices`` is the paper-facing cost metric (Section 4 costs
    SNNN by its network expansion); the bench derives the hierarchy-vs-
    Dijkstra speedup from it.
    """

    distance_queries: int = 0
    knn_queries: int = 0
    settled_vertices: int = 0
    partitions_opened: int = 0
    pois_refined: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        self.distance_queries = 0
        self.knn_queries = 0
        self.settled_vertices = 0
        self.partitions_opened = 0
        self.pois_refined = 0


def origin_seeds(origin: NetworkLocation) -> List[Tuple[int, float]]:
    """Multi-source Dijkstra seeds for an on-edge location.

    The two endpoint offsets, in the exact order used by
    :func:`repro.network.dijkstra.network_distance` -- every implementation
    must seed its search identically or settled values drift.
    """
    return [
        (origin.edge.u, origin.offset),
        (origin.edge.v, origin.offset_from_v),
    ]


def _combine(
    origin: NetworkLocation,
    destination: NetworkLocation,
    dist_u: float,
    dist_v: float,
) -> float:
    """Fold endpoint distances into the final on-edge distance.

    Mirrors :func:`repro.network.dijkstra.network_distance` operation for
    operation (same-edge shortcut, then ``min`` of the two endpoint
    routes) so all implementations produce bit-identical floats from the
    same settled values.
    """
    best = math.inf
    if origin.edge.key() == destination.edge.key():
        best = abs(origin.offset - destination.offset)
    via_u = dist_u + destination.offset
    via_v = dist_v + destination.offset_from_v
    return min(best, via_u, via_v)


@runtime_checkable
class NetworkIndex(Protocol):
    """What SNNN needs from a network-distance index.

    Implementations guarantee (the Dijkstra oracle checks all three):

    - :meth:`network_distance` returns the *exact* shortest network
      distance (``inf`` when disconnected), bit-identical to
      :func:`repro.network.dijkstra.network_distance`;
    - :meth:`knn` ranks the registered POIs by
      ``(network_distance, poi_tie_key(payload))`` exactly as
      ``repro.testing.oracles.oracle_network_knn`` does, including
      unreachable POIs at ``inf`` when fewer than ``k`` are reachable;
    - :attr:`stats` bills every settled vertex, so cost comparisons
      between implementations are honest.
    """

    @property
    def network(self) -> SpatialNetwork:
        """The graph this index answers over."""
        ...

    @property
    def stats(self) -> IndexStats:
        """Accumulated work counters (reset with ``stats.reset()``)."""
        ...

    def network_distance(
        self, origin: NetworkLocation, destination: NetworkLocation
    ) -> float:
        """Exact shortest network distance between two on-edge locations."""
        ...

    def register_pois(
        self, pois: Sequence[Tuple[NetworkLocation, Any]]
    ) -> None:
        """Replace the POI set subsequent :meth:`knn` calls answer over."""
        ...

    def knn(self, origin: NetworkLocation, k: int) -> List[NetworkNeighbor]:
        """Top-``k`` registered POIs by exact network distance."""
        ...


# ----------------------------------------------------------------------
# Resumable origin Dijkstra
# ----------------------------------------------------------------------


class _OriginCursor:
    """A pausable multi-source Dijkstra pinned to one origin.

    ``distance_to`` resumes the frozen search until the requested node
    settles.  Because Dijkstra's settled value for a node is a function
    of the seeds and the graph alone (not of when the search stops), the
    values are bit-identical to a fresh
    :func:`~repro.network.dijkstra.shortest_path_lengths` run from the
    same seeds -- which is what makes cursor-based refinement safe to
    diff against the per-query oracle.
    """

    __slots__ = ("_network", "_settled", "_pending")

    def __init__(
        self, network: SpatialNetwork, seeds: Iterable[Tuple[int, float]]
    ) -> None:
        self._network = network
        self._settled: Dict[int, float] = {}
        self._pending: List[Tuple[float, int]] = []
        for node, initial in seeds:
            if initial < 0.0:
                raise ValueError("source distances must be non-negative")
            heapq.heappush(self._pending, (initial, node))

    @property
    def settled_count(self) -> int:
        """Number of vertices settled so far."""
        return len(self._settled)

    def distance_to(self, node: int) -> float:
        """Settled distance to ``node``, expanding as little as possible."""
        settled = self._settled
        if node in settled:
            return settled[node]
        pending = self._pending
        network = self._network
        while pending:
            dist, current = heapq.heappop(pending)
            if current in settled:
                continue
            settled[current] = dist
            for neighbor, edge in network.neighbors(current):
                if neighbor not in settled:
                    heapq.heappush(pending, (dist + edge.length, neighbor))
            if current == node:
                return dist
        return math.inf


# ----------------------------------------------------------------------
# Reference implementation
# ----------------------------------------------------------------------


class DijkstraIndex:
    """The reference :class:`NetworkIndex`: plain Dijkstra, no precompute.

    Point-to-point distances delegate to the seed module with endpoint
    targets; kNN settles the origin's entire component once (exactly what
    the brute-force oracle does) and ranks every registered POI.  This is
    the implementation the differential harness trusts, and the cost
    baseline the hierarchy's settled-vertex speedup is measured against.
    """

    def __init__(self, network: SpatialNetwork) -> None:
        self._network = network
        self._stats = IndexStats()
        self._pois: List[Tuple[NetworkLocation, Any]] = []

    @property
    def network(self) -> SpatialNetwork:
        """The graph this index answers over."""
        return self._network

    @property
    def stats(self) -> IndexStats:
        """Accumulated work counters."""
        return self._stats

    def network_distance(
        self, origin: NetworkLocation, destination: NetworkLocation
    ) -> float:
        """Exact distance via a fresh endpoint-targeted Dijkstra."""
        self._stats.distance_queries += 1
        settled = shortest_path_lengths(
            self._network,
            origin_seeds(origin),
            targets={destination.edge.u, destination.edge.v},
        )
        self._stats.settled_vertices += len(settled)
        return _combine(
            origin,
            destination,
            settled.get(destination.edge.u, math.inf),
            settled.get(destination.edge.v, math.inf),
        )

    def register_pois(
        self, pois: Sequence[Tuple[NetworkLocation, Any]]
    ) -> None:
        """Replace the POI set subsequent :meth:`knn` calls answer over."""
        self._pois = list(pois)

    def knn(self, origin: NetworkLocation, k: int) -> List[NetworkNeighbor]:
        """Top-``k`` POIs from one full-component Dijkstra."""
        self._stats.knn_queries += 1
        if k <= 0 or not self._pois:
            return []
        settled = shortest_path_lengths(self._network, origin_seeds(origin))
        self._stats.settled_vertices += len(settled)
        if OBS.enabled:
            OBS.registry.counter("network.knn_queries", impl="dijkstra").inc()
            OBS.registry.counter(
                "network.settled_vertices", impl="dijkstra"
            ).inc(len(settled))
        ranked: List[Tuple[float, TieKey, int, NetworkLocation, Any]] = []
        for order, (location, payload) in enumerate(self._pois):
            distance = _combine(
                origin,
                location,
                settled.get(location.edge.u, math.inf),
                settled.get(location.edge.v, math.inf),
            )
            ranked.append(
                (distance, poi_tie_key(payload), order, location, payload)
            )
        ranked.sort(key=lambda item: (item[0], item[1], item[2]))
        return [
            NetworkNeighbor(
                payload=payload,
                network_distance=distance,
                # Euclidean by design: kNN results report both metrics
                # because SNNN's stopping rule compares them.
                euclidean_distance=origin.point.distance_to(location.point),  # repro: noqa(RPR003)
            )
            for distance, _, _, location, payload in ranked[:k]
        ]


# ----------------------------------------------------------------------
# Hierarchical partition index
# ----------------------------------------------------------------------


@dataclass
class _Partition:
    """One node of the partition tree.

    Leaves hold their member nodes and a ``borders x members`` matrix of
    exact within-leaf distances; internal partitions hold the union of
    their children's borders and an exact within-partition distance
    matrix over that union (the G-tree "distance matrix").
    """

    pid: int
    parent: Optional[int]
    depth: int
    bbox: Tuple[float, float, float, float]
    children: Tuple[int, ...] = ()
    is_leaf: bool = False
    #: Border nodes: members adjacent to at least one node outside this
    #: partition, sorted by node id.
    borders: Tuple[int, ...] = ()
    #: Leaf only -- sorted member node ids and their matrix columns.
    members: Tuple[int, ...] = ()
    member_col: Dict[int, int] = field(default_factory=dict)
    #: Leaf: ``len(borders) x len(members)`` within-leaf distances.
    #: Internal: ``len(union) x len(union)`` within-partition distances.
    matrix: FloatArray = field(
        default_factory=lambda: np.empty((0, 0), dtype=np.float64)
    )
    #: Internal only -- sorted union of children's borders, the matrix's
    #: row/column space, plus index maps into it.
    union: Tuple[int, ...] = ()
    union_index: Dict[int, int] = field(default_factory=dict)
    child_union_pos: Dict[int, "np.ndarray[Any, np.dtype[np.int64]]"] = field(
        default_factory=dict
    )
    border_union_pos: "np.ndarray[Any, np.dtype[np.int64]]" = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


def _bbox_mindist(
    point_x: float, point_y: float, bbox: Tuple[float, float, float, float]
) -> float:
    """Euclidean distance from a point to a partition's bounding box.

    Euclidean by design: network distance to any node inside the box is
    at least the straight-line distance to the box (the graph enforces
    edge length >= chord), so this is the sound best-first key.
    """
    min_x, min_y, max_x, max_y = bbox
    dx = max(min_x - point_x, 0.0, point_x - max_x)
    dy = max(min_y - point_y, 0.0, point_y - max_y)
    return math.hypot(dx, dy)


def _restricted_dijkstra(
    network: SpatialNetwork, source: int, allowed: FrozenSet[int]
) -> Dict[int, float]:
    """Single-source Dijkstra confined to ``allowed`` vertices.

    Used to fill the leaf matrices: distances that never leave the leaf
    are exact within-leaf distances, which is all the hierarchy stores.
    """
    distances: Dict[int, float] = {}
    pending: List[Tuple[float, int]] = [(0.0, source)]
    while pending:
        dist, node = heapq.heappop(pending)
        if node in distances:
            continue
        distances[node] = dist
        for neighbor, edge in network.neighbors(node):
            if neighbor in allowed and neighbor not in distances:
                heapq.heappush(pending, (dist + edge.length, neighbor))
    return distances


def _floyd_warshall_inplace(matrix: FloatArray) -> None:
    """Exact all-pairs min-plus closure of a small dense matrix.

    Vectorized over the inner two loops; ``inf`` entries propagate
    harmlessly.  The matrices here are border skeletons (hundreds of
    rows at worst near the root), where O(U^3) in numpy is cheap and,
    unlike repeated squaring, needs no O(U^3) temporary.
    """
    count = matrix.shape[0]
    for k in range(count):
        np.minimum(
            matrix,
            np.add.outer(matrix[:, k], matrix[k, :]),
            out=matrix,
        )


class HierarchicalIndex:
    """G-tree-style hierarchical partition index over a road network.

    Build: recursive coordinate bisection (split the wider bbox axis at
    the median, ties broken by node id, so the tree is a pure function
    of the graph) down to ``leaf_size`` members; per-partition border
    sets; exact within-leaf ``border x member`` matrices from restricted
    Dijkstra; exact within-partition ``union x union`` matrices bottom-up
    by Floyd-Warshall over the child-matrix + cut-edge skeleton.

    Search: best-first partition expansion keyed by Euclidean MINDIST to
    the partition bbox, assembled border-matrix upper bounds to tighten
    the running k-th bound, and exact refinement through a resumable
    origin Dijkstra (see the module docstring for why the answers are
    bit-identical to :class:`DijkstraIndex`).
    """

    def __init__(self, network: SpatialNetwork, leaf_size: int = 64) -> None:
        if leaf_size < 2:
            raise ValueError("leaf_size must be at least 2")
        self._network = network
        self._leaf_size = leaf_size
        self._stats = IndexStats()
        self._pois: List[Tuple[NetworkLocation, Any]] = []
        self._pois_by_edge: Dict[Tuple[int, int], List[int]] = {}
        self._buckets: Dict[int, List[int]] = {}
        self._cursors: "OrderedDict[Tuple[Tuple[int, int], float], _OriginCursor]" = (
            OrderedDict()
        )
        self._parts: List[_Partition] = []
        self._leaf_of: Dict[int, int] = {}
        self._leaf_ancestors: Dict[int, FrozenSet[int]] = {}
        self._component: Dict[int, int] = {}
        self._root: Optional[int] = None
        self._build()

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    @property
    def network(self) -> SpatialNetwork:
        """The graph this index answers over."""
        return self._network

    @property
    def stats(self) -> IndexStats:
        """Accumulated work counters."""
        return self._stats

    def network_distance(
        self, origin: NetworkLocation, destination: NetworkLocation
    ) -> float:
        """Exact distance via the origin's resumable Dijkstra cursor.

        Disconnected pairs short-circuit to ``inf`` through the
        precomputed component labels without touching the cursor.
        """
        self._stats.distance_queries += 1
        if (
            self._component[origin.edge.u]
            != self._component[destination.edge.u]
        ):
            return math.inf
        cursor = self._cursor_for(origin)
        before = cursor.settled_count
        # _OriginCursor.distance_to is the resumable Dijkstra (network
        # shortest path), not a Euclidean Point method.
        dist_u = cursor.distance_to(destination.edge.u)  # repro: noqa(RPR003)
        dist_v = cursor.distance_to(destination.edge.v)  # repro: noqa(RPR003)
        self._stats.settled_vertices += cursor.settled_count - before
        return _combine(origin, destination, dist_u, dist_v)

    def register_pois(
        self, pois: Sequence[Tuple[NetworkLocation, Any]]
    ) -> None:
        """Replace the POI set and bucket it by leaf partition.

        A POI on a leaf-straddling edge is bucketed under both endpoint
        leaves, so whichever leaf the search opens first delivers it.
        """
        self._pois = list(pois)
        self._pois_by_edge = {}
        self._buckets = {}
        for idx, (location, _payload) in enumerate(self._pois):
            self._pois_by_edge.setdefault(location.edge.key(), []).append(idx)
            leaves = {
                self._leaf_of[location.edge.u],
                self._leaf_of[location.edge.v],
            }
            for leaf in sorted(leaves):
                self._buckets.setdefault(leaf, []).append(idx)

    def knn(self, origin: NetworkLocation, k: int) -> List[NetworkNeighbor]:
        """Best-first partition expansion with exact refinement.

        Three interleaved streams on one priority queue -- partitions
        keyed by bbox MINDIST, delivered POIs keyed by their Euclidean
        distance -- with the running bound ``U`` = k-th smallest of the
        per-POI upper bounds (assembled estimates, replaced by exact
        distances as refinement lands).  The search stops when the queue
        head exceeds ``U`` plus the float-safety margin; every true
        top-k member is provably refined by then (its Euclidean key is a
        lower bound of its exact distance, which is at most ``U``).
        """
        self._stats.knn_queries += 1
        if k <= 0 or not self._pois or self._root is None:
            return []
        cursor = self._cursor_for(origin)
        settled_before = cursor.settled_count
        origin_comp = self._component[origin.edge.u]
        origin_vecs = self._origin_vectors(origin)

        queue: List[Tuple[float, int, int, int]] = []
        sequence = 0
        point_x, point_y = origin.point.x, origin.point.y
        heapq.heappush(
            queue,
            (
                _bbox_mindist(point_x, point_y, self._parts[self._root].bbox),
                sequence,
                0,
                self._root,
            ),
        )
        delivered: Dict[int, bool] = {}
        bounds: Dict[int, float] = {}
        refined: List[Tuple[float, TieKey, int, NetworkLocation, Any, float]] = []

        def deliver(idx: int) -> None:
            nonlocal sequence
            if idx in delivered:
                return
            delivered[idx] = True
            location, _payload = self._pois[idx]
            # Euclidean by design: the refinement key is the Euclidean
            # lower bound of the POI's network distance (IER ordering).
            euclid = origin.point.distance_to(location.point)  # repro: noqa(RPR003)
            if self._component[location.edge.u] != origin_comp:
                bounds[idx] = math.inf
            else:
                bounds[idx] = self._assembled_upper(
                    origin, origin_vecs, location
                )
            sequence += 1
            heapq.heappush(queue, (euclid, sequence, 1, idx))

        # POIs sharing the origin's edge bypass the partition walk: the
        # same-edge shortcut is not bounded below by any endpoint-leaf
        # MINDIST, so they must be delivered unconditionally.
        for idx in self._pois_by_edge.get(origin.edge.key(), []):
            deliver(idx)

        while queue:
            key, _seq, kind, ref = queue[0]
            bound = self._kth_bound(bounds, k)
            if key > bound * (1.0 + _MARGIN_REL) + _MARGIN_ABS:
                break
            heapq.heappop(queue)
            if kind == 0:
                part = self._parts[ref]
                if part.is_leaf:
                    self._stats.partitions_opened += 1
                    for idx in self._buckets.get(ref, ()):
                        deliver(idx)
                else:
                    for child in part.children:
                        sequence += 1
                        heapq.heappush(
                            queue,
                            (
                                _bbox_mindist(
                                    point_x,
                                    point_y,
                                    self._parts[child].bbox,
                                ),
                                sequence,
                                0,
                                child,
                            ),
                        )
            else:
                location, payload = self._pois[ref]
                if self._component[location.edge.u] != origin_comp:
                    distance = math.inf
                else:
                    # Network shortest-path refinement via the resumable
                    # Dijkstra cursor, not a Euclidean Point method.
                    dist_u = cursor.distance_to(location.edge.u)  # repro: noqa(RPR003)
                    dist_v = cursor.distance_to(location.edge.v)  # repro: noqa(RPR003)
                    distance = _combine(origin, location, dist_u, dist_v)
                bounds[ref] = distance
                self._stats.pois_refined += 1
                refined.append(
                    (distance, poi_tie_key(payload), ref, location, payload, key)
                )

        settled = cursor.settled_count - settled_before
        self._stats.settled_vertices += settled
        if OBS.enabled:
            OBS.registry.counter("network.knn_queries", impl="hierarchy").inc()
            OBS.registry.counter(
                "network.settled_vertices", impl="hierarchy"
            ).inc(settled)
            OBS.registry.counter("network.pois_refined").inc(
                sum(1 for _ in refined)
            )
        refined.sort(key=lambda item: (item[0], item[1], item[2]))
        return [
            NetworkNeighbor(
                payload=payload,
                network_distance=distance,
                euclidean_distance=euclid,
            )
            for distance, _, _, _loc, payload, euclid in refined[:k]
        ]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, int]:
        """Structural summary for benches and docs (deterministic)."""
        leaves = [p for p in self._parts if p.is_leaf]
        return {
            "partitions": len(self._parts),
            "leaves": len(leaves),
            "max_depth": max((p.depth for p in self._parts), default=0),
            "border_nodes": sum(len(p.borders) for p in leaves),
            "matrix_entries": sum(int(p.matrix.size) for p in self._parts),
            "leaf_size": self._leaf_size,
        }

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Construct the partition tree, borders and distance matrices."""
        network = self._network
        ids = sorted(network.node_ids())
        self._component = _component_labels(network, ids)
        if not ids:
            return
        positions = {node: network.node_position(node) for node in ids}
        xs = np.array([positions[n].x for n in ids], dtype=np.float64)
        ys = np.array([positions[n].y for n in ids], dtype=np.float64)
        id_arr = np.array(ids, dtype=np.int64)

        # Recursive median bisection; explicit stack, children created
        # in sorted-x/y order so pids are a pure function of the graph.
        self._root = 0
        stack: List[Tuple[Optional[int], int, "np.ndarray[Any, np.dtype[np.int64]]"]] = [
            (None, 0, np.arange(len(ids), dtype=np.int64))
        ]
        while stack:
            parent, depth, rows = stack.pop()
            sub_x, sub_y = xs[rows], ys[rows]
            bbox = (
                float(sub_x.min()),
                float(sub_y.min()),
                float(sub_x.max()),
                float(sub_y.max()),
            )
            pid = len(self._parts)
            part = _Partition(pid=pid, parent=parent, depth=depth, bbox=bbox)
            self._parts.append(part)
            if parent is not None:
                self._parts[parent].children = self._parts[parent].children + (
                    pid,
                )
            if len(rows) <= self._leaf_size:
                part.is_leaf = True
                members = tuple(int(n) for n in np.sort(id_arr[rows]))
                part.members = members
                part.member_col = {node: col for col, node in enumerate(members)}
                for node in members:
                    self._leaf_of[node] = pid
                continue
            wide_x = (bbox[2] - bbox[0]) >= (bbox[3] - bbox[1])
            coord = sub_x if wide_x else sub_y
            order = np.lexsort((id_arr[rows], coord))
            half = len(rows) // 2
            # Right child pushed first so the left child pops (and gets
            # its pid assigned) first -- keeps pids deterministic.
            stack.append((pid, depth + 1, rows[order[half:]]))
            stack.append((pid, depth + 1, rows[order[:half]]))

        for leaf_pid in sorted(set(self._leaf_of.values())):
            ancestors = set()
            walk: Optional[int] = leaf_pid
            while walk is not None:
                ancestors.add(walk)
                walk = self._parts[walk].parent
            self._leaf_ancestors[leaf_pid] = frozenset(ancestors)

        self._compute_borders()
        self._compute_leaf_matrices()
        self._compute_union_matrices()

    def _contains(self, pid: int, node: int) -> bool:
        """True when ``node`` is a member of partition ``pid``."""
        return pid in self._leaf_ancestors[self._leaf_of[node]]

    def _compute_borders(self) -> None:
        """Find each partition's border set (members adjacent to outside)."""
        network = self._network
        # Children carry higher pids than their parent (creation order),
        # so reverse pid order visits children first; an internal
        # partition's border candidates are its children's borders.
        for part in reversed(self._parts):
            candidates: List[int]
            if part.is_leaf:
                candidates = list(part.members)
            else:
                merged = set()
                for child in part.children:
                    merged.update(self._parts[child].borders)
                candidates = sorted(merged)
            borders = []
            for node in candidates:
                for neighbor, _edge in network.neighbors(node):
                    if not self._contains(part.pid, neighbor):
                        borders.append(node)
                        break
            part.borders = tuple(borders)

    def _compute_leaf_matrices(self) -> None:
        """Exact within-leaf distances from every border to every member."""
        network = self._network
        for part in self._parts:
            if not part.is_leaf:
                continue
            allowed = frozenset(part.members)
            matrix = np.full(
                (len(part.borders), len(part.members)), np.inf, dtype=np.float64
            )
            for row, border in enumerate(part.borders):
                settled = _restricted_dijkstra(network, border, allowed)
                for node, dist in settled.items():
                    matrix[row, part.member_col[node]] = dist
            part.matrix = matrix

    def _child_border_matrix(self, child: _Partition) -> FloatArray:
        """Within-child distances between the child's own border nodes."""
        if child.is_leaf:
            cols = np.array(
                [child.member_col[b] for b in child.borders], dtype=np.int64
            )
            rows = np.arange(len(child.borders), dtype=np.int64)
            return np.asarray(child.matrix[np.ix_(rows, cols)])
        pos = np.array(
            [child.union_index[b] for b in child.borders], dtype=np.int64
        )
        return np.asarray(child.matrix[np.ix_(pos, pos)])

    def _compute_union_matrices(self) -> None:
        """Bottom-up exact within-partition border distance matrices.

        The skeleton graph over a partition's union borders -- child
        border-to-border matrices plus the cut edges between children --
        contains a witness for every within-partition shortest path
        between union nodes, so its Floyd-Warshall closure is exact.
        """
        network = self._network
        for part in reversed(self._parts):
            if part.is_leaf:
                continue
            union_set = set()
            for child in part.children:
                union_set.update(self._parts[child].borders)
            union = tuple(sorted(union_set))
            part.union = union
            part.union_index = {node: i for i, node in enumerate(union)}
            count = len(union)
            matrix = np.full((count, count), np.inf, dtype=np.float64)
            np.fill_diagonal(matrix, 0.0)
            for child_pid in part.children:
                child = self._parts[child_pid]
                pos = np.array(
                    [part.union_index[b] for b in child.borders],
                    dtype=np.int64,
                )
                part.child_union_pos[child_pid] = pos
                if len(pos):
                    block = self._child_border_matrix(child)
                    grid = np.ix_(pos, pos)
                    matrix[grid] = np.minimum(matrix[grid], block)
            for node in union:
                i = part.union_index[node]
                for neighbor, edge in network.neighbors(node):
                    j = part.union_index.get(neighbor)
                    if j is not None and self._contains(part.pid, neighbor):
                        if edge.length < matrix[i, j]:
                            matrix[i, j] = edge.length
                            matrix[j, i] = edge.length
            _floyd_warshall_inplace(matrix)
            part.matrix = matrix
            part.border_union_pos = np.array(
                [part.union_index[b] for b in part.borders], dtype=np.int64
            )

    # ------------------------------------------------------------------
    # assembled upper bounds
    # ------------------------------------------------------------------
    def _lift_node(self, node: int, offset: float) -> Dict[int, FloatArray]:
        """Distances from an on-edge position to border sets up the tree.

        Returns, per non-root partition on ``node``'s root path, an
        upper-bound vector of distances (through ``node`` plus
        ``offset``) to that partition's border nodes.  Each level embeds
        the previous vector in the parent's union space and relaxes it
        through the parent matrix -- the classic G-tree assembly step.
        """
        leaf_pid = self._leaf_of[node]
        leaf = self._parts[leaf_pid]
        vectors: Dict[int, FloatArray] = {}
        vec = np.asarray(leaf.matrix[:, leaf.member_col[node]] + offset)
        current = leaf
        while True:
            if current.parent is None:
                break
            vectors[current.pid] = vec
            parent = self._parts[current.parent]
            full = np.full(len(parent.union), np.inf, dtype=np.float64)
            pos = parent.child_union_pos[current.pid]
            if len(pos):
                full[pos] = np.minimum(full[pos], vec)
            if len(full):
                to_union = np.min(full[:, None] + parent.matrix, axis=0)
            else:
                to_union = full
            vec = np.asarray(to_union[parent.border_union_pos])
            current = parent
        return vectors

    def _origin_vectors(self, origin: NetworkLocation) -> Dict[int, FloatArray]:
        """Merged border-distance vectors for an on-edge origin."""
        vec_u = self._lift_node(origin.edge.u, origin.offset)
        vec_v = self._lift_node(origin.edge.v, origin.offset_from_v)
        merged = dict(vec_u)
        for pid, vec in vec_v.items():
            if pid in merged:
                merged[pid] = np.minimum(merged[pid], vec)
            else:
                merged[pid] = vec
        return merged

    def _assembled_upper(
        self,
        origin: NetworkLocation,
        origin_vecs: Dict[int, FloatArray],
        destination: NetworkLocation,
    ) -> float:
        """Assembled upper bound on the origin-to-destination distance.

        Combines the origin's precomputed vectors with the destination's
        lifted vectors at every tree level: through a shared partition's
        borders, or across the LCA's union matrix between sibling
        children.  Exact when the true path stays inside the LCA; an
        upper bound otherwise -- either way sound for tightening the
        k-th bound, never for final answers.
        """
        best = math.inf
        if origin.edge.key() == destination.edge.key():
            best = abs(origin.offset - destination.offset)
        dest_vecs = self._origin_vectors(destination)
        for pid, dest_vec in dest_vecs.items():
            origin_vec = origin_vecs.get(pid)
            if origin_vec is not None and len(dest_vec):
                through = float(np.min(origin_vec + dest_vec))
                if through < best:
                    best = through
            parent_pid = self._parts[pid].parent
            if parent_pid is None:
                continue
            parent = self._parts[parent_pid]
            for sibling in parent.children:
                if sibling == pid:
                    continue
                origin_side = origin_vecs.get(sibling)
                if origin_side is None or not len(origin_side) or not len(
                    dest_vec
                ):
                    continue
                pos_o = parent.child_union_pos[sibling]
                pos_d = parent.child_union_pos[pid]
                across = parent.matrix[np.ix_(pos_o, pos_d)]
                through = float(
                    np.min(origin_side[:, None] + across + dest_vec[None, :])
                )
                if through < best:
                    best = through
        return best

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _cursor_for(self, origin: NetworkLocation) -> _OriginCursor:
        """LRU-cached resumable Dijkstra cursor for ``origin``."""
        key = (origin.edge.key(), origin.offset)
        cursor = self._cursors.get(key)
        if cursor is None:
            cursor = _OriginCursor(self._network, origin_seeds(origin))
            self._cursors[key] = cursor
            if len(self._cursors) > _CURSOR_CACHE:
                self._cursors.popitem(last=False)
        else:
            self._cursors.move_to_end(key)
        return cursor

    @staticmethod
    def _kth_bound(bounds: Dict[int, float], k: int) -> float:
        """k-th smallest current upper bound, ``inf`` with fewer than k."""
        if len(bounds) < k:
            return math.inf
        return heapq.nsmallest(k, bounds.values())[-1]


def _component_labels(
    network: SpatialNetwork, ids: Sequence[int]
) -> Dict[int, int]:
    """Deterministic connected-component label per node."""
    labels: Dict[int, int] = {}
    next_label = 0
    for start in ids:
        if start in labels:
            continue
        labels[start] = next_label
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor, _edge in network.neighbors(node):
                if neighbor not in labels:
                    labels[neighbor] = next_label
                    stack.append(neighbor)
        next_label += 1
    return labels
