"""Real road-graph loaders: TIGER edge lists and OSM XML.

The paper's experiments run on TIGER/Line street segments for the Los
Angeles and Riverside regions (Section 4.1.2).  This module turns the
two interchange formats those graphs ship in into a
:class:`~repro.network.graph.SpatialNetwork`:

- **TIGER edge lists** -- the ``.cnode`` / ``.cedge`` pair used
  throughout the road-network kNN literature ("kNN on Road Networks: A
  Journey in Experimentation", arXiv:1601.01549): one whitespace-
  separated node per line (``id x y``) and one edge per line
  (``id u v length [class]``).  :func:`write_tiger` emits the same
  format, byte-reproducibly, so extracts can be committed.
- **OSM XML** -- ``<node>`` / ``<way>`` documents from the Overpass API
  or ``osmium``-converted extracts.  Binary ``.pbf`` extracts are
  rejected with a pointer to the XML conversion (parsing PBF needs a
  protobuf stack this project deliberately does not depend on).

Geographic coordinates are normalized through a :class:`RegionFrame`
(equirectangular lon/lat -> miles around a region anchor; frames for
the paper's two regions ship predefined), and
:func:`downsample` grows a deterministic connected extract so CI can
exercise a committed ~5k-node graph while ``repro-bench full`` builds
100k+ nodes.  All readers are gzip-transparent.
"""

from __future__ import annotations

import gzip
import io
import math
import os
import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Tuple, Union

from repro.geometry.point import Point
from repro.network.graph import RoadClass, SpatialNetwork

__all__ = [
    "LOS_ANGELES",
    "MILES_PER_DEGREE",
    "RIVERSIDE",
    "RegionFrame",
    "bundled_extract_paths",
    "downsample",
    "load_bundled_extract",
    "load_osm_xml",
    "load_tiger",
    "write_tiger",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Length of one degree of latitude in statute miles (WGS-84 mean).
MILES_PER_DEGREE = 69.172


@dataclass(frozen=True)
class RegionFrame:
    """Equirectangular projection anchored on one experiment region.

    ``project`` maps geographic coordinates into the plane the rest of
    the system works in: miles east/north of ``(anchor_lon,
    anchor_lat)``, with longitudes shrunk by the anchor latitude's
    cosine.  Over a metro-sized region the distortion is far below the
    road-length noise, which is all the paper's cost model needs.
    """

    name: str
    anchor_lon: float
    anchor_lat: float

    def project(self, lon: float, lat: float) -> Point:
        """Geographic ``(lon, lat)`` degrees -> plane :class:`Point` in miles."""
        scale = math.cos(math.radians(self.anchor_lat))
        return Point(
            (lon - self.anchor_lon) * scale * MILES_PER_DEGREE,
            (lat - self.anchor_lat) * MILES_PER_DEGREE,
        )


#: The paper's two experiment regions (Section 4.1.2).
LOS_ANGELES = RegionFrame("los-angeles", anchor_lon=-118.41, anchor_lat=34.02)
RIVERSIDE = RegionFrame("riverside", anchor_lon=-117.40, anchor_lat=33.95)

#: TIGER CFCC prefixes -> modeling road class (Section 4.1.2 assigns the
#: per-class speeds).  ``A1`` primary highways, ``A2`` secondary roads,
#: everything else local/rural.
_CFCC_CLASSES: Dict[str, RoadClass] = {
    "A1": RoadClass.PRIMARY_HIGHWAY,
    "A2": RoadClass.SECONDARY_ROAD,
    "A3": RoadClass.RURAL_ROAD,
    "A4": RoadClass.RURAL_ROAD,
}

#: OSM ``highway=`` values -> modeling road class; unlisted tags are
#: rural/local.
_OSM_HIGHWAY_CLASSES: Dict[str, RoadClass] = {
    "motorway": RoadClass.PRIMARY_HIGHWAY,
    "trunk": RoadClass.PRIMARY_HIGHWAY,
    "primary": RoadClass.PRIMARY_HIGHWAY,
    "secondary": RoadClass.SECONDARY_ROAD,
    "tertiary": RoadClass.SECONDARY_ROAD,
    "residential": RoadClass.RURAL_ROAD,
    "unclassified": RoadClass.RURAL_ROAD,
}


def _open_text(path: PathLike) -> IO[str]:
    """Open a possibly-gzipped text file for reading."""
    raw = open(path, "rb")
    magic = raw.read(2)
    raw.seek(0)
    if magic == b"\x1f\x8b":
        return io.TextIOWrapper(gzip.GzipFile(fileobj=raw), encoding="utf-8")
    return io.TextIOWrapper(raw, encoding="utf-8")


def _parse_error(path: PathLike, line_no: int, message: str) -> ValueError:
    """Uniform ``file:line: message`` parse failure."""
    return ValueError(f"{os.fspath(path)}:{line_no}: {message}")


# ----------------------------------------------------------------------
# TIGER edge lists
# ----------------------------------------------------------------------


def load_tiger(
    nodes_path: PathLike,
    edges_path: PathLike,
    scale: float = 1.0,
) -> SpatialNetwork:
    """Load a ``.cnode`` / ``.cedge`` pair into a :class:`SpatialNetwork`.

    Node lines are ``id x y`` (plane coordinates, already projected);
    edge lines are ``id u v length`` with an optional trailing CFCC
    class code (``A1`` .. ``A4``).  ``scale`` multiplies coordinates
    *and* lengths (e.g. to convert meters to miles).  Malformed or
    truncated input raises :class:`ValueError` naming the file, line
    and field at fault; edge lengths below the Euclidean chord are
    rejected by the graph's lower-bound invariant with the same
    context.
    """
    network = SpatialNetwork()
    id_map: Dict[int, int] = {}
    with _open_text(nodes_path) as handle:
        for line_no, line in enumerate(handle, start=1):
            fields = line.split()
            if not fields or fields[0].startswith("#"):
                continue
            if len(fields) != 3:
                raise _parse_error(
                    nodes_path,
                    line_no,
                    f"expected 3 fields `id x y`, got {len(fields)}",
                )
            try:
                file_id = int(fields[0])
                x, y = float(fields[1]), float(fields[2])
            except ValueError as exc:
                raise _parse_error(
                    nodes_path, line_no, f"non-numeric field: {exc}"
                ) from None
            if file_id in id_map:
                raise _parse_error(
                    nodes_path, line_no, f"duplicate node id {file_id}"
                )
            id_map[file_id] = network.add_node(Point(x * scale, y * scale))
    with _open_text(edges_path) as handle:
        for line_no, line in enumerate(handle, start=1):
            fields = line.split()
            if not fields or fields[0].startswith("#"):
                continue
            if len(fields) not in (4, 5):
                raise _parse_error(
                    edges_path,
                    line_no,
                    "expected 4 or 5 fields `id u v length [class]`, "
                    f"got {len(fields)}",
                )
            try:
                u, v = int(fields[1]), int(fields[2])
                length = float(fields[3])
            except ValueError as exc:
                raise _parse_error(
                    edges_path, line_no, f"non-numeric field: {exc}"
                ) from None
            road_class = RoadClass.SECONDARY_ROAD
            if len(fields) == 5:
                cfcc = fields[4][:2].upper()
                if cfcc not in _CFCC_CLASSES:
                    raise _parse_error(
                        edges_path,
                        line_no,
                        f"unknown CFCC class {fields[4]!r} "
                        f"(expected one of {sorted(_CFCC_CLASSES)})",
                    )
                road_class = _CFCC_CLASSES[cfcc]
            for endpoint in (u, v):
                if endpoint not in id_map:
                    raise _parse_error(
                        edges_path,
                        line_no,
                        f"edge references unknown node id {endpoint}",
                    )
            if u == v:
                raise _parse_error(
                    edges_path, line_no, f"self-loop edge on node {u}"
                )
            try:
                network.add_edge(
                    id_map[u], id_map[v], road_class, length * scale
                )
            except ValueError as exc:
                raise _parse_error(edges_path, line_no, str(exc)) from None
    return network


_CLASS_CFCC = {
    RoadClass.PRIMARY_HIGHWAY: "A1",
    RoadClass.SECONDARY_ROAD: "A2",
    RoadClass.RURAL_ROAD: "A3",
}


def write_tiger(
    network: SpatialNetwork, nodes_path: PathLike, edges_path: PathLike
) -> None:
    """Write the ``.cnode`` / ``.cedge`` pair :func:`load_tiger` reads.

    Output is byte-deterministic for a given graph: nodes in id order,
    edges in canonical-key order, ``repr``-exact floats, and gzip (when
    a path ends in ``.gz``) with a zeroed mtime and no embedded name --
    so a committed extract can be re-generated and diffed.
    """

    def _sink(path: PathLike) -> IO[str]:
        if os.fspath(path).endswith(".gz"):
            raw = open(path, "wb")
            return io.TextIOWrapper(
                gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0),
                encoding="utf-8",
            )
        return open(path, "w", encoding="utf-8")

    with _sink(nodes_path) as nodes:
        for node in sorted(network.node_ids()):
            position = network.node_position(node)
            nodes.write(f"{node} {position.x!r} {position.y!r}\n")
    with _sink(edges_path) as edges:
        ordered = sorted(network.edges(), key=lambda edge: edge.key())
        for edge_id, edge in enumerate(ordered):
            a, b = edge.key()
            cfcc = _CLASS_CFCC[edge.road_class]
            edges.write(f"{edge_id} {a} {b} {edge.length!r} {cfcc}\n")


# ----------------------------------------------------------------------
# OSM XML
# ----------------------------------------------------------------------


def load_osm_xml(
    path: PathLike,
    frame: Optional[RegionFrame] = None,
    keep_untagged_ways: bool = False,
) -> SpatialNetwork:
    """Load an OSM XML extract (``.osm``, optionally gzipped).

    Ways carrying a ``highway`` tag contribute one edge per consecutive
    ``<nd>`` pair; nodes referenced by no kept way are dropped.  Edge
    lengths are the projected chord lengths through ``frame`` (default:
    an equirectangular frame anchored at the extract's mean
    coordinate).  ``keep_untagged_ways`` also admits ways without a
    ``highway`` tag, as rural roads.

    Binary ``.pbf`` extracts are rejected up front: convert with
    ``osmium cat extract.pbf -o extract.osm`` first.
    """
    fs_path = os.fspath(path)
    with open(path, "rb") as probe:
        head = probe.read(4)
    if fs_path.endswith(".pbf") or head[:4] == b"\x00\x00\x00\x0d":
        raise ValueError(
            f"{fs_path}: OSM PBF extracts are not supported (parsing them "
            "needs a protobuf dependency); convert to XML first, e.g. "
            "`osmium cat extract.pbf -o extract.osm`"
        )
    try:
        with _open_text(path) as handle:
            tree = ElementTree.parse(handle)
    except ElementTree.ParseError as exc:
        raise ValueError(f"{fs_path}: not well-formed OSM XML: {exc}") from None
    root = tree.getroot()
    if root.tag != "osm":
        raise ValueError(
            f"{fs_path}: root element is <{root.tag}>, expected <osm>"
        )

    coords: Dict[int, Tuple[float, float]] = {}
    for element in root.iter("node"):
        try:
            osm_id = int(element.attrib["id"])
            lon = float(element.attrib["lon"])
            lat = float(element.attrib["lat"])
        except (KeyError, ValueError) as exc:
            raise ValueError(
                f"{fs_path}: <node> missing or non-numeric id/lon/lat: {exc}"
            ) from None
        coords[osm_id] = (lon, lat)

    ways: List[Tuple[List[int], RoadClass]] = []
    for way in root.iter("way"):
        highway: Optional[str] = None
        for tag in way.iter("tag"):
            if tag.attrib.get("k") == "highway":
                highway = tag.attrib.get("v", "")
        if highway is None and not keep_untagged_ways:
            continue
        refs: List[int] = []
        for nd in way.iter("nd"):
            try:
                ref = int(nd.attrib["ref"])
            except (KeyError, ValueError) as exc:
                raise ValueError(
                    f"{fs_path}: <nd> missing or non-numeric ref in way "
                    f"{way.attrib.get('id', '?')}: {exc}"
                ) from None
            if ref not in coords:
                raise ValueError(
                    f"{fs_path}: way {way.attrib.get('id', '?')} references "
                    f"node {ref} absent from the extract (truncated file?)"
                )
            refs.append(ref)
        if len(refs) < 2:
            continue
        road_class = _OSM_HIGHWAY_CLASSES.get(
            highway or "", RoadClass.RURAL_ROAD
        )
        ways.append((refs, road_class))

    if frame is None:
        if not coords:
            raise ValueError(f"{fs_path}: extract contains no <node> elements")
        lons = [lon for lon, _lat in coords.values()]
        lats = [lat for _lon, lat in coords.values()]
        frame = RegionFrame(
            "auto", sum(lons) / len(lons), sum(lats) / len(lats)
        )

    network = SpatialNetwork()
    id_map: Dict[int, int] = {}
    for refs, _road_class in ways:
        for ref in refs:
            if ref not in id_map:
                lon, lat = coords[ref]
                id_map[ref] = network.add_node(frame.project(lon, lat))
    for refs, road_class in ways:
        for a, b in zip(refs, refs[1:]):
            if a == b or network.edge_between(id_map[a], id_map[b]) is not None:
                continue
            try:
                network.add_edge(id_map[a], id_map[b], road_class)
            except ValueError:
                # Coincident nodes (duplicate survey points) produce
                # zero-length chords; skip the degenerate segment.
                continue
    return network


# ----------------------------------------------------------------------
# Deterministic downsampling + the committed extract
# ----------------------------------------------------------------------


def downsample(
    network: SpatialNetwork, target_nodes: int, seed: int = 0
) -> SpatialNetwork:
    """Grow a connected ~``target_nodes`` extract, deterministically.

    Breadth-first ball growth from a seed-chosen start inside the
    largest component, then the induced subgraph with nodes renumbered
    in sorted-id order -- a pure function of ``(network, target_nodes,
    seed)``, so the same call always reproduces the committed extract
    byte for byte (see :func:`write_tiger`).
    """
    if target_nodes < 1:
        raise ValueError("target_nodes must be positive")
    component = sorted(network.largest_component_nodes())
    if not component:
        return SpatialNetwork()
    # A Lehmer step keeps the start choice deterministic without
    # involving `random` (the module stays importable in determinism
    # audits): map the seed into the component.
    start = component[(seed * 48271 + 11) % len(component)]
    keep: List[int] = []
    seen = {start}
    frontier = [start]
    while frontier and len(keep) < target_nodes:
        next_frontier: List[int] = []
        for node in frontier:
            if len(keep) >= target_nodes:
                break
            keep.append(node)
            for neighbor, _edge in network.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    kept = set(keep)
    extract = SpatialNetwork()
    id_map: Dict[int, int] = {}
    for node in sorted(kept):
        id_map[node] = extract.add_node(network.node_position(node))
    for edge in sorted(network.edges(), key=lambda e: e.key()):
        if edge.u in kept and edge.v in kept:
            extract.add_edge(
                id_map[edge.u], id_map[edge.v], edge.road_class, edge.length
            )
    return extract


def bundled_extract_paths() -> Tuple[str, str]:
    """Filesystem paths of the committed ~5k-node LA-frame extract."""
    data_dir = os.path.join(os.path.dirname(__file__), "data")
    return (
        os.path.join(data_dir, "la_extract_5k.cnode.gz"),
        os.path.join(data_dir, "la_extract_5k.cedge.gz"),
    )


def load_bundled_extract() -> SpatialNetwork:
    """Load the committed ~5k-node extract CI benchmarks against."""
    nodes_path, edges_path = bundled_extract_paths()
    return load_tiger(nodes_path, edges_path)
