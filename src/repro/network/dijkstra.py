"""Shortest paths over the spatial network.

Dijkstra's algorithm [Dijkstra 1959] is the basis for all network-distance
computations in the paper (Section 3.4).  Three entry points:

- :func:`shortest_path_lengths` -- single- or multi-source distances with
  optional early termination (target set or distance cutoff);
- :func:`shortest_path` -- one concrete node-to-node path (used by the
  road-network mobility model to drive along roads);
- :func:`network_distance` -- exact distance between two *on-edge*
  locations, handling the same-edge shortcut and the four endpoint
  combinations.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.network.graph import NetworkLocation, SpatialNetwork

__all__ = ["shortest_path_lengths", "shortest_path", "network_distance"]


def shortest_path_lengths(
    network: SpatialNetwork,
    sources: Iterable[Tuple[int, float]],
    targets: Optional[Iterable[int]] = None,
    cutoff: float = math.inf,
) -> Dict[int, float]:
    """Dijkstra from weighted sources.

    ``sources`` is an iterable of ``(node, initial_distance)`` -- the
    multi-source form lets on-edge locations seed the search with their
    two endpoint offsets.  The search stops once every node in ``targets``
    is settled or all reachable nodes within ``cutoff`` are settled.
    Returns settled distances only.
    """
    distances: Dict[int, float] = {}
    pending: List[Tuple[float, int]] = []
    for node, initial in sources:
        if initial < 0.0:
            raise ValueError("source distances must be non-negative")
        heapq.heappush(pending, (initial, node))
    remaining_targets = set(targets) if targets is not None else None

    while pending:
        dist, node = heapq.heappop(pending)
        if node in distances:
            continue
        if dist > cutoff:
            break
        distances[node] = dist
        if remaining_targets is not None:
            remaining_targets.discard(node)
            if not remaining_targets:
                break
        for neighbor, edge in network.neighbors(node):
            if neighbor not in distances:
                heapq.heappush(pending, (dist + edge.length, neighbor))
    return distances


def shortest_path(
    network: SpatialNetwork, source: int, target: int
) -> Optional[List[int]]:
    """Node sequence of a shortest path, or ``None`` when unreachable."""
    if source == target:
        return [source]
    settled: Dict[int, float] = {}
    tentative: Dict[int, float] = {source: 0.0}
    predecessor: Dict[int, int] = {}
    pending: List[Tuple[float, int]] = [(0.0, source)]
    while pending:
        dist, node = heapq.heappop(pending)
        if node in settled:
            continue
        settled[node] = dist
        if node == target:
            break
        for neighbor, edge in network.neighbors(node):
            if neighbor in settled:
                continue
            candidate = dist + edge.length
            if candidate < tentative.get(neighbor, math.inf):
                tentative[neighbor] = candidate
                predecessor[neighbor] = node
                heapq.heappush(pending, (candidate, neighbor))
    if target not in settled:
        return None
    path = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    return path


def network_distance(
    network: SpatialNetwork,
    origin: NetworkLocation,
    destination: NetworkLocation,
) -> float:
    """Exact shortest network distance between two on-edge locations.

    Both the direct along-edge route (when the two locations share an
    edge) and all endpoint-to-endpoint routes are considered; the minimum
    wins.  Returns ``inf`` when the locations are disconnected.
    """
    best = math.inf
    if origin.edge.key() == destination.edge.key():
        best = abs(origin.offset - destination.offset)

    source_seeds = [
        (origin.edge.u, origin.offset),
        (origin.edge.v, origin.offset_from_v),
    ]
    target_nodes = {destination.edge.u, destination.edge.v}
    settled = shortest_path_lengths(network, source_seeds, targets=target_nodes)
    via_u = settled.get(destination.edge.u, math.inf) + destination.offset
    via_v = settled.get(destination.edge.v, math.inf) + destination.offset_from_v
    return min(best, via_u, via_v)
