"""Network-distance kNN algorithms: IER and INE.

Papadias et al. proposed two algorithms for nearest neighbor queries in
spatial network databases; the paper builds its SNNN algorithm on the
first one:

- *Incremental Euclidean Restriction* (IER): repeatedly fetch the next
  Euclidean NN, compute its network distance, and stop once the next
  Euclidean distance exceeds the current k-th network distance.  The
  Euclidean lower-bound property (``ED <= ND``) makes this correct.
- *Incremental Network Expansion* (INE): a Dijkstra-style expansion from
  the query location that discovers POIs in network-distance order,
  included as the comparator and as a brute-force oracle for tests.

Both are written against abstract inputs -- an iterator of Euclidean
neighbors and a network-distance function for IER; the graph plus POI
locations for INE -- so that the core SNNN algorithm can feed IER from
*peers and server combined*.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from repro.index.knn import NeighborResult
from repro.network.graph import NetworkLocation, SpatialNetwork

__all__ = [
    "NetworkNeighbor",
    "incremental_euclidean_restriction",
    "incremental_network_expansion",
]


@dataclass(frozen=True, slots=True)
class NetworkNeighbor:
    """A kNN result in network distance.

    ``euclidean_distance`` is kept alongside because SNNN's stopping rule
    compares the two metrics.
    """

    payload: Any
    network_distance: float
    euclidean_distance: float


def incremental_euclidean_restriction(
    euclidean_source: Iterator[NeighborResult],
    network_distance_of: Callable[[NeighborResult], float],
    k: int,
) -> List[NetworkNeighbor]:
    """IER-kNN over an incremental Euclidean neighbor stream.

    ``euclidean_source`` must yield neighbors in ascending Euclidean
    distance; ``network_distance_of`` evaluates the (expensive) network
    metric.  Stops as soon as the next Euclidean distance exceeds the
    k-th best network distance found so far (the search upper bound
    ``S_bound`` of Algorithm 2).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return []
    # Max-heap of the k best network distances (negated).
    best: List[Tuple[float, int, NetworkNeighbor]] = []
    order = 0

    def bound() -> float:
        return -best[0][0] if len(best) == k else math.inf

    for candidate in euclidean_source:
        if candidate.distance > bound():
            break
        nd = network_distance_of(candidate)
        if math.isinf(nd):
            continue
        if nd < bound() or len(best) < k:
            neighbor = NetworkNeighbor(candidate.payload, nd, candidate.distance)
            heapq.heappush(best, (-nd, order, neighbor))
            order += 1
            if len(best) > k:
                heapq.heappop(best)
    ordered = sorted(best, key=lambda item: -item[0])
    return [item[2] for item in ordered]


def incremental_network_expansion(
    network: SpatialNetwork,
    origin: NetworkLocation,
    pois: Sequence[Tuple[NetworkLocation, Any]],
    k: int,
) -> List[NetworkNeighbor]:
    """INE-kNN: Dijkstra expansion from ``origin`` until k POIs are final.

    ``pois`` are POIs snapped onto the network.  The expansion settles
    nodes in distance order; a POI's candidate distance (via its edge
    endpoints, or directly when it shares the origin's edge) becomes final
    once the expansion frontier passes it.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0 or not pois:
        return []

    # Candidate network distance per POI index; improves as endpoints settle.
    candidates: Dict[int, float] = {}
    for index, (location, _) in enumerate(pois):
        if location.edge.key() == origin.edge.key():
            candidates[index] = abs(location.offset - origin.offset)

    # Group POIs by incident node for O(1) updates when a node settles.
    pois_by_node: Dict[int, List[Tuple[int, float]]] = {}
    for index, (location, _) in enumerate(pois):
        pois_by_node.setdefault(location.edge.u, []).append((index, location.offset))
        pois_by_node.setdefault(location.edge.v, []).append(
            (index, location.offset_from_v)
        )

    settled: Dict[int, float] = {}
    pending: List[Tuple[float, int]] = [
        (origin.offset, origin.edge.u),
        (origin.offset_from_v, origin.edge.v),
    ]
    heapq.heapify(pending)

    def kth_candidate() -> float:
        if len(candidates) < k:
            return math.inf
        return sorted(candidates.values())[k - 1]

    while pending:
        frontier, node = heapq.heappop(pending)
        if node in settled:
            continue
        # Once the k-th candidate cannot be improved by any unsettled node,
        # the top-k is final.
        if kth_candidate() <= frontier:
            break
        settled[node] = frontier
        for index, extra in pois_by_node.get(node, ()):
            candidate = frontier + extra
            if candidate < candidates.get(index, math.inf):
                candidates[index] = candidate
        for neighbor, edge in network.neighbors(node):
            if neighbor not in settled:
                heapq.heappush(pending, (frontier + edge.length, neighbor))

    ordered = sorted(candidates.items(), key=lambda item: item[1])[:k]
    results = []
    for index, nd in ordered:
        location, payload = pois[index]
        results.append(
            # Euclidean by design: IER reports ED alongside ND as the
            # lower bound that justified the expansion order.
            NetworkNeighbor(payload, nd, origin.point.distance_to(location.point))  # repro: noqa(RPR003)
        )
    return results
