"""Command-line entry point for regenerating paper artifacts.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments fig9 --quality fast
    repro-experiments fig17 --quality full --seed 3
    repro-experiments all --quality fast

Figures print the same series the paper plots (see EXPERIMENTS.md for
the paper-vs-measured comparison).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import figures
from repro.experiments.runner import FigureResult, Quality, format_figure, format_table

__all__ = ["main"]

_FIGURES: Dict[str, Callable] = {
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
    "fig15": figures.fig15,
    "fig16": figures.fig16,
    "fig17": figures.fig17,
    "free-movement": figures.free_movement_comparison,
    "ablation-coverage": figures.ablation_coverage_backend,
    "ablation-rtree": figures.ablation_rtree_split,
    "snnn-study": figures.snnn_cost_study,
}


def _render(name: str, result) -> str:
    if isinstance(result, FigureResult):
        return format_figure(result)
    if isinstance(result, dict):
        rows = []
        for key, value in result.items():
            if isinstance(value, dict):
                rows.append((key,) + tuple(value.values()))
            else:
                rows.append((key, value))
        return format_table(name, ["metric", "value(s)"], rows)
    return str(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--quality",
        choices=["fast", "full"],
        default="fast",
        help="fast: benchmark-sized runs; full: paper-scale horizons",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name, func in _FIGURES.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:>18}  {doc}")
        return 0

    quality = Quality.FULL if args.quality == "full" else Quality.FAST
    targets = list(_FIGURES) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in _FIGURES]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(try 'repro-experiments list')"
        )

    for name in targets:
        started = time.perf_counter()
        result = _FIGURES[name](quality=quality, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(_render(name, result))
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
