"""Sweep machinery and rendering for the experiment harness.

The paper's mobile-host figures all have the same shape: one sub-figure
per region (LA / SYN / RV), an x-axis parameter, and three percentage
series ("Queries Solved by the Server / Single-Peer / Multi-Peer").
:func:`sweep_parameter` produces exactly that structure; benchmarks and
the CLI render it with :func:`format_figure`.

``Quality`` trades fidelity for runtime: FAST is sized for CI-style
benchmark runs (shorter metered windows, smaller 30x30 scale windows,
fewer x points) while FULL approaches the paper's own horizons.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.config import MovementMode, ParameterSet, SimulationConfig
from repro.sim.simulation import Simulation
from repro.sim.stats import SimulationMetrics

__all__ = [
    "FigureResult",
    "Quality",
    "format_figure",
    "run_one",
    "sweep_parameter",
]

SERIES_LABELS = ("server", "single_peer", "multi_peer")


class Quality(enum.Enum):
    """Runtime/fidelity trade-off for experiment runs."""

    FAST = "fast"
    FULL = "full"


@dataclass
class FigureResult:
    """One reproduced figure: per-region series over a swept parameter."""

    figure_id: str
    title: str
    x_label: str
    xs: List[float]
    # region -> series label -> values (percentages, aligned with xs)
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    notes: str = ""

    def region_series(self, region: str, label: str) -> List[float]:
        return self.series[region][label]


def run_one(
    params: ParameterSet,
    *,
    mode: MovementMode = MovementMode.ROAD_NETWORK,
    seed: int = 0,
    t_execution_s: Optional[float] = None,
    k_range: Optional[Tuple[int, int]] = None,
    config_overrides: Optional[dict] = None,
) -> SimulationMetrics:
    """Run a single simulation and return its metrics."""
    overrides = dict(config_overrides or {})
    config = SimulationConfig(
        parameters=params,
        movement_mode=mode,
        seed=seed,
        t_execution_s=t_execution_s,
        k_range=k_range,
        **overrides,
    )
    return Simulation(config).run()


def sweep_parameter(
    figure_id: str,
    title: str,
    x_label: str,
    xs: Sequence[float],
    regions: Dict[str, Callable[[], ParameterSet]],
    make_params: Callable[[ParameterSet, float], ParameterSet],
    *,
    mode: MovementMode = MovementMode.ROAD_NETWORK,
    seed: int = 0,
    t_execution_s: Optional[float] = None,
    k_range_of: Optional[Callable[[float], Optional[Tuple[int, int]]]] = None,
    config_overrides: Optional[dict] = None,
    notes: str = "",
) -> FigureResult:
    """Run one simulation per (region, x) pair and collect the series.

    ``make_params`` transforms the region's base parameter set for each x
    value (e.g. override the transmission range).  ``k_range_of`` may
    supply a per-x uniform k range (used by the k sweeps).
    """
    result = FigureResult(figure_id, title, x_label, list(xs))
    for region, factory in regions.items():
        per_label: Dict[str, List[float]] = {label: [] for label in SERIES_LABELS}
        for x in xs:
            params = make_params(factory(), x)
            metrics = run_one(
                params,
                mode=mode,
                seed=seed,
                t_execution_s=t_execution_s,
                k_range=k_range_of(x) if k_range_of is not None else None,
                config_overrides=config_overrides,
            )
            percentages = metrics.percentages()
            for label in SERIES_LABELS:
                per_label[label].append(percentages[label])
        result.series[region] = per_label
    return result


def format_figure(result: FigureResult, width: int = 9) -> str:
    """Render a FigureResult as the ASCII analogue of the paper's plot."""
    lines = [f"== {result.figure_id}: {result.title} =="]
    if result.notes:
        lines.append(f"   ({result.notes})")
    header = f"{result.x_label:>20} " + " ".join(
        f"{x:>{width}g}" for x in result.xs
    )
    for region, series in result.series.items():
        lines.append(f"-- {region} --")
        lines.append(header)
        for label, values in series.items():
            row = f"{label + ' %':>20} " + " ".join(
                f"{value:>{width}.1f}" for value in values
            )
            lines.append(row)
    return "\n".join(lines)


def format_table(
    title: str, columns: Sequence[str], rows: Sequence[Tuple] , width: int = 12
) -> str:
    """Simple fixed-width table rendering (used for Tables 3-4, Fig 17)."""
    lines = [f"== {title} =="]
    lines.append(" ".join(f"{c:>{width}}" for c in columns))
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:>{width}.2f}")
            else:
                rendered.append(f"{str(value):>{width}}")
        lines.append(" ".join(rendered))
    return "\n".join(lines)
