"""Experiment harness: parameter sweeps reproducing every table and figure.

- :mod:`repro.experiments.runner` -- sweep machinery and ASCII rendering;
- :mod:`repro.experiments.figures` -- one function per paper artifact
  (``fig9`` ... ``fig17``, the free-movement comparison of Section 4.3,
  Tables 3-4) plus the repo's own ablation studies.

Each function returns a :class:`~repro.experiments.runner.FigureResult`
whose series carry the same labels the paper plots; benchmarks render
them and assert the qualitative shapes listed in DESIGN.md.
"""

from repro.experiments.runner import (
    FigureResult,
    Quality,
    format_figure,
    run_one,
    sweep_parameter,
)
from repro.experiments import figures

__all__ = [
    "FigureResult",
    "Quality",
    "figures",
    "format_figure",
    "run_one",
    "sweep_parameter",
]
