"""One function per paper artifact (see DESIGN.md's experiment index).

Every mobile-host figure (9-16) is a parameter sweep over the three
regional parameter sets with road-network mobility; Section 4.3 re-runs
them in free-movement mode; Figure 17 is the server-side EINN vs INN
page-access comparison.  The ablation studies at the bottom are this
repository's own additions, probing the design choices DESIGN.md calls
out (coverage backend, R-tree split policy).

``Quality.FAST`` keeps each figure's total runtime in benchmark range;
``Quality.FULL`` approaches the paper's horizons (Tables 3-4).  The 30x30
configurations always run through a density-preserving window scale-down
(see ``ParameterSet.scaled_area``); EXPERIMENTS.md records the factors.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.bounds import derive_pruning_bounds
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.core.senn import SennConfig
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.core.snnn import snnn_query
from repro.core.verification import verify_single_peer
from repro.geometry.coverage import CoverageMethod
from repro.geometry.point import Point
from repro.index.knn import NeighborResult
from repro.index.rtree import RTree, RTreeConfig, SplitPolicy
from repro.index.knn import k_nearest
from repro.index.pagestats import PageAccessCounter
from repro.network.generator import RoadNetworkSpec, generate_road_network
from repro.network.ier import incremental_network_expansion
from repro.sim.config import (
    METERS_PER_MILE,
    PARAMETER_SETS_2X2,
    PARAMETER_SETS_30X30,
    MovementMode,
    ParameterSet,
)
from repro.experiments.runner import FigureResult, Quality, run_one, sweep_parameter

__all__ = [
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "free_movement_comparison",
    "ablation_coverage_backend",
    "ablation_rtree_split",
    "snnn_cost_study",
]


# ----------------------------------------------------------------------
# shared sizing knobs
# ----------------------------------------------------------------------
def _duration_2x2(quality: Quality) -> float:
    return 900.0 if quality is Quality.FAST else 3600.0


def _duration_30x30(quality: Quality) -> float:
    return 240.0 if quality is Quality.FAST else 900.0


def _window_30x30(quality: Quality) -> float:
    # Density-preserving window side fraction of the 30-mile square.
    return 0.15 if quality is Quality.FAST else 0.3


def _regions_30x30(quality: Quality) -> Dict[str, Callable[[], ParameterSet]]:
    factor = _window_30x30(quality)
    return {
        name: (lambda factory=factory: factory().scaled_area(factor))
        for name, factory in PARAMETER_SETS_30X30.items()
    }


# ----------------------------------------------------------------------
# Figures 9 / 10: transmission range sweeps
# ----------------------------------------------------------------------
def fig9(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 9: resolution shares vs wireless range, 2x2-mile area."""
    xs = [50.0, 100.0, 150.0, 200.0] if quality is Quality.FAST else [
        20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0, 180.0, 200.0
    ]
    return sweep_parameter(
        "fig9",
        "Queries resolved by peers vs server, by transmission range (2x2 mi)",
        "Tx range (m)",
        xs,
        PARAMETER_SETS_2X2,
        lambda params, x: dataclasses.replace(params, tx_range_m=x),
        t_execution_s=_duration_2x2(quality),
        seed=seed,
    )


def fig10(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 10: same sweep over the 30x30-mile configurations."""
    xs = [50.0, 100.0, 150.0, 200.0] if quality is Quality.FAST else [
        20.0, 60.0, 100.0, 140.0, 180.0, 200.0
    ]
    return sweep_parameter(
        "fig10",
        "Queries resolved by peers vs server, by transmission range (30x30 mi)",
        "Tx range (m)",
        xs,
        _regions_30x30(quality),
        lambda params, x: dataclasses.replace(params, tx_range_m=x),
        t_execution_s=_duration_30x30(quality),
        seed=seed,
        notes=f"density-preserving {_window_30x30(quality):g}-side window",
    )


# ----------------------------------------------------------------------
# Figures 11 / 12: cache capacity sweeps
# ----------------------------------------------------------------------
def fig11(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 11: resolution shares vs cache capacity, 2x2-mile area."""
    xs = [1, 3, 5, 7, 9]
    return sweep_parameter(
        "fig11",
        "Queries resolved by peers vs server, by cache capacity (2x2 mi)",
        "Cached items",
        xs,
        PARAMETER_SETS_2X2,
        lambda params, x: dataclasses.replace(params, c_size=int(x)),
        t_execution_s=_duration_2x2(quality),
        seed=seed,
    )


def fig12(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 12: cache capacity sweep over the 30x30-mile configurations."""
    xs = [4, 8, 12, 16, 20]
    return sweep_parameter(
        "fig12",
        "Queries resolved by peers vs server, by cache capacity (30x30 mi)",
        "Cached items",
        xs,
        _regions_30x30(quality),
        lambda params, x: dataclasses.replace(params, c_size=int(x)),
        t_execution_s=_duration_30x30(quality),
        seed=seed,
        notes=f"density-preserving {_window_30x30(quality):g}-side window",
    )


# ----------------------------------------------------------------------
# Figures 13 / 14: movement velocity sweeps
# ----------------------------------------------------------------------
def fig13(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 13: resolution shares vs host velocity, 2x2-mile area."""
    xs = [10.0, 20.0, 30.0, 40.0, 50.0]
    return sweep_parameter(
        "fig13",
        "Queries resolved by peers vs server, by velocity (2x2 mi)",
        "Speed (mph)",
        xs,
        PARAMETER_SETS_2X2,
        lambda params, x: dataclasses.replace(params, m_velocity=x),
        t_execution_s=_duration_2x2(quality),
        seed=seed,
    )


def fig14(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 14: velocity sweep over the 30x30-mile configurations."""
    xs = [10.0, 30.0, 50.0] if quality is Quality.FAST else [
        10.0, 20.0, 30.0, 40.0, 50.0
    ]
    return sweep_parameter(
        "fig14",
        "Queries resolved by peers vs server, by velocity (30x30 mi)",
        "Speed (mph)",
        xs,
        _regions_30x30(quality),
        lambda params, x: dataclasses.replace(params, m_velocity=x),
        t_execution_s=_duration_30x30(quality),
        seed=seed,
        notes=f"density-preserving {_window_30x30(quality):g}-side window",
    )


# ----------------------------------------------------------------------
# Figures 15 / 16: k sweeps
# ----------------------------------------------------------------------
def fig15(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 15: resolution shares vs k, 2x2-mile area."""
    xs = [1, 3, 5, 7, 9]
    return sweep_parameter(
        "fig15",
        "Queries resolved by peers vs server, by k (2x2 mi)",
        "k",
        xs,
        PARAMETER_SETS_2X2,
        lambda params, x: dataclasses.replace(params, lambda_knn=int(x)),
        t_execution_s=_duration_2x2(quality),
        seed=seed,
    )


def fig16(quality: Quality = Quality.FAST, seed: int = 0) -> FigureResult:
    """Fig. 16: k sweep over the 30x30-mile configurations."""
    xs = [3, 6, 9, 12, 15]
    return sweep_parameter(
        "fig16",
        "Queries resolved by peers vs server, by k (30x30 mi)",
        "k",
        xs,
        _regions_30x30(quality),
        lambda params, x: dataclasses.replace(params, lambda_knn=int(x)),
        t_execution_s=_duration_30x30(quality),
        seed=seed,
        notes=f"density-preserving {_window_30x30(quality):g}-side window",
    )


# ----------------------------------------------------------------------
# Section 4.3: free movement vs road network
# ----------------------------------------------------------------------
def free_movement_comparison(
    quality: Quality = Quality.FAST, seed: int = 0
) -> FigureResult:
    """Section 4.3: server share under road-network vs free movement."""
    duration = _duration_2x2(quality)
    result = FigureResult(
        "free_movement",
        "Server share: road-network mode vs free movement (2x2 mi)",
        "mode",
        [0.0, 1.0],
        notes="x=0: road network, x=1: free movement",
    )
    for region, factory in PARAMETER_SETS_2X2.items():
        values: Dict[str, List[float]] = {"server": [], "single_peer": [], "multi_peer": []}
        for mode in (MovementMode.ROAD_NETWORK, MovementMode.FREE):
            metrics = run_one(
                factory(), mode=mode, seed=seed, t_execution_s=duration
            )
            percentages = metrics.percentages()
            for label in values:
                values[label].append(percentages[label])
        result.series[region] = values
    return result


# ----------------------------------------------------------------------
# Figure 17: EINN vs INN page accesses
# ----------------------------------------------------------------------
def fig17(
    quality: Quality = Quality.FAST, seed: int = 0
) -> FigureResult:
    """Fig. 17: R*-tree pages accessed by EINN vs INN, as a function of k.

    Mirrors Section 4.4's server-module experiment: query points uniform
    over the area, each client holding the partial knowledge produced by
    verifying two nearby peers' caches (the realistic source of pruning
    bounds), POI sets at the full Table-4 sizes.
    """
    ks = [4, 6, 8, 10, 12, 14]
    queries = 40 if quality is Quality.FAST else 200
    area = 30.0
    result = FigureResult(
        "fig17",
        "R*-tree page accesses per query: EINN vs INN",
        "k",
        list(ks),
        notes=f"{queries} uniform query points per k, full Table-4 POI counts",
    )
    # Seed offset by region position, not hash(region): str hashes vary
    # per process (PYTHONHASHSEED), which made reruns irreproducible.
    for offset, (region, factory) in enumerate(PARAMETER_SETS_30X30.items()):
        params = factory()
        rng = np.random.default_rng(seed + 1000 * (offset + 1))
        coords = rng.uniform(0.0, area, size=(params.poi_number, 2))
        pois = [
            (Point(float(x), float(y)), i) for i, (x, y) in enumerate(coords)
        ]
        tree = RTree.bulk_load(pois, RTreeConfig(max_entries=30))
        einn_server = SpatialDatabaseServer(tree, ServerAlgorithm.EINN)
        inn_server = SpatialDatabaseServer(tree, ServerAlgorithm.INN)
        einn_series: List[float] = []
        inn_series: List[float] = []
        for k in ks:
            einn_server.reset_statistics()
            inn_server.reset_statistics()
            issued = 0
            attempts = 0
            while issued < queries and attempts < queries * 50:
                attempts += 1
                q = Point(float(rng.uniform(0, area)), float(rng.uniform(0, area)))
                bounds, known = _client_partial_knowledge(
                    q, k, coords, params, rng
                )
                if len(known) >= k:
                    # Fully answered by peers: such queries never reach the
                    # server in the real system.
                    continue
                issued += 1
                einn_server.knn_query(q, k, bounds, known)
                inn_server.knn_query(q, k)
            einn_series.append(einn_server.mean_page_accesses())
            inn_series.append(inn_server.mean_page_accesses())
        result.series[region] = {"EINN": einn_series, "INN": inn_series}
    return result


def _client_partial_knowledge(
    query: Point,
    k: int,
    poi_coords: np.ndarray,
    params: ParameterSet,
    rng: np.random.Generator,
) -> Tuple:
    """Synthesize a querying client's heap from nearby peers' caches.

    Each peer sits within the transmission range and carries the true
    NNs of its own location (exactly what the caching policies
    guarantee).  Peer count (0-2) and cache fill vary: the clients that
    actually reach the server are the ones whose neighborhood could not
    certify everything, so their knowledge is partial by construction.
    The client runs single-peer verification to populate its heap and
    derives the branch-expanding bounds from the heap state.
    """
    heap = CandidateHeap(k)
    for _ in range(int(rng.integers(0, 3))):
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = rng.uniform(0.0, params.tx_range_miles)
        peer = Point(
            query.x + radius * float(np.cos(angle)),
            query.y + radius * float(np.sin(angle)),
        )
        cache_size = int(rng.integers(1, params.c_size + 1))
        cache = _true_knn_cache(peer, cache_size, poi_coords)
        verify_single_peer(query, cache, heap)
    bounds = derive_pruning_bounds(heap)
    known = [
        NeighborResult(entry.point, entry.payload, entry.distance)
        for entry in heap.certain_entries()
    ]
    return bounds, known


def _true_knn_cache(
    location: Point, k: int, poi_coords: np.ndarray
) -> CachedQueryResult:
    """Brute-force kNN of ``location`` as a peer cache (numpy-vectorized)."""
    deltas = poi_coords - np.array([location.x, location.y])
    distances = np.hypot(deltas[:, 0], deltas[:, 1])
    order = np.argsort(distances)[:k]
    neighbors = tuple(
        NeighborResult(
            Point(float(poi_coords[i, 0]), float(poi_coords[i, 1])),
            int(i),
            float(distances[i]),
        )
        for i in order
    )
    return CachedQueryResult(location, neighbors)


# ----------------------------------------------------------------------
# Ablations (this repository's own studies)
# ----------------------------------------------------------------------
def ablation_coverage_backend(
    quality: Quality = Quality.FAST, seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Exact disk-union coverage vs the paper's polygonization.

    Runs the LA 2x2 simulation once per backend and reports the resolution
    shares; the polygon backend under-approximates the certain region, so
    its multi-peer share can only be lower or equal.
    """
    duration = _duration_2x2(quality)
    results: Dict[str, Dict[str, float]] = {}
    for method in (CoverageMethod.EXACT, CoverageMethod.POLYGON):
        metrics = run_one(
            PARAMETER_SETS_2X2["LA"](),
            seed=seed,
            t_execution_s=duration,
            config_overrides={"coverage_method": method, "polygon_sides": 24},
        )
        results[method.value] = metrics.percentages()
    return results


def ablation_rtree_split(
    quality: Quality = Quality.FAST, seed: int = 0
) -> Dict[str, float]:
    """R* split vs Guttman quadratic split: mean INN pages per query."""
    rng = np.random.default_rng(seed)
    poi_count = 3105  # Synthetic Suburbia, Table 4
    queries = 50 if quality is Quality.FAST else 300
    area = 30.0
    coords = rng.uniform(0.0, area, size=(poi_count, 2))
    items = [(Point(float(x), float(y)), i) for i, (x, y) in enumerate(coords)]
    query_points = [
        Point(float(rng.uniform(0, area)), float(rng.uniform(0, area)))
        for _ in range(queries)
    ]
    results: Dict[str, float] = {}
    for policy in (SplitPolicy.RSTAR, SplitPolicy.QUADRATIC):
        tree = RTree(RTreeConfig(max_entries=30, split_policy=policy))
        for point, payload in items:
            tree.insert(point, payload)
        counter = PageAccessCounter()
        for q in query_points:
            counter.start_query()
            k_nearest(tree, q, 8, counter)
            counter.finish_query()
        results[policy.value] = counter.mean_per_query()
    return results


def snnn_cost_study(
    quality: Quality = Quality.FAST, seed: int = 0
) -> Dict[str, float]:
    """SNNN correctness + cost against the INE oracle on a road network.

    Returns the mean wall-clock per query for both, the candidate split
    between peers and server, and the (asserted-zero) mismatch count.
    """
    queries = 15 if quality is Quality.FAST else 60
    k = 3
    rng = np.random.default_rng(seed)
    network = generate_road_network(
        RoadNetworkSpec(width=4.0, height=4.0, secondary_spacing=0.4, seed=seed)
    )
    poi_count = 40
    pois = []
    for i in range(poi_count):
        raw = Point(float(rng.uniform(0, 4)), float(rng.uniform(0, 4)))
        snapped = network.snap(raw)
        pois.append((snapped.point, f"poi-{i}"))
    server = SpatialDatabaseServer.from_points(pois)
    poi_locations = [(network.snap(p), payload) for p, payload in pois]
    config = SennConfig(k=k, cache_capacity=10)

    mismatches = 0
    peers_total = 0
    server_total = 0
    snnn_time = 0.0
    ine_time = 0.0
    for _ in range(queries):
        q = Point(float(rng.uniform(0.2, 3.8)), float(rng.uniform(0.2, 3.8)))
        started = time.perf_counter()
        snnn = snnn_query(q, k, network, None, [], config, server=server)
        snnn_time += time.perf_counter() - started
        started = time.perf_counter()
        oracle = incremental_network_expansion(network, network.snap(q), poi_locations, k)
        ine_time += time.perf_counter() - started
        got = [round(r.network_distance, 6) for r in snnn.neighbors]
        want = [round(r.network_distance, 6) for r in oracle]
        if got != want:
            mismatches += 1
        peers_total += snnn.candidates_from_peers
        server_total += snnn.candidates_from_server
    return {
        "queries": float(queries),
        "mismatches": float(mismatches),
        "snnn_ms_per_query": 1000.0 * snnn_time / queries,
        "ine_ms_per_query": 1000.0 * ine_time / queries,
        "mean_candidates_from_peers": peers_total / queries,
        "mean_candidates_from_server": server_total / queries,
    }
