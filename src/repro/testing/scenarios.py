"""Scenario generation and deterministic replay for differential testing.

A :class:`Scenario` is a complete, self-contained query configuration:
the POI set, the peers (each peer's cache is rebuilt from ground truth at
materialization time, so caches are always *valid* -- the harness tests
the verifiers, not cache corruption), the query point, ``k`` and the
relevant SENN knobs.

Scenarios round-trip through a compact one-line *scenario string*
(:func:`encode_scenario` / :func:`decode_scenario`), which is what the
shrinker prints, what golden regression files under ``tests/golden/``
store, and what ``repro-difftest --replay`` consumes.

:class:`ScenarioGen` derives scenario ``i`` of seed ``s`` from an
isolated ``random.Random`` instance, so any single scenario can be
regenerated without replaying the stream.  Families rotate through
adversarial shapes: uniform and clustered POI clouds, dyadic-grid
configurations with duplicate and collinear POIs (exact float
arithmetic), constructions with candidates and peers *exactly on*
certain-circle boundaries, and degenerate setups (zero-radius caches,
empty caches, ``k`` larger than every cache, ``k`` larger than the POI
set).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "PeerSpec",
    "Scenario",
    "ScenarioGen",
    "decode_scenario",
    "encode_scenario",
]

_FORMAT_VERSION = "repro1"
_ID_RE = re.compile(r"^[A-Za-z0-9_-]+$")


@dataclass(frozen=True)
class PeerSpec:
    """One peer: its position and how many NNs its cache holds.

    ``cache_k == 0`` models a peer with a cold (empty) cache.
    """

    x: float
    y: float
    cache_k: int

    def __post_init__(self) -> None:
        if self.cache_k < 0:
            raise ValueError("cache_k must be non-negative")


@dataclass(frozen=True)
class Scenario:
    """A fully explicit differential-test input."""

    k: int
    query: Tuple[float, float]
    pois: Tuple[Tuple[float, float, str], ...]
    peers: Tuple[PeerSpec, ...] = ()
    cache_capacity: int = 8
    coverage: str = "exact"  # "exact" | "polygon"
    polygon_sides: int = 32
    use_own_cache: bool = False
    #: Dyadic-grid scenario: float arithmetic on it is exact, so the
    #: completeness checks may demand certification at slack == 0.0.
    exact: bool = False
    range_radius: Optional[float] = None
    check_network: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if not self.pois:
            raise ValueError("a scenario needs at least one POI")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        if self.coverage not in ("exact", "polygon"):
            raise ValueError(f"unknown coverage method {self.coverage!r}")
        if self.polygon_sides < 3:
            raise ValueError("polygon_sides must be at least 3")
        if self.range_radius is not None and self.range_radius < 0.0:
            raise ValueError("range_radius must be non-negative")
        seen = set()
        for _, _, poi_id in self.pois:
            if not _ID_RE.match(poi_id):
                raise ValueError(f"POI id {poi_id!r} must match [A-Za-z0-9_-]+")
            if poi_id in seen:
                raise ValueError(f"duplicate POI id {poi_id!r}")
            seen.add(poi_id)
        if self.use_own_cache and not self.peers:
            raise ValueError("use_own_cache requires at least one peer entry")


# ----------------------------------------------------------------------
# scenario-string codec
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    """Shortest exact decimal form (``float(repr(x)) == x``)."""
    return repr(float(value))


def encode_scenario(scenario: Scenario) -> str:
    """Serialize to the compact one-line replay format."""
    parts = [
        _FORMAT_VERSION,
        f"k={scenario.k}",
        f"cap={scenario.cache_capacity}",
        f"cov={scenario.coverage}",
        f"sides={scenario.polygon_sides}",
        f"own={int(scenario.use_own_cache)}",
        f"exact={int(scenario.exact)}",
        f"net={int(scenario.check_network)}",
        f"q={_fmt(scenario.query[0])}:{_fmt(scenario.query[1])}",
    ]
    if scenario.range_radius is not None:
        parts.append(f"r={_fmt(scenario.range_radius)}")
    parts.append(
        "pois="
        + ",".join(f"{_fmt(x)}:{_fmt(y)}:{pid}" for x, y, pid in scenario.pois)
    )
    parts.append(
        "peers="
        + ",".join(
            f"{_fmt(p.x)}:{_fmt(p.y)}:{p.cache_k}" for p in scenario.peers
        )
    )
    return ";".join(parts)


def decode_scenario(text: str) -> Scenario:
    """Parse a scenario string back into a :class:`Scenario`.

    Raises ``ValueError`` on malformed input; round-trips exactly with
    :func:`encode_scenario` (floats use ``repr`` form).
    """
    fields = text.strip().split(";")
    if not fields or fields[0] != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported scenario format (expected leading {_FORMAT_VERSION!r})"
        )
    values: Dict[str, str] = {}
    for item in fields[1:]:
        if "=" not in item:
            raise ValueError(f"malformed scenario field {item!r}")
        key, _, value = item.partition("=")
        if key in values:
            raise ValueError(f"duplicate scenario field {key!r}")
        values[key] = value
    try:
        qx, qy = values["q"].split(":")
        pois = []
        if values["pois"]:
            for chunk in values["pois"].split(","):
                x, y, pid = chunk.split(":")
                pois.append((float(x), float(y), pid))
        peers = []
        if values.get("peers"):
            for chunk in values["peers"].split(","):
                x, y, cache_k = chunk.split(":")
                peers.append(PeerSpec(float(x), float(y), int(cache_k)))
        return Scenario(
            k=int(values["k"]),
            query=(float(qx), float(qy)),
            pois=tuple(pois),
            peers=tuple(peers),
            cache_capacity=int(values.get("cap", "8")),
            coverage=values.get("cov", "exact"),
            polygon_sides=int(values.get("sides", "32")),
            use_own_cache=values.get("own", "0") == "1",
            exact=values.get("exact", "0") == "1",
            range_radius=float(values["r"]) if "r" in values else None,
            check_network=values.get("net", "0") == "1",
        )
    except KeyError as exc:
        raise ValueError(f"scenario string is missing field {exc.args[0]!r}") from exc


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
@dataclass
class ScenarioGen:
    """Deterministic adversarial scenario source.

    ``generate(i)`` depends only on ``(seed, i)``; the family rotates
    round-robin so every budget covers every family.
    """

    seed: int
    families: Tuple[str, ...] = (
        "uniform",
        "boundary",
        "clustered",
        "grid",
        "degenerate",
        "network",
    )

    def generate(self, index: int) -> Scenario:
        rng = random.Random(f"repro-difftest:{self.seed}:{index}")
        family = self.families[index % len(self.families)]
        builder = getattr(self, f"_build_{family}")
        scenario: Scenario = builder(rng)
        return scenario

    def stream(self, budget: int, start: int = 0) -> Iterator[Tuple[int, Scenario]]:
        for index in range(start, start + budget):
            yield index, self.generate(index)

    # -- shared pieces --------------------------------------------------
    @staticmethod
    def _ids_for(count: int) -> List[str]:
        return [f"p{i}" for i in range(count)]

    @staticmethod
    def _knobs(rng: random.Random, exact: bool) -> dict:
        coverage = "polygon" if (not exact and rng.random() < 0.25) else "exact"
        return {
            "cache_capacity": rng.randint(2, 8),
            "coverage": coverage,
            "polygon_sides": rng.choice((8, 16, 32)),
            "use_own_cache": rng.random() < 0.5,
            "check_network": rng.random() < 0.25,
        }

    @staticmethod
    def _peers(
        rng: random.Random, count: int, coord: Callable[[random.Random], float]
    ) -> Tuple[PeerSpec, ...]:
        return tuple(
            PeerSpec(coord(rng), coord(rng), rng.randint(0, 6)) for _ in range(count)
        )

    # -- families -------------------------------------------------------
    def _build_uniform(self, rng: random.Random) -> Scenario:
        count = rng.randint(4, 24)
        pois = tuple(
            (rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), pid)
            for pid in self._ids_for(count)
        )
        peers = self._peers(rng, rng.randint(1, 5), lambda r: r.uniform(0.0, 1.0))
        return Scenario(
            k=rng.randint(1, 6),
            query=(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)),
            pois=pois,
            peers=peers,
            range_radius=rng.uniform(0.05, 0.4) if rng.random() < 0.5 else None,
            **self._knobs(rng, exact=False),
        )

    def _build_clustered(self, rng: random.Random) -> Scenario:
        centers = [
            (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8))
            for _ in range(rng.randint(1, 3))
        ]
        count = rng.randint(6, 20)
        pois = []
        for pid in self._ids_for(count):
            cx, cy = rng.choice(centers)
            pois.append((rng.gauss(cx, 0.05), rng.gauss(cy, 0.05), pid))
        cx, cy = rng.choice(centers)
        peers = tuple(
            PeerSpec(rng.gauss(cx, 0.08), rng.gauss(cy, 0.08), rng.randint(1, 6))
            for _ in range(rng.randint(1, 4))
        )
        return Scenario(
            k=rng.randint(1, 5),
            query=(rng.gauss(cx, 0.05), rng.gauss(cy, 0.05)),
            pois=tuple(pois),
            peers=peers,
            range_radius=rng.uniform(0.02, 0.2) if rng.random() < 0.5 else None,
            **self._knobs(rng, exact=False),
        )

    def _build_grid(self, rng: random.Random) -> Scenario:
        """Dyadic lattice with duplicate locations and collinear runs."""

        def lattice(r: random.Random) -> float:
            return r.randint(0, 8) / 8.0
        count = rng.randint(4, 14)
        coords: List[Tuple[float, float]] = []
        for _ in range(count):
            if coords and rng.random() < 0.2:
                coords.append(rng.choice(coords))  # duplicate location
            elif coords and rng.random() < 0.3:
                x, y = rng.choice(coords)  # collinear with an existing POI
                coords.append((lattice(rng), y) if rng.random() < 0.5 else (x, lattice(rng)))
            else:
                coords.append((lattice(rng), lattice(rng)))
        pois = tuple(
            (x, y, pid) for (x, y), pid in zip(coords, self._ids_for(count))
        )
        peers = self._peers(rng, rng.randint(1, 4), lattice)
        # Dyadic coordinates, but distances involve sqrt -- arithmetic is
        # NOT exact, so the scenario must not claim ``exact``.
        knobs = self._knobs(rng, exact=False)
        return Scenario(
            k=rng.randint(1, 5),
            query=(lattice(rng), lattice(rng)),
            pois=pois,
            peers=peers,
            range_radius=rng.randint(1, 4) / 8.0 if rng.random() < 0.5 else None,
            **knobs,
        )

    def _build_boundary(self, rng: random.Random) -> Scenario:
        """Exact boundary-equality constructions (axis-aligned, dyadic).

        The peer ``P``, the query ``Q`` and the candidate POI are
        collinear on a horizontal line, so ``Dist(Q, n_i) + Dist(Q, P)``
        equals ``Dist(P, n_i)`` *bit-for-bit* -- Lemma 3.2's ``<=`` holds
        with equality and a verifier with a flipped inequality fails to
        certify.  A second peer is sometimes placed exactly on the first
        peer's certain-circle boundary.
        """
        step = 0.125
        y = rng.randint(0, 8) * step
        px = rng.randint(0, 4) * step
        reach = rng.randint(2, 4)  # candidate distance from P, in steps
        cand_x = px + reach * step
        qx = px + rng.randint(1, reach - 1) * step  # strictly between P and n_i
        pois: List[Tuple[float, float, str]] = [(cand_x, y, "p0")]
        # Filler POIs strictly outside the peer's certain circle keep the
        # scenario non-trivial without disturbing the equality.
        for index in range(rng.randint(0, 3)):
            fx = px + (reach + 1 + rng.randint(0, 3)) * step
            fy = rng.randint(0, 8) * step
            pois.append((fx, fy, f"p{index + 1}"))
        peers = [PeerSpec(px, y, 1)]
        if rng.random() < 0.5:
            # A peer exactly on the first peer's certain-circle boundary.
            peers.append(PeerSpec(px + reach * step, y, rng.randint(0, 2)))
        knobs = self._knobs(rng, exact=True)
        knobs["use_own_cache"] = False
        return Scenario(
            k=rng.randint(1, 2),
            query=(qx, y),
            pois=tuple(pois),
            peers=tuple(peers),
            exact=True,
            **knobs,
        )

    def _build_network(self, rng: random.Random) -> Scenario:
        """POI-heavy, always network-checked: SNNN and the index checks.

        Larger POI sets push the difftest grid network to its bigger
        sizes (see ``_check_network_index``) so the hierarchical index
        is exercised at real partition depth, with ``k`` occasionally
        exceeding the POI count and duplicate locations forcing ties at
        the k-th network distance.
        """
        count = rng.randint(12, 40)
        coords: List[Tuple[float, float]] = []
        for _ in range(count):
            if coords and rng.random() < 0.15:
                coords.append(rng.choice(coords))  # tie at the k-th distance
            else:
                coords.append((rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)))
        pois = tuple(
            (x, y, pid) for (x, y), pid in zip(coords, self._ids_for(count))
        )
        peers = self._peers(rng, rng.randint(1, 4), lambda r: r.uniform(0.0, 1.0))
        knobs = self._knobs(rng, exact=False)
        knobs["check_network"] = True
        return Scenario(
            k=rng.randint(1, 8) + (3 if rng.random() < 0.1 else 0),
            query=(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)),
            pois=pois,
            peers=peers,
            range_radius=rng.uniform(0.05, 0.4) if rng.random() < 0.3 else None,
            **knobs,
        )

    def _build_degenerate(self, rng: random.Random) -> Scenario:
        """Zero-radius caches, empty caches, k beyond every cache/POI set."""

        def lattice(r: random.Random) -> float:
            return r.randint(0, 4) / 4.0
        count = rng.randint(1, 6)
        base = (lattice(rng), lattice(rng))
        coords = [base]
        for _ in range(count - 1):
            # Heavy duplication: many POIs collapse onto one location.
            coords.append(base if rng.random() < 0.5 else (lattice(rng), lattice(rng)))
        pois = tuple(
            (x, y, pid) for (x, y), pid in zip(coords, self._ids_for(count))
        )
        peers = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.4:
                # Peer sitting exactly on a POI: its 1-NN cache has a
                # zero-radius certain circle.
                x, y = rng.choice(coords)
                peers.append(PeerSpec(x, y, 1))
            elif rng.random() < 0.4:
                peers.append(PeerSpec(lattice(rng), lattice(rng), 0))  # cold cache
            else:
                peers.append(PeerSpec(lattice(rng), lattice(rng), rng.randint(1, 2)))
        # Off-axis sqrt distances can coincide with an oracle slack of
        # exactly 0.0 while the implementation's (different) float
        # expression misses by an ulp, so ``exact`` stays off here; only
        # the axis-aligned collinear boundary family may claim it.
        knobs = self._knobs(rng, exact=False)
        return Scenario(
            # k routinely exceeds both the cache sizes and the POI count.
            k=rng.randint(1, count + 3),
            query=(lattice(rng), lattice(rng)),
            pois=pois,
            peers=tuple(peers),
            range_radius=rng.choice((0.0, 0.25, 0.5)) if rng.random() < 0.5 else None,
            **knobs,
        )
