"""``python -m repro.testing`` runs the differential fuzzer."""

import sys

from repro.testing.cli import main

if __name__ == "__main__":
    sys.exit(main())
