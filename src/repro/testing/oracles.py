"""Brute-force oracles for differential testing.

Everything in this module recomputes ground truth from first principles:

- :func:`oracle_knn` / :func:`oracle_range` / :func:`oracle_window` scan
  the raw POI list -- no R-tree, no pruning;
- :func:`certify_single_oracle` / :func:`certify_multi_oracle` re-derive
  the Lemma 3.2 / 3.8 certainty decision by *direct circle-coverage
  sampling* of the candidate disk's boundary, reporting a signed slack
  instead of a boolean so the differential runner can apply asymmetric
  margins (soundness vs. completeness);
- :func:`oracle_network_knn` is an independent Dijkstra over a plain
  adjacency mapping for cross-checking SNNN.

Independence is the whole point: this file must not import the code under
test.  ``repro-lint`` rule RPR007 enforces that no symbol from
``repro.index``, ``repro.core``, ``repro.network`` or the coverage /
polygon machinery of ``repro.geometry`` is imported here; only the
:class:`~repro.geometry.point.Point` value type is shared.  The payload
tie order is a deliberate (tiny) re-implementation of
``repro.index.knn.poi_tie_key`` for the same reason.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.geometry.point import Point

__all__ = [
    "CertaintyVerdict",
    "NetworkLoc",
    "OracleNeighbor",
    "certify_multi_oracle",
    "certify_single_oracle",
    "oracle_knn",
    "oracle_network_knn",
    "oracle_range",
    "oracle_window",
    "tie_key",
]


@dataclass(frozen=True, slots=True)
class OracleNeighbor:
    """One ground-truth neighbor: location, payload, exact scan distance."""

    point: Point
    payload: Any
    distance: float


def tie_key(payload: Any) -> Tuple[int, float, str]:
    """Stable payload order for distance ties (mirrors ``poi_tie_key``).

    Re-implemented here on purpose: the oracle must not import
    ``repro.index``.  The contract (numeric payloads numerically, others
    by ``str()``) is pinned by a differential test instead.
    """
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        return (1, float(payload), "")
    return (2, 0.0, str(payload))


# ----------------------------------------------------------------------
# Euclidean oracles
# ----------------------------------------------------------------------
def oracle_knn(
    pois: Sequence[Tuple[Point, Any]], query: Point, k: int
) -> List[OracleNeighbor]:
    """The exact k nearest POIs by linear scan, ties broken by payload."""
    if k < 0:
        raise ValueError("k must be non-negative")
    scored = [
        OracleNeighbor(point, payload, query.distance_to(point))
        for point, payload in pois
    ]
    scored.sort(key=lambda n: (n.distance, tie_key(n.payload)))
    return scored[:k]


def oracle_range(
    pois: Sequence[Tuple[Point, Any]], query: Point, radius: float
) -> List[OracleNeighbor]:
    """All POIs within ``radius`` of ``query`` (closed disk), ascending."""
    if radius < 0.0:
        raise ValueError("radius must be non-negative")
    hits = [
        OracleNeighbor(point, payload, query.distance_to(point))
        for point, payload in pois
        if query.distance_to(point) <= radius
    ]
    hits.sort(key=lambda n: (n.distance, tie_key(n.payload)))
    return hits


def oracle_window(
    pois: Sequence[Tuple[Point, Any]],
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    center: Point,
) -> List[OracleNeighbor]:
    """All POIs inside the closed window, ascending by distance to ``center``."""
    hits = [
        OracleNeighbor(point, payload, center.distance_to(point))
        for point, payload in pois
        if min_x <= point.x <= max_x and min_y <= point.y <= max_y
    ]
    hits.sort(key=lambda n: (n.distance, tie_key(n.payload)))
    return hits


# ----------------------------------------------------------------------
# Lemma 3.2 / 3.8 certainty by boundary sampling
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CertaintyVerdict:
    """Signed coverage slack of a candidate disk against certain circles.

    ``slack`` is (an upper estimate of) the minimum over the candidate
    disk's boundary of the distance by which the best covering circle
    still contains the boundary point; negative means some sampled
    boundary point is outside every circle.  Because the minimum is taken
    over finitely many samples the estimate can only err upward, so:

    - ``slack < -tol``  => the disk is *definitely not* covered;
    - ``slack > margin`` (for a margin exceeding the sampling error and
      the implementation's conservatism) => definitely covered.
    """

    slack: float

    def definitely_uncovered(self, tolerance: float = 1e-9) -> bool:
        return self.slack < -tolerance

    def definitely_covered(self, margin: float, allow_exact_zero: bool = False) -> bool:
        """Coverage claim strong enough to demand certification.

        ``allow_exact_zero`` admits the exactly-on-the-boundary case
        (slack ``== 0.0`` bit-for-bit); scenario generators that place
        POIs on a dyadic grid produce it deliberately, and Lemma 3.2's
        non-strict inequality says it must certify.
        """
        if self.slack > margin:
            return True
        # Exact zero guard: only a bit-exact boundary touch qualifies.
        return allow_exact_zero and self.slack == 0.0  # repro: noqa(RPR001)


def certify_single_oracle(
    query: Point,
    peer_center: Point,
    peer_radius: float,
    candidate_distance: float,
) -> CertaintyVerdict:
    """Lemma 3.2 by construction of the extremal boundary point.

    The point of the candidate disk's boundary farthest from the peer is
    on the ray from the peer through ``query``; evaluating the peer circle
    there is an exact one-sample coverage test (no formula shared with
    :mod:`repro.core.verification`).
    """
    if candidate_distance < 0.0:
        raise ValueError("candidate_distance must be non-negative")
    delta = query.distance_to(peer_center)
    # Exact zero guard: coincident centers leave every direction extremal.
    if delta == 0.0:  # repro: noqa(RPR001)
        worst = Point(query.x + candidate_distance, query.y)
    else:
        scale = candidate_distance / delta
        worst = Point(
            query.x + (query.x - peer_center.x) * scale,
            query.y + (query.y - peer_center.y) * scale,
        )
    return CertaintyVerdict(peer_radius - worst.distance_to(peer_center))


def certify_multi_oracle(
    query: Point,
    circles: Sequence[Tuple[Point, float]],
    candidate_distance: float,
    samples: int = 256,
) -> CertaintyVerdict:
    """Lemma 3.8 by dense boundary sampling of the candidate disk.

    Samples ``samples`` uniform boundary angles plus, per circle, the
    analytically extremal direction (the boundary point farthest from
    that circle's center), and reports the worst best-circle slack.
    """
    if candidate_distance < 0.0:
        raise ValueError("candidate_distance must be non-negative")
    if not circles:
        return CertaintyVerdict(-math.inf)
    if samples < 8:
        raise ValueError("at least 8 samples are required")

    def slack_at(point: Point) -> float:
        return max(radius - point.distance_to(center) for center, radius in circles)

    # Exact zero guard: a zero-radius disk degenerates to the query point.
    if candidate_distance == 0.0:  # repro: noqa(RPR001)
        return CertaintyVerdict(slack_at(query))

    angles = [2.0 * math.pi * i / samples for i in range(samples)]
    worst = math.inf
    for angle in angles:
        boundary = Point(
            query.x + candidate_distance * math.cos(angle),
            query.y + candidate_distance * math.sin(angle),
        )
        worst = min(worst, slack_at(boundary))
    for center, _ in circles:
        away = query.distance_to(center)
        # Exact zero guard: coincident centers have no extremal direction.
        if away == 0.0:  # repro: noqa(RPR001)
            continue
        scale = candidate_distance / away
        extremal = Point(
            query.x + (query.x - center.x) * scale,
            query.y + (query.y - center.y) * scale,
        )
        worst = min(worst, slack_at(extremal))
    return CertaintyVerdict(worst)


# ----------------------------------------------------------------------
# independent network-distance oracle (for SNNN)
# ----------------------------------------------------------------------
#: A location on a road network, in plain-data form:
#: ``("node", node_id)`` or ``("edge", u, v, offset_from_u, edge_length)``.
NetworkLoc = Tuple[Any, ...]


def _dijkstra(
    adjacency: Mapping[int, Sequence[Tuple[int, float]]],
    sources: Sequence[Tuple[int, float]],
) -> Dict[int, float]:
    """Multi-source Dijkstra over a plain adjacency mapping."""
    dist: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = []
    for node, offset in sources:
        if offset < dist.get(node, math.inf):
            dist[node] = offset
            heapq.heappush(heap, (offset, node))
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, math.inf):
            continue
        for neighbor, weight in adjacency.get(node, ()):
            candidate = d + weight
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def _endpoint_offsets(loc: NetworkLoc) -> List[Tuple[int, float]]:
    if loc[0] == "node":
        return [(loc[1], 0.0)]
    _, u, v, offset, length = loc
    return [(u, offset), (v, length - offset)]


def _same_edge_distance(a: NetworkLoc, b: NetworkLoc) -> float:
    """Direct along-edge distance when both locations share an edge."""
    if a[0] != "edge" or b[0] != "edge":
        return math.inf
    if (a[1], a[2]) == (b[1], b[2]):
        return abs(a[3] - b[3])
    if (a[1], a[2]) == (b[2], b[1]):
        return abs(a[3] - (b[4] - b[3]))
    return math.inf


def oracle_network_knn(
    adjacency: Mapping[int, Sequence[Tuple[int, float]]],
    origin: NetworkLoc,
    pois: Sequence[Tuple[NetworkLoc, Any]],
    k: int,
) -> List[Tuple[Any, float]]:
    """Exact network kNN: one Dijkstra from the origin, then a scan.

    Distances and ordering are computed without touching
    ``repro.network``; the caller flattens its graph into ``adjacency``
    and its locations into :data:`NetworkLoc` tuples.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    node_dist = _dijkstra(adjacency, _endpoint_offsets(origin))
    scored: List[Tuple[float, Tuple[int, float, str], Any]] = []
    for loc, payload in pois:
        best = _same_edge_distance(origin, loc)
        for node, offset in _endpoint_offsets(loc):
            best = min(best, node_dist.get(node, math.inf) + offset)
        scored.append((best, tie_key(payload), payload))
    scored.sort(key=lambda item: (item[0], item[1]))
    return [(payload, distance) for distance, _, payload in scored[:k]]
