"""``repro-difftest`` -- the differential fuzzing console entry point.

Runs a budget of generated scenarios through
:func:`repro.testing.difftest.run_scenario`, shrinks every failure to a
minimal reproduction and prints it as a copy-pasteable pytest test (plus
the compact scenario string for ``--replay``).

Exit codes: ``0`` all scenarios passed, ``1`` at least one check failed,
``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, TextIO

from repro.testing.difftest import (
    DiffReport,
    repro_snippet,
    run_scenario,
    shrink_scenario,
)
from repro.testing.scenarios import ScenarioGen, decode_scenario, encode_scenario

__all__ = ["build_parser", "main", "run_difftest"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-difftest",
        description=(
            "Differentially test SENN/SNNN/naive sharing/EINN/INN/"
            "depth-first against brute-force oracles on generated "
            "adversarial scenarios."
        ),
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=500,
        help="number of scenarios to run (default: 500)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    parser.add_argument(
        "--start",
        type=int,
        default=0,
        help="first scenario index (resume a budget; default: 0)",
    )
    parser.add_argument(
        "--replay",
        metavar="SCENARIO",
        help="run one encoded scenario string instead of generating",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimizing them",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many failing scenarios (default: 5)",
    )
    parser.add_argument(
        "--artifact",
        metavar="PATH",
        help="write shrunk reproductions (scenario strings + snippets) here",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    return parser


def run_difftest(
    budget: int,
    seed: int,
    start: int = 0,
    shrink: bool = True,
    max_failures: int = 5,
    out: Optional[TextIO] = None,
    quiet: bool = False,
) -> DiffReport:
    """Run ``budget`` scenarios; shrink and report failures as they appear."""
    if out is None:
        out = sys.stdout
    report = DiffReport()
    gen = ScenarioGen(seed=seed)
    stats: Dict[str, int] = {}
    for index, scenario in gen.stream(budget, start=start):
        failures = run_scenario(scenario, stats)
        report.scenarios_run += 1
        if not quiet and report.scenarios_run % 100 == 0:
            print(
                f"  ... {report.scenarios_run}/{budget} scenarios, "
                f"{len(report.failures)} failing",
                file=out,
            )
        if not failures:
            continue
        if shrink:
            scenario = shrink_scenario(scenario, failures[0].check)
            failures = run_scenario(scenario) or failures
        report.failures.append((index, scenario, failures))
        print(f"FAIL scenario {index} (seed {seed}):", file=out)
        for failure in failures:
            print(f"  {failure.render()}", file=out)
        print(f"  replay: {encode_scenario(scenario)}", file=out)
        if len(report.failures) >= max_failures:
            print(f"stopping after {max_failures} failing scenarios", file=out)
            break
    report.checks_run = stats
    return report


def _write_artifact(path: str, seed: int, report: DiffReport) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# repro-difftest failures (seed {seed})\n\n")
        for index, scenario, failures in report.failures:
            handle.write(f"## scenario {index}\n\n")
            for failure in failures:
                handle.write(f"- {failure.render()}\n")
            handle.write(f"\nreplay: `{encode_scenario(scenario)}`\n\n")
            handle.write("```python\n")
            handle.write(repro_snippet(scenario, failures[0].check))
            handle.write("```\n\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.budget < 0:
        parser.error("--budget must be non-negative")

    if args.replay is not None:
        try:
            scenario = decode_scenario(args.replay)
        except ValueError as error:
            print(f"invalid scenario string: {error}", file=sys.stderr)
            return 2
        failures = run_scenario(scenario)
        if not failures:
            print("scenario passed all checks")
            return 0
        for failure in failures:
            print(failure.render())
        if not args.no_shrink:
            shrunk = shrink_scenario(scenario, failures[0].check)
            print(f"shrunk replay: {encode_scenario(shrunk)}")
            print(repro_snippet(shrunk, failures[0].check))
        return 1

    report = run_difftest(
        budget=args.budget,
        seed=args.seed,
        start=args.start,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        quiet=args.quiet,
    )
    print(
        f"{report.scenarios_run} scenarios, "
        f"{sum(report.checks_run.values())} checks, "
        f"{len(report.failures)} failing"
    )
    if report.failures:
        for _, scenario, failures in report.failures:
            print()
            print(repro_snippet(scenario, failures[0].check))
        if args.artifact:
            _write_artifact(args.artifact, args.seed, report)
            print(f"wrote reproductions to {args.artifact}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
