"""Pytest integration for the differential fuzzer.

Loaded via ``pytest_plugins`` in ``tests/conftest.py``.  Adds two knobs:

- ``--difftest-budget N`` -- how many generated scenarios the difftest
  smoke test runs (default 100; ``0`` skips it);
- ``--difftest-seed S`` -- the generator seed (default 0).

and two fixtures: ``difftest_budget`` / ``difftest_seed`` expose the
values, and ``difftest_report`` runs the budget once per session and
yields the :class:`~repro.testing.difftest.DiffReport` (shrunk failures
included), so the smoke test stays a one-liner.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING

import pytest

if TYPE_CHECKING:
    from repro.testing.difftest import DiffReport

__all__ = [
    "difftest_budget",
    "difftest_report",
    "difftest_seed",
    "pytest_addoption",
]


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("difftest")
    group.addoption(
        "--difftest-budget",
        type=int,
        default=100,
        help="scenarios for the differential smoke test (0 disables)",
    )
    group.addoption(
        "--difftest-seed",
        type=int,
        default=0,
        help="scenario generator seed for the differential smoke test",
    )


@pytest.fixture(scope="session")
def difftest_budget(request: pytest.FixtureRequest) -> int:
    return int(request.config.getoption("--difftest-budget"))


@pytest.fixture(scope="session")
def difftest_seed(request: pytest.FixtureRequest) -> int:
    return int(request.config.getoption("--difftest-seed"))


@pytest.fixture(scope="session")
def difftest_report(difftest_budget: int, difftest_seed: int) -> "DiffReport":
    """Run the configured budget once and yield the report."""
    if difftest_budget <= 0:
        pytest.skip("differential smoke test disabled (--difftest-budget 0)")
    from repro.testing.cli import run_difftest

    out = io.StringIO()
    report = run_difftest(
        budget=difftest_budget, seed=difftest_seed, out=out, quiet=True
    )
    report.log = out.getvalue()
    return report
