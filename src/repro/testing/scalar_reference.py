"""Frozen scalar reference implementations for the vectorized index.

The vectorized kernels in :mod:`repro.geometry.vecmath` and the batched
verifiers in :mod:`repro.core.verification` promise to be *bit-identical*
to the scalar code they replaced.  This module preserves that scalar code
verbatim — the per-entry loops the pre-vectorization R-tree and the
``kNN_single`` / ``kNN_multiple`` verifiers executed — as an oracle for:

- the hypothesis property suite ``tests/test_index_vectorized.py``,
  which fuzzes the kernels over adversarial geometry (degenerate boxes,
  touching edges, corner queries, subnormal coordinates);
- the ``vectorized-verify`` differential-testing check
  (:mod:`repro.testing.difftest`), which replays every scenario's
  verification pass through this module and demands equal verdicts.

Nothing here is ever called by production code, and nothing here may be
"optimised": the value of the oracle is that it stays exactly the loop
the formulas in :mod:`repro.geometry.bbox` / :mod:`repro.geometry.point`
spell out.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.geometry.circle import Circle
from repro.geometry.coverage import CertainRegion, CoverageMethod
from repro.geometry.point import Point

__all__ = [
    "scalar_collect_candidates",
    "scalar_maxdist",
    "scalar_maxdists",
    "scalar_mindist",
    "scalar_mindists",
    "scalar_point_distance",
    "scalar_point_distances",
    "scalar_verify_multi_peer",
    "scalar_verify_single_peer",
]


def scalar_point_distance(px: float, py: float, x: float, y: float) -> float:
    """``Point.distance_to``, spelled out: one subtraction per axis."""
    return math.hypot(px - x, py - y)


def scalar_point_distances(
    px: float, py: float, xs: Sequence[float], ys: Sequence[float]
) -> List[float]:
    """Per-point loop the scalar leaf expansion performed."""
    return [scalar_point_distance(px, py, x, y) for x, y in zip(xs, ys)]


def scalar_mindist(
    px: float, py: float, lo_x: float, lo_y: float, hi_x: float, hi_y: float
) -> float:
    """``BoundingBox.mindist`` verbatim (clamp per axis, then hypot)."""
    dx = max(lo_x - px, 0.0, px - hi_x)
    dy = max(lo_y - py, 0.0, py - hi_y)
    return math.hypot(dx, dy)


def scalar_mindists(
    px: float,
    py: float,
    lo_x: Sequence[float],
    lo_y: Sequence[float],
    hi_x: Sequence[float],
    hi_y: Sequence[float],
) -> List[float]:
    """Per-box MINDIST loop the scalar internal-node expansion performed."""
    return [
        scalar_mindist(px, py, lx, ly, hx, hy)
        for lx, ly, hx, hy in zip(lo_x, lo_y, hi_x, hi_y)
    ]


def scalar_maxdist(
    px: float, py: float, lo_x: float, lo_y: float, hi_x: float, hi_y: float
) -> float:
    """``BoundingBox.maxdist`` verbatim (farthest corner per axis)."""
    dx = max(px - lo_x, hi_x - px)
    dy = max(py - lo_y, hi_y - py)
    return math.hypot(dx, dy)


def scalar_maxdists(
    px: float,
    py: float,
    lo_x: Sequence[float],
    lo_y: Sequence[float],
    hi_x: Sequence[float],
    hi_y: Sequence[float],
) -> List[float]:
    """Per-box MAXDIST loop the scalar downward pruning performed."""
    return [
        scalar_maxdist(px, py, lx, ly, hx, hy)
        for lx, ly, hx, hy in zip(lo_x, lo_y, hi_x, hi_y)
    ]


def scalar_verify_single_peer(
    query: Point,
    peer: Point,
    certain_radius: float,
    candidates: Sequence[Tuple[Point, object]],
) -> List[Tuple[Point, object, float, bool]]:
    """The pre-vectorization Lemma 3.2 loop, without the heap.

    Returns the exact offer sequence the scalar ``kNN_single`` issued:
    candidates sorted ascending by distance to ``query`` (Python's
    stable sort, so exact ties keep cache order), each with its computed
    distance and the Lemma 3.2 verdict
    ``Dist(Q, n_i) + delta <= Dist(P, n_k)``.
    """
    delta = query.distance_to(peer)
    ordered = sorted(candidates, key=lambda item: query.distance_to(item[0]))
    offers: List[Tuple[Point, object, float, bool]] = []
    for point, payload in ordered:
        distance = query.distance_to(point)
        offers.append((point, payload, distance, distance + delta <= certain_radius))
    return offers


def scalar_collect_candidates(
    query: Point,
    caches: Sequence[CachedQueryResult],
) -> List[Tuple[float, Point, object]]:
    """The pre-vectorization candidate collection, verbatim.

    Dedup by coordinates plus payload, one scalar ``distance_to`` per
    unique POI, then one stable sort on distance (first-seen order on
    exact ties — insertion order of the dict is preserved by
    ``sorted``'s stability, exactly as the batched version's stable
    argsort preserves it).
    """
    seen: Dict[Tuple[float, float, object], Tuple[float, Point, object]] = {}
    for cache in caches:
        for neighbor in cache.neighbors:
            key = (neighbor.point.x, neighbor.point.y, _hashable(neighbor.payload))
            if key not in seen:
                distance = query.distance_to(neighbor.point)
                seen[key] = (distance, neighbor.point, neighbor.payload)
    return sorted(seen.values(), key=lambda item: item[0])


def scalar_verify_multi_peer(
    query: Point,
    caches: Sequence[CachedQueryResult],
    heap: CandidateHeap,
    method: CoverageMethod = CoverageMethod.EXACT,
    polygon_sides: int = 32,
) -> int:
    """The pre-vectorization ``kNN_multiple`` loop, verbatim.

    Every candidate's disk goes through ``CertainRegion.covers_disk``
    directly — no batched single-circle pre-filter — with the same
    early-exit and re-certification skips the production verifier keeps.
    """
    region = CertainRegion(method=method, polygon_sides=polygon_sides)
    for cache in caches:
        if not cache.is_empty():
            region.add_circle(cache.certain_circle())
    if region.is_empty():
        return 0
    certified = 0
    for distance, point, payload in scalar_collect_candidates(query, caches):
        if heap.is_complete():
            break
        if heap.is_certain(point, payload):
            continue
        target = Circle(query, distance)
        if region.covers_disk(target):
            heap.add(point, payload, distance, certain=True)
            certified += 1
        else:
            heap.add(point, payload, distance, certain=False)
            break
    return certified


def _hashable(payload: object) -> object:
    # Hashability probe for the dedup key: hash equality follows object
    # equality, and the id() fallback only labels unhashable payloads
    # within one run, so the key is observationally deterministic.
    try:
        hash(payload)  # repro: noqa(RPR010)
    except TypeError:
        return id(payload)  # repro: noqa(RPR010)
    return payload
