"""The differential runner: implementations vs. oracles, plus a shrinker.

For each :class:`~repro.testing.scenarios.Scenario` the runner

1. materializes the POI set and builds every peer's cache from *ground
   truth* (the oracle kNN at the peer's location), so cache contents are
   valid by construction;
2. executes the full cast side by side -- INN, depth-first, EINN (empty
   and client-derived bounds), SENN, SNNN, naive sharing, sharing-based
   range and window queries, ``kNN_single`` / ``kNN_multiple``;
3. diffs every result against the brute-force oracles and checks the
   cross-implementation invariants:

   - the three server algorithms return identical neighbor sequences
     (tie-breaking is pinned by ``poi_tie_key``);
   - EINN never reads more pages than INN for the same query;
   - SENN's answers match the oracle ranking rank by rank (ties compared
     by distance class), and certified ranks are exact (Lemma 3.7);
   - ``kNN_single`` / ``kNN_multiple`` certainty flags agree with the
     sampling oracle, in both directions (soundness *and* completeness,
     with margins wide enough for the backends' documented conservatism);
   - shared range/window answers equal the oracle sets exactly.

Failures are :class:`CheckFailure` records; :func:`shrink_scenario`
greedily minimizes a failing scenario (drop POIs/peers, simplify
coordinates, shrink ``k`` and caches) while preserving the failing check,
and :func:`repro_snippet` renders the result as a copy-pasteable test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, MutableMapping, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.coverage import CoverageMethod
from repro.geometry.point import Point
from repro.index.knn import (
    NeighborResult,
    k_nearest,
    k_nearest_depth_first,
    k_nearest_einn,
    poi_tie_key,
)
from repro.index.pagestats import PageAccessCounter
from repro.index.rtree import RTree
from repro.network.dijkstra import network_distance
from repro.network.graph import NetworkLocation, SpatialNetwork
from repro.network.index import DijkstraIndex, HierarchicalIndex
from repro.core.cache import CachedQueryResult
from repro.core.heap import CandidateHeap
from repro.core.naive_sharing import naive_share_query
from repro.core.range_queries import sharing_range_query, sharing_window_query
from repro.core.senn import ResolutionTier, SennConfig, senn_query
from repro.core.server import ServerAlgorithm, SpatialDatabaseServer
from repro.core.snnn import snnn_query
from repro.core.verification import (
    collect_candidates,
    verify_multi_peer,
    verify_single_peer,
)
from repro.service.client import ServiceClient
from repro.service.engine import QueryService
from repro.service.transport import LoopbackTransport
import repro.testing.oracles as oracles
from repro.testing.scalar_reference import (
    scalar_collect_candidates,
    scalar_verify_multi_peer,
    scalar_verify_single_peer,
)
from repro.testing.scenarios import Scenario, encode_scenario

__all__ = [
    "CheckFailure",
    "DiffReport",
    "repro_snippet",
    "run_scenario",
    "shrink_scenario",
]

#: Absolute tolerance for distance comparisons between implementations.
TOL = 1e-9

#: Completeness margin for non-exact scenarios: the oracle must report at
#: least this much coverage slack before a missing certification counts
#: as a bug (well above float noise, well below scenario geometry).
LOOSE_MARGIN = 1e-7

#: Boundary samples for the multi-peer coverage oracle.  The sampled
#: minimum overestimates the true minimum slack by at most
#: ``pi * candidate_distance / samples`` (slack is 1-Lipschitz along the
#: boundary), which the completeness margin must absorb.
MULTI_ORACLE_SAMPLES = 256


@dataclass(frozen=True)
class CheckFailure:
    """One violated invariant on one scenario."""

    check: str
    detail: str

    def render(self) -> str:
        return f"[{self.check}] {self.detail}"


@dataclass
class DiffReport:
    """Aggregate outcome of a differential run."""

    scenarios_run: int = 0
    checks_run: Dict[str, int] = field(default_factory=dict)
    failures: List[Tuple[int, Scenario, List[CheckFailure]]] = field(
        default_factory=list
    )
    log: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# materialization
# ----------------------------------------------------------------------
@dataclass
class _Materialized:
    pois: List[Tuple[Point, str]]
    query: Point
    own_cache: Optional[CachedQueryResult]
    peer_caches: List[CachedQueryResult]
    all_caches: List[CachedQueryResult]
    config: SennConfig
    tree: RTree


def _build_cache(
    scenario: Scenario, pois: Sequence[Tuple[Point, str]], x: float, y: float, cache_k: int
) -> CachedQueryResult:
    """A peer's cache: its true ``cache_k`` NNs, as peers actually hold them."""
    location = Point(x, y)
    count = min(cache_k, scenario.cache_capacity)
    truth = oracles.oracle_knn(pois, location, count)
    neighbors = tuple(
        NeighborResult(n.point, n.payload, n.distance) for n in truth
    )
    return CachedQueryResult(location, neighbors)


def _materialize(scenario: Scenario) -> _Materialized:
    pois = [(Point(x, y), pid) for x, y, pid in scenario.pois]
    query = Point(*scenario.query)
    caches = [
        _build_cache(scenario, pois, peer.x, peer.y, peer.cache_k)
        for peer in scenario.peers
    ]
    own_cache: Optional[CachedQueryResult] = None
    peer_caches = caches
    if scenario.use_own_cache and caches:
        own_cache, peer_caches = caches[0], caches[1:]
    config = SennConfig(
        k=scenario.k,
        cache_capacity=scenario.cache_capacity,
        coverage_method=(
            CoverageMethod.EXACT
            if scenario.coverage == "exact"
            else CoverageMethod.POLYGON
        ),
        polygon_sides=scenario.polygon_sides,
    )
    # Alternate build paths so both STR packing and R* insertion are
    # exercised across a budget.
    if len(pois) % 2 == 0:
        tree = RTree.bulk_load(list(pois))
    else:
        tree = RTree()
        for point, payload in pois:
            tree.insert(point, payload)
    return _Materialized(
        pois, query, own_cache, peer_caches, caches, config, tree
    )


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def _sequence_mismatch(
    label: str,
    got: Sequence[NeighborResult],
    expected: Sequence[oracles.OracleNeighbor],
) -> Optional[str]:
    """Exact sequence comparison (payload identity and distances)."""
    if len(got) != len(expected):
        return (
            f"{label}: got {len(got)} neighbors, oracle has {len(expected)}: "
            f"{[n.payload for n in got]} vs {[n.payload for n in expected]}"
        )
    for rank, (ours, truth) in enumerate(zip(got, expected)):
        if ours.payload != truth.payload:
            return (
                f"{label}: rank {rank} payload {ours.payload!r} != oracle "
                f"{truth.payload!r}"
            )
        if abs(ours.distance - truth.distance) > TOL:
            return (
                f"{label}: rank {rank} distance {ours.distance!r} != oracle "
                f"{truth.distance!r}"
            )
    return None


def _rank_mismatch(
    label: str,
    got: Sequence[NeighborResult],
    expected: Sequence[oracles.OracleNeighbor],
    truth_distance: Dict[str, float],
) -> Optional[str]:
    """Tie-class comparison: distances per rank exact, payloads real.

    Peer-derived answers may legitimately pick a different member of an
    equal-distance tie class (Lemma 3.2 certifies either), so payload
    equality is required only up to the tie class at each rank.
    """
    if len(got) != len(expected):
        return (
            f"{label}: got {len(got)} neighbors, oracle has {len(expected)}: "
            f"{[n.payload for n in got]} vs {[n.payload for n in expected]}"
        )
    seen: set = set()
    for rank, (ours, truth) in enumerate(zip(got, expected)):
        if abs(ours.distance - truth.distance) > TOL:
            return (
                f"{label}: rank {rank} distance {ours.distance!r} != oracle "
                f"{truth.distance!r} (payload {ours.payload!r})"
            )
        actual = truth_distance.get(ours.payload)
        if actual is None:
            return f"{label}: rank {rank} payload {ours.payload!r} is not a POI"
        if abs(actual - ours.distance) > TOL:
            return (
                f"{label}: rank {rank} payload {ours.payload!r} reported at "
                f"{ours.distance!r} but truly lies at {actual!r}"
            )
        if ours.payload in seen:
            return f"{label}: duplicate payload {ours.payload!r}"
        seen.add(ours.payload)
    return None


def _set_mismatch(
    label: str,
    got: Sequence[NeighborResult],
    expected: Sequence[oracles.OracleNeighbor],
) -> Optional[str]:
    got_set = {n.payload for n in got}
    expected_set = {n.payload for n in expected}
    if got_set != expected_set:
        missing = sorted(map(str, expected_set - got_set))
        extra = sorted(map(str, got_set - expected_set))
        return f"{label}: missing {missing}, extra {extra}"
    return None


def _multi_completeness_margin(
    scenario: Scenario,
    circles: Sequence[Tuple[Point, float]],
    candidate_distance: float,
) -> float:
    """How much oracle slack obliges ``kNN_multiple`` to certify.

    Three conservatisms stack up: the oracle's sampled slack overestimates
    the true slack by up to ``pi * d / samples``; the exact backend
    declares borderline configurations uncovered (by design, within its
    1e-9 tolerance); the polygon backend additionally under-approximates
    each circle by its inscribed polygon, losing up to
    ``r * (1 - cos(pi/sides))`` of radius.
    """
    sampling = math.pi * candidate_distance / MULTI_ORACLE_SAMPLES
    if scenario.coverage == "exact":
        return sampling + 1e-6
    max_radius = max((radius for _, radius in circles), default=0.0)
    sagitta = max_radius * (1.0 - math.cos(math.pi / scenario.polygon_sides))
    return sampling + sagitta + 1e-6


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------
def run_scenario(
    scenario: Scenario, stats: Optional[MutableMapping[str, int]] = None
) -> List[CheckFailure]:
    """Run every differential check on one scenario; return the failures."""
    failures: List[CheckFailure] = []

    def ran(check: str) -> None:
        if stats is not None:
            stats[check] = stats.get(check, 0) + 1

    def fail(check: str, detail: str) -> None:
        failures.append(CheckFailure(check, detail))

    m = _materialize(scenario)
    ranking = oracles.oracle_knn(m.pois, m.query, len(m.pois))
    truth_distance = {n.payload: n.distance for n in ranking}
    expected_k = ranking[: min(scenario.k, len(m.pois))]

    # -- server algorithms against the oracle and each other ------------
    ran("server-inn")
    inn_counter = PageAccessCounter()
    inn = k_nearest(m.tree, m.query, scenario.k, inn_counter)
    mismatch = _sequence_mismatch("INN vs oracle", inn, expected_k)
    if mismatch:
        fail("server-inn", mismatch)

    ran("server-depth-first")
    df = k_nearest_depth_first(m.tree, m.query, scenario.k)
    mismatch = _sequence_mismatch("depth-first vs oracle", df, expected_k)
    if mismatch:
        fail("server-depth-first", mismatch)

    ran("server-einn-plain")
    einn_plain = k_nearest_einn(m.tree, m.query, scenario.k)
    mismatch = _sequence_mismatch("EINN (no bounds) vs oracle", einn_plain, expected_k)
    if mismatch:
        fail("server-einn-plain", mismatch)

    # -- kNN_single soundness & completeness (Lemma 3.2) ----------------
    candidate_count = sum(len(c.neighbors) for c in m.all_caches)
    for cache_index, cache in enumerate(m.all_caches):
        if cache.is_empty():
            continue
        ran("single-peer-lemma")
        probe = CandidateHeap(max(1, candidate_count))
        verify_single_peer(m.query, cache, probe)
        for neighbor in cache.neighbors:
            distance = m.query.distance_to(neighbor.point)
            verdict = oracles.certify_single_oracle(
                m.query, cache.query_location, cache.certain_radius, distance
            )
            certified = probe.is_certain(neighbor.point, neighbor.payload)
            if certified and verdict.definitely_uncovered(TOL):
                fail(
                    "single-peer-soundness",
                    f"peer {cache_index}: {neighbor.payload!r} certified but its "
                    f"disk leaves the certain circle (slack {verdict.slack!r})",
                )
            if not certified and verdict.definitely_covered(
                LOOSE_MARGIN, allow_exact_zero=scenario.exact
            ):
                fail(
                    "single-peer-completeness",
                    f"peer {cache_index}: {neighbor.payload!r} not certified "
                    f"although its disk lies inside the certain circle "
                    f"(slack {verdict.slack!r})",
                )

    # -- kNN_multiple soundness & completeness (Lemma 3.8) --------------
    circles = [
        (c.query_location, c.certain_radius)
        for c in m.all_caches
        if not c.is_empty() and c.certain_radius > 0.0
    ]
    if m.all_caches:
        ran("multi-peer-lemma")
        probe = CandidateHeap(max(1, candidate_count))
        verify_multi_peer(
            m.query,
            m.all_caches,
            probe,
            method=m.config.coverage_method,
            polygon_sides=m.config.polygon_sides,
        )
        candidates = collect_candidates(m.query, m.all_caches)
        for distance, point, payload in candidates:
            margin = _multi_completeness_margin(scenario, circles, distance)
            verdict = oracles.certify_multi_oracle(
                m.query, circles, distance, samples=MULTI_ORACLE_SAMPLES
            )
            certified = probe.is_certain(point, payload)
            if certified and verdict.definitely_uncovered(TOL):
                fail(
                    "multi-peer-soundness",
                    f"{payload!r} certified but its disk leaves the certain "
                    f"region (slack {verdict.slack!r})",
                )
            if not certified:
                if verdict.definitely_covered(margin):
                    fail(
                        "multi-peer-completeness",
                        f"{payload!r} at distance {distance!r} not certified "
                        f"although the certain region covers its disk with "
                        f"slack {verdict.slack!r} (margin {margin!r})",
                    )
                # verify_multi_peer stops at the first uncovered candidate
                # (coverage is monotone); later ones are legitimately
                # unclassified, so the completeness sweep must stop too.
                break

    # -- vectorized verification vs the frozen scalar reference -----------
    # The batched Lemma 3.2 / 3.8 verifiers promise *bit-identical*
    # behaviour to the scalar loops preserved in
    # ``repro.testing.scalar_reference``.  Replay both and demand equal
    # heaps (exact floats, exact order, exact flags), plus a longhand
    # recomputation of every Lemma 3.2 verdict as a second, formula-level
    # oracle.
    ran("vectorized-verify")
    failures.extend(_check_vectorized_verify(m, candidate_count))

    # -- SENN end to end -------------------------------------------------
    ran("senn")
    server = SpatialDatabaseServer(m.tree, algorithm=ServerAlgorithm.EINN)
    senn = senn_query(
        m.query,
        scenario.k,
        m.own_cache,
        m.peer_caches,
        m.config,
        server=server,
    )
    mismatch = _rank_mismatch("SENN vs oracle", senn.neighbors, expected_k, truth_distance)
    if mismatch:
        fail("senn", mismatch)

    ran("senn-certified-ranks")
    certain_entries = senn.heap.certain_entries()[: scenario.k]
    for rank, entry in enumerate(certain_entries):
        if rank >= len(ranking) or abs(entry.distance - ranking[rank].distance) > TOL:
            truth_repr = ranking[rank].distance if rank < len(ranking) else None
            fail(
                "senn-certified-ranks",
                f"certified rank {rank} ({entry.payload!r}) at distance "
                f"{entry.distance!r}, oracle rank distance {truth_repr!r}",
            )
            break

    # -- EINN with client bounds vs INN (results and page accesses) ------
    ran("einn-bounds")
    offline = senn_query(
        m.query, scenario.k, m.own_cache, m.peer_caches, m.config, server=None
    )
    known = [
        NeighborResult(e.point, e.payload, e.distance)
        for e in offline.heap.certain_entries()
    ]
    einn_counter = PageAccessCounter()
    einn_bounded = k_nearest_einn(
        m.tree, m.query, scenario.k, offline.bounds, known, einn_counter
    )
    mismatch = _rank_mismatch(
        "EINN (client bounds) vs oracle", einn_bounded, expected_k, truth_distance
    )
    if mismatch:
        fail("einn-bounds", mismatch)

    ran("einn-page-accesses")
    if einn_counter.total_accesses > inn_counter.total_accesses:
        fail(
            "einn-page-accesses",
            f"EINN read {einn_counter.total_accesses} pages, INN only "
            f"{inn_counter.total_accesses} (bounds {offline.bounds!r})",
        )

    # -- the query service: loopback answers vs the direct server ---------
    # The loopback transport runs the full encode -> decode -> engine ->
    # encode -> decode pipeline, so these checks pin the wire codec and
    # the batching executor (a singleton wave) to the in-process truth
    # bit for bit -- same floats, same tie order, same page breakdown.
    ran("service-knn")
    served = SpatialDatabaseServer(m.tree, algorithm=ServerAlgorithm.EINN)
    direct = SpatialDatabaseServer(m.tree, algorithm=ServerAlgorithm.EINN)
    client = ServiceClient(LoopbackTransport(QueryService(served)))
    via_wire = client.knn_query_detailed(m.query, scenario.k)
    in_process = direct.knn_query_detailed(m.query, scenario.k)
    if via_wire.neighbors != in_process.neighbors:
        fail(
            "service-knn",
            f"loopback kNN {[n.payload for n in via_wire.neighbors]} != "
            f"direct {[n.payload for n in in_process.neighbors]}",
        )
    if via_wire.pages != in_process.pages:
        fail(
            "service-knn",
            f"loopback breakdown {via_wire.pages!r} != direct "
            f"{in_process.pages!r}",
        )

    ran("service-senn")
    senn_served = senn_query(
        m.query,
        scenario.k,
        m.own_cache,
        m.peer_caches,
        m.config,
        server=client,
        server_k=scenario.cache_capacity,
    )
    senn_direct = senn_query(
        m.query,
        scenario.k,
        m.own_cache,
        m.peer_caches,
        m.config,
        server=SpatialDatabaseServer(m.tree, algorithm=ServerAlgorithm.EINN),
        server_k=scenario.cache_capacity,
    )
    if senn_served.neighbors != senn_direct.neighbors:
        fail(
            "service-senn",
            f"SENN over loopback {[n.payload for n in senn_served.neighbors]} "
            f"!= direct {[n.payload for n in senn_direct.neighbors]}",
        )
    if len(senn_served.neighbors) > scenario.k:
        # Regression: policy-2 over-fetch (server_k = cache_capacity > k)
        # must trim the visible answer to k; the surplus is cache-only.
        fail(
            "service-senn",
            f"{len(senn_served.neighbors)} neighbors returned for "
            f"k={scenario.k} (over-fetch surplus leaked into the answer)",
        )
    if senn_served.prefetched != senn_direct.prefetched:
        fail(
            "service-senn",
            f"prefetched set over loopback differs: "
            f"{[n.payload for n in senn_served.prefetched]} != "
            f"{[n.payload for n in senn_direct.prefetched]}",
        )

    ran("service-stream")
    stream = client.incremental_query(m.query)
    streamed: List[NeighborResult] = []
    for neighbor in stream:
        streamed.append(neighbor)
        if len(streamed) >= scenario.k:
            break
    stream.close()
    if streamed != in_process.neighbors[: len(streamed)]:
        fail(
            "service-stream",
            f"streamed prefix {[n.payload for n in streamed]} != direct "
            f"{[n.payload for n in in_process.neighbors]}",
        )

    # -- naive sharing: well-formedness and server fallback ---------------
    ran("naive-sharing")
    naive = naive_share_query(
        m.query, scenario.k, m.peer_caches, adoption_radius=0.25, server=server
    )
    previous = -math.inf
    for neighbor in naive.neighbors:
        actual = truth_distance.get(neighbor.payload)
        if actual is None:
            fail("naive-sharing", f"adopted payload {neighbor.payload!r} is not a POI")
            break
        if abs(actual - neighbor.distance) > TOL:
            fail(
                "naive-sharing",
                f"adopted {neighbor.payload!r} reported at {neighbor.distance!r}, "
                f"truly at {actual!r}",
            )
            break
        if neighbor.distance < previous - TOL:
            fail("naive-sharing", "adopted answer is not in ascending order")
            break
        previous = neighbor.distance
    if len(naive.neighbors) > scenario.k:
        fail("naive-sharing", f"{len(naive.neighbors)} neighbors for k={scenario.k}")
    if naive.tier is ResolutionTier.SERVER:
        mismatch = _rank_mismatch(
            "naive server fallback vs oracle", naive.neighbors, expected_k, truth_distance
        )
        if mismatch:
            fail("naive-sharing", mismatch)

    # -- sharing-based range and window queries ---------------------------
    if scenario.range_radius is not None:
        ran("range-query")
        range_truth = oracles.oracle_range(m.pois, m.query, scenario.range_radius)
        range_result = sharing_range_query(
            m.query,
            scenario.range_radius,
            m.own_cache,
            m.peer_caches,
            m.config,
            server=server,
        )
        mismatch = _set_mismatch(
            f"range({scenario.range_radius!r}) [{range_result.tier.value}] vs oracle",
            range_result.neighbors,
            range_truth,
        )
        if mismatch:
            fail("range-query", mismatch)

        ran("window-query")
        half = scenario.range_radius * 0.75
        window = BoundingBox(
            m.query.x - half, m.query.y - half, m.query.x + half, m.query.y + half
        )
        window_truth = oracles.oracle_window(
            m.pois, window.min_x, window.min_y, window.max_x, window.max_y, m.query
        )
        window_result = sharing_window_query(
            window, m.own_cache, m.peer_caches, m.config, server=server
        )
        mismatch = _set_mismatch(
            f"window [{window_result.tier.value}] vs oracle",
            window_result.neighbors,
            window_truth,
        )
        if mismatch:
            fail("window-query", mismatch)

    # -- SNNN against the independent network oracle ----------------------
    if scenario.check_network:
        ran("snnn")
        failures.extend(_check_snnn(scenario, m))
        ran("network-index")
        failures.extend(_check_network_index(scenario, m))

    return failures


# ----------------------------------------------------------------------
# vectorized-verification cross-check
# ----------------------------------------------------------------------
def _heap_rows(heap: CandidateHeap) -> List[Tuple[float, float, object, float, bool]]:
    return [
        (e.point.x, e.point.y, e.payload, e.distance, e.certain)
        for e in heap.entries()
    ]


def _check_vectorized_verify(
    m: _Materialized, candidate_count: int
) -> List[CheckFailure]:
    failures: List[CheckFailure] = []
    capacity = max(1, candidate_count)

    # Lemma 3.2, per peer: batched verifier vs the scalar loop vs longhand.
    for cache_index, cache in enumerate(m.all_caches):
        if cache.is_empty():
            continue
        live = CandidateHeap(capacity)
        live_certified = verify_single_peer(m.query, cache, live)
        offers = scalar_verify_single_peer(
            m.query,
            cache.query_location,
            cache.certain_radius,
            [(n.point, n.payload) for n in cache.neighbors],
        )
        reference = CandidateHeap(capacity)
        for point, payload, distance, certain in offers:
            reference.add(point, payload, distance, certain)
        # Bit-identity is the contract under test: the batched verifier
        # must reproduce the scalar loop exactly, not within tolerance.
        if _heap_rows(live) != _heap_rows(reference):  # repro: noqa(RPR001)
            failures.append(
                CheckFailure(
                    "vectorized-verify",
                    f"peer {cache_index}: batched kNN_single heap "
                    f"{_heap_rows(live)!r} != scalar reference "
                    f"{_heap_rows(reference)!r}",
                )
            )
        scalar_certified = sum(1 for offer in offers if offer[3])
        # Integer certification counts; equality is exact by definition.
        if live_certified != scalar_certified:  # repro: noqa(RPR001)
            failures.append(
                CheckFailure(
                    "vectorized-verify",
                    f"peer {cache_index}: batched kNN_single certified "
                    f"{live_certified}, scalar reference {scalar_certified}",
                )
            )
        # Longhand oracle: recompute each verdict from the raw formula,
        # independent of both implementations' plumbing.
        delta = math.hypot(
            m.query.x - cache.query_location.x, m.query.y - cache.query_location.y
        )
        for point, payload, distance, certain in offers:
            longhand_distance = math.hypot(m.query.x - point.x, m.query.y - point.y)
            longhand = longhand_distance + delta <= cache.certain_radius
            if (
                # Exact equality is the check: the stored distance must be
                # the very float math.hypot produces, bit for bit.
                distance != longhand_distance  # repro: noqa(RPR001)
                or certain is not longhand
                or live.is_certain(point, payload)
                is not (longhand and reference.is_certain(point, payload))
            ):
                failures.append(
                    CheckFailure(
                        "vectorized-verify",
                        f"peer {cache_index}: {payload!r} verdict/distance "
                        f"disagrees with the longhand Lemma 3.2 formula "
                        f"(distance {distance!r} vs {longhand_distance!r}, "
                        f"certain {certain} vs {longhand})",
                    )
                )
                break

    # Candidate collection: one vectorized distance pass vs per-POI loop.
    if m.all_caches:
        batched = collect_candidates(m.query, m.all_caches)
        scalar = scalar_collect_candidates(m.query, m.all_caches)
        if [
            (distance, point.x, point.y, payload)
            for distance, point, payload in batched
        ] != [
            (distance, point.x, point.y, payload)
            for distance, point, payload in scalar
        ]:
            failures.append(
                CheckFailure(
                    "vectorized-verify",
                    f"collect_candidates diverged: batched {batched!r} != "
                    f"scalar {scalar!r}",
                )
            )

        # Lemma 3.8: batched pre-filter + loop vs the all-scalar loop.
        live = CandidateHeap(capacity)
        live_certified = verify_multi_peer(
            m.query,
            m.all_caches,
            live,
            method=m.config.coverage_method,
            polygon_sides=m.config.polygon_sides,
        )
        reference = CandidateHeap(capacity)
        scalar_certified = scalar_verify_multi_peer(
            m.query,
            m.all_caches,
            reference,
            method=m.config.coverage_method,
            polygon_sides=m.config.polygon_sides,
        )
        if (
            # Same bit-identity contract as the single-peer check above.
            _heap_rows(live) != _heap_rows(reference)  # repro: noqa(RPR001)
            # Integer certification counts; equality is exact by definition.
            or live_certified != scalar_certified  # repro: noqa(RPR001)
        ):
            failures.append(
                CheckFailure(
                    "vectorized-verify",
                    f"batched kNN_multiple (certified {live_certified}, heap "
                    f"{_heap_rows(live)!r}) != scalar reference (certified "
                    f"{scalar_certified}, heap {_heap_rows(reference)!r})",
                )
            )
    return failures


# ----------------------------------------------------------------------
# SNNN cross-check
# ----------------------------------------------------------------------
def _grid_network(side: int = 4) -> SpatialNetwork:
    """A deterministic ``side x side`` grid network over the unit square."""
    network = SpatialNetwork()
    nodes = {}
    for i in range(side):
        for j in range(side):
            nodes[(i, j)] = network.add_node(Point(i / (side - 1), j / (side - 1)))
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                network.add_edge(nodes[(i, j)], nodes[(i + 1, j)])
            if j + 1 < side:
                network.add_edge(nodes[(i, j)], nodes[(i, j + 1)])
    return network


def _flatten_location(location: NetworkLocation) -> oracles.NetworkLoc:
    edge = location.edge
    return ("edge", edge.u, edge.v, location.offset, edge.length)


def _check_snnn(scenario: Scenario, m: _Materialized) -> List[CheckFailure]:
    network = _grid_network()
    # SNNN's IER stop rule assumes POIs lie *on* the network (only the
    # query may stand off it, absorbed by the snap-slack adjustment), so
    # the scenario's free-floating POIs are projected onto the grid first
    # and the whole stack -- server tree, peer caches -- is rebuilt over
    # the projected set.
    projected = [
        (network.snap(point).point, payload) for point, payload in m.pois
    ]
    tree = RTree.bulk_load(list(projected))
    server = SpatialDatabaseServer(tree, algorithm=ServerAlgorithm.EINN)
    caches = [
        _build_cache(scenario, projected, peer.x, peer.y, peer.cache_k)
        for peer in scenario.peers
    ]
    own_cache = None
    peer_caches = caches
    if scenario.use_own_cache and caches:
        own_cache, peer_caches = caches[0], caches[1:]

    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for node in network.node_ids():
        adjacency[node] = [
            (other, edge.length) for other, edge in network.neighbors(node)
        ]
    origin = _flatten_location(network.snap(m.query))
    flattened = [
        (_flatten_location(network.snap(point)), payload)
        for point, payload in projected
    ]
    k = min(scenario.k, len(projected))
    truth = oracles.oracle_network_knn(adjacency, origin, flattened, k)

    result = snnn_query(
        m.query,
        scenario.k,
        network,
        own_cache,
        peer_caches,
        m.config,
        server=server,
    )
    got = sorted(n.network_distance for n in result.neighbors)
    want = sorted(distance for _, distance in truth)
    if len(got) != len(want):
        return [
            CheckFailure(
                "snnn",
                f"SNNN returned {len(got)} neighbors, network oracle has "
                f"{len(want)}",
            )
        ]
    for rank, (ours, truth_distance) in enumerate(zip(got, want)):
        if abs(ours - truth_distance) > 1e-6:
            return [
                CheckFailure(
                    "snnn",
                    f"network distance at rank {rank}: SNNN {ours!r}, oracle "
                    f"{truth_distance!r}",
                )
            ]
    return []


def _check_network_index(scenario: Scenario, m: _Materialized) -> List[CheckFailure]:
    """Hierarchy vs Dijkstra reference vs oracle, bit-for-tie-key-identical.

    The :class:`~repro.network.index.NetworkIndex` contract is *exact*
    agreement (POI ids, tie order under ``poi_tie_key``, and the
    distance floats themselves), so unlike the tolerance-based SNNN
    check these comparisons are bitwise.  The grid is sized up with the
    scenario's POI count so POI-heavy scenarios exercise real partition
    depth; the size depends only on the scenario, keeping replay stable.
    """
    failures: List[CheckFailure] = []
    side = 4 + min(4, len(scenario.pois) // 8)
    network = _grid_network(side)
    pois = [(network.snap(point), payload) for point, payload in m.pois]
    reference = DijkstraIndex(network)
    hierarchy = HierarchicalIndex(network, leaf_size=8)
    reference.register_pois(pois)
    hierarchy.register_pois(pois)
    origin = network.snap(m.query)
    k = min(scenario.k, len(pois))

    want = [
        (n.payload, n.network_distance) for n in reference.knn(origin, k)
    ]
    got = [
        (n.payload, n.network_distance) for n in hierarchy.knn(origin, k)
    ]
    # Bit-identity is the protocol contract: the hierarchy refines every
    # reported distance through the same Dijkstra recurrence.
    if got != want:  # repro: noqa(RPR001)
        failures.append(
            CheckFailure(
                "network-index",
                f"hierarchical kNN {got!r} != Dijkstra reference {want!r}",
            )
        )

    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for node in network.node_ids():
        adjacency[node] = [
            (other, edge.length) for other, edge in network.neighbors(node)
        ]
    truth = oracles.oracle_network_knn(
        adjacency,
        _flatten_location(origin),
        [(_flatten_location(location), payload) for location, payload in pois],
        k,
    )
    # The oracle folds the same candidate floats through the same mins,
    # so its distances and tie order are also exact matches.
    if [(payload, distance) for payload, distance in truth] != want:  # repro: noqa(RPR001)
        failures.append(
            CheckFailure(
                "network-index",
                f"Dijkstra reference {want!r} != network oracle {truth!r}",
            )
        )

    for location, payload in pois[:3]:
        direct = network_distance(network, origin, location)
        indexed = hierarchy.network_distance(origin, location)
        # Point-to-point distances share the exactness contract.
        if direct != indexed and not (  # repro: noqa(RPR001)
            math.isinf(direct) and math.isinf(indexed)
        ):
            failures.append(
                CheckFailure(
                    "network-index",
                    f"network_distance to POI {payload!r}: hierarchy "
                    f"{indexed!r}, Dijkstra {direct!r}",
                )
            )
    return failures


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _round_coord(value: float, grid: float) -> float:
    return round(value / grid) * grid


def _shrink_candidates(scenario: Scenario) -> List[Scenario]:
    """Strictly-simpler variants, most aggressive first."""
    out: List[Scenario] = []

    def attempt(**changes: object) -> None:
        try:
            out.append(replace(scenario, **changes))
        except ValueError:
            pass  # candidate violates Scenario validation; skip it

    for index in range(len(scenario.pois)):
        attempt(pois=scenario.pois[:index] + scenario.pois[index + 1 :])
    for index in range(len(scenario.peers)):
        attempt(
            peers=scenario.peers[:index] + scenario.peers[index + 1 :],
            use_own_cache=scenario.use_own_cache and len(scenario.peers) > 1,
        )
    if scenario.check_network:
        attempt(check_network=False)
    if scenario.range_radius is not None:
        attempt(range_radius=None)
    if scenario.use_own_cache:
        attempt(use_own_cache=False)
    if scenario.k > 1:
        attempt(k=scenario.k - 1)
    for index, peer in enumerate(scenario.peers):
        if peer.cache_k > 0:
            shrunk = replace(peer, cache_k=peer.cache_k - 1)
            attempt(
                peers=scenario.peers[:index] + (shrunk,) + scenario.peers[index + 1 :]
            )
    for grid in (0.25, 0.125):
        rounded_pois = tuple(
            (_round_coord(x, grid), _round_coord(y, grid), pid)
            for x, y, pid in scenario.pois
        )
        rounded_peers = tuple(
            replace(p, x=_round_coord(p.x, grid), y=_round_coord(p.y, grid))
            for p in scenario.peers
        )
        if rounded_pois != scenario.pois or rounded_peers != scenario.peers:
            attempt(
                pois=rounded_pois,
                peers=rounded_peers,
                query=(
                    _round_coord(scenario.query[0], grid),
                    _round_coord(scenario.query[1], grid),
                ),
            )
    return out


def shrink_scenario(
    scenario: Scenario, check: str, max_runs: int = 600
) -> Scenario:
    """Greedy minimization preserving a failure of ``check``.

    Each accepted candidate restarts the pass, so the result is a local
    minimum: no single simplification step keeps the failure alive.
    """

    def still_fails(candidate: Scenario) -> bool:
        try:
            return any(f.check == check for f in run_scenario(candidate))
        except Exception:
            # A shrink step must not trade the original failure for a crash.
            return False

    current = scenario
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in _shrink_candidates(current):
            runs += 1
            if runs > max_runs:
                break
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


def repro_snippet(scenario: Scenario, check: str) -> str:
    """A copy-pasteable pytest regression for a (shrunk) failing scenario."""
    encoded = encode_scenario(scenario)
    return (
        "def test_difftest_regression() -> None:\n"
        f'    """Shrunk repro-difftest failure: {check}."""\n'
        "    from repro.testing.difftest import run_scenario\n"
        "    from repro.testing.scenarios import decode_scenario\n"
        "\n"
        "    scenario = decode_scenario(\n"
        f'        "{encoded}"\n'
        "    )\n"
        "    assert run_scenario(scenario) == []\n"
    )
