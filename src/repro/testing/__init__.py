"""Differential-testing harness for the SENN/SNNN query stack.

Three cooperating pieces (see ``docs/differential_testing.md``):

- :mod:`repro.testing.oracles` -- brute-force ground truth (kNN, range,
  window, network kNN) plus a sampling-based re-derivation of the
  Lemma 3.2 / 3.8 certainty tests, deliberately independent of
  :mod:`repro.geometry.coverage` and :mod:`repro.index`;
- :mod:`repro.testing.scenarios` -- a seeded generator of adversarial
  query scenarios and a compact scenario-string codec for deterministic
  replay;
- :mod:`repro.testing.difftest` -- the differential runner that executes
  SENN / SNNN / naive sharing / EINN / INN / depth-first side by side on
  each scenario, diffs them against the oracles, and shrinks failures to
  minimal reproductions.

The ``repro-difftest`` console script (:mod:`repro.testing.cli`) and the
pytest plugin (:mod:`repro.testing.pytest_plugin`) are the front ends.
"""

from repro.testing.difftest import CheckFailure, DiffReport, run_scenario, shrink_scenario
from repro.testing.oracles import (
    OracleNeighbor,
    certify_multi_oracle,
    certify_single_oracle,
    oracle_knn,
    oracle_network_knn,
    oracle_range,
    oracle_window,
)
from repro.testing.scenarios import (
    PeerSpec,
    Scenario,
    ScenarioGen,
    decode_scenario,
    encode_scenario,
)

__all__ = [
    "CheckFailure",
    "DiffReport",
    "OracleNeighbor",
    "PeerSpec",
    "Scenario",
    "ScenarioGen",
    "certify_multi_oracle",
    "certify_single_oracle",
    "decode_scenario",
    "encode_scenario",
    "oracle_knn",
    "oracle_network_knn",
    "oracle_range",
    "oracle_window",
    "run_scenario",
    "shrink_scenario",
]
