"""repro -- sharing-based spatial queries in mobile environments.

A from-scratch reproduction of *Location-based Spatial Queries with Data
Sharing in Mobile Environments* (Ku, Zimmermann & Wan, ICDE 2006): the
SENN / SNNN peer-to-peer kNN algorithms, the R*-tree server they prune,
the road-network substrate, and the full mobility simulation used in the
paper's evaluation.

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the full
system inventory.
"""

from repro.core import (
    MobileHost,
    ResolutionTier,
    SennConfig,
    SpatialDatabaseServer,
    senn_query,
    snnn_query,
)
from repro.geometry import BoundingBox, Circle, Point, Polygon
from repro.version import __version__

__all__ = [
    "BoundingBox",
    "Circle",
    "MobileHost",
    "Point",
    "Polygon",
    "ResolutionTier",
    "SennConfig",
    "SpatialDatabaseServer",
    "__version__",
    "senn_query",
    "snnn_query",
]
