"""Whole-program view of the ``repro`` source tree.

The deep analysis passes (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.purity`, :mod:`repro.analysis.floatcheck`,
:mod:`repro.analysis.layers`) all need the same raw material: every
module of the project parsed once, keyed by dotted module name.  This
module provides that loader and nothing else, so the passes stay
decoupled from file-system layout.

A :class:`Project` can be built from directories (the normal case) or
from in-memory sources (used by the fault-injection regression tests,
which re-run the passes over a mutated copy of a single module).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.lint import _module_name

__all__ = ["Project", "ProjectModule", "load_project", "project_from_sources"]


@dataclass
class ProjectModule:
    """One parsed module of the project."""

    name: str
    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def package(self) -> str:
        """The containing package (``repro.core`` for ``repro.core.heap``)."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else self.name

    @property
    def is_package(self) -> bool:
        return Path(self.path).stem == "__init__"


@dataclass
class Project:
    """All parsed modules, keyed by dotted name.

    ``modules`` holds the analyzed project proper (normally ``src/repro``);
    ``reference_modules`` holds read-only liveness roots (tests, benchmarks,
    examples) whose *references* count but whose definitions are not
    themselves analyzed for dead code or contracts.
    """

    modules: Dict[str, ProjectModule] = field(default_factory=dict)
    reference_modules: Dict[str, ProjectModule] = field(default_factory=dict)
    #: Files that could not be parsed: (path, message).
    errors: List[Tuple[str, str]] = field(default_factory=list)

    def all_modules(self) -> Iterator[ProjectModule]:
        yield from self.modules.values()
        yield from self.reference_modules.values()

    def get(self, name: str) -> Optional[ProjectModule]:
        module = self.modules.get(name)
        if module is None:
            module = self.reference_modules.get(name)
        return module

    def resolve_import(self, name: str) -> Optional[str]:
        """Map an imported dotted name onto a project module, if any.

        ``repro.core.heap`` resolves to itself; ``repro.core.heap.Foo``
        resolves to ``repro.core.heap``; ``repro.core`` resolves to the
        package ``__init__``.
        """
        candidate = name
        while candidate:
            if candidate in self.modules or candidate in self.reference_modules:
                return candidate
            if "." not in candidate:
                return None
            candidate = candidate.rsplit(".", 1)[0]
        return None

    def replace_source(self, name: str, source: str) -> "Project":
        """A copy of the project with one module's source swapped out.

        Used by regression tests to verify that a seeded mutation is
        caught statically; raises ``KeyError`` for unknown modules and
        propagates ``SyntaxError`` for broken replacements.
        """
        module = self.modules[name]
        tree = ast.parse(source, filename=module.path)
        replacement = ProjectModule(name=name, path=module.path, source=source, tree=tree)
        modules = dict(self.modules)
        modules[name] = replacement
        return Project(
            modules=modules,
            reference_modules=dict(self.reference_modules),
            errors=list(self.errors),
        )


def load_project(
    roots: Sequence[Path],
    reference_roots: Sequence[Path] = (),
) -> Project:
    """Parse every ``*.py`` under ``roots`` (and ``reference_roots``)."""
    project = Project()
    _load_into(project.modules, roots, project.errors)
    _load_into(project.reference_modules, reference_roots, project.errors)
    # A module present in both views is analyzed, not merely referenced.
    for name in list(project.reference_modules):
        if name in project.modules:
            del project.reference_modules[name]
    return project


def project_from_sources(sources: Mapping[str, str]) -> Project:
    """Build a project from ``{dotted_name: source}`` (tests/fixtures)."""
    project = Project()
    for name, source in sources.items():
        path = name.replace(".", "/") + ".py"
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            project.errors.append((path, str(exc)))
            continue
        project.modules[name] = ProjectModule(
            name=name, path=path, source=source, tree=tree
        )
    return project


def _load_into(
    target: Dict[str, ProjectModule],
    roots: Sequence[Path],
    errors: List[Tuple[str, str]],
) -> None:
    for root in roots:
        if root.is_file():
            files: Tuple[Path, ...] = (root,)
        else:
            files = tuple(sorted(root.rglob("*.py")))
        for file_path in files:
            if _skip(file_path):
                continue
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(file_path))
            except (OSError, SyntaxError, UnicodeDecodeError) as exc:
                errors.append((str(file_path), str(exc)))
                continue
            name = _module_name(str(file_path))
            target[name] = ProjectModule(
                name=name, path=str(file_path), source=source, tree=tree
            )


def _skip(path: Path) -> bool:
    parts = set(path.parts)
    return bool(
        parts & {"__pycache__", ".git", "build", "dist"}
        or any(part.endswith(".egg-info") for part in path.parts)
    )
