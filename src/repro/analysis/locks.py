"""The lock-order graph: shared vocabulary of the concurrency pass.

Both halves of the concurrency tooling speak in *canonical lock names*:

* the static pass (:mod:`repro.analysis.concurrency`) derives them from
  the program text -- ``self._lock`` inside ``TcpTransport`` becomes
  ``TcpTransport._lock``, a local ``send_lock = named_async_lock(...)``
  takes the string literal passed to the factory;
* the runtime race sanitizer (:mod:`repro.analysis.runtime`) gets them
  verbatim from :func:`~repro.analysis.runtime.named_lock` /
  :func:`~repro.analysis.runtime.named_async_lock` call sites.

Because the names agree by construction, the runtime-observed acquisition
graph can be checked as a *subset* of the static one
(:meth:`LockOrderGraph.missing_edges`), which is the acceptance check the
service stress tests run.

:data:`repro.analysis.config.LOCK_ALIASES` folds locks that are one
object travelling under several attribute names (the registry lock handed
into each metric instrument) onto a single canonical node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.analysis import config

__all__ = ["LockOrderGraph", "LockSite", "canonical_lock_name"]


def canonical_lock_name(
    name: str, aliases: Mapping[str, str] = config.LOCK_ALIASES
) -> str:
    """Fold an observed lock name onto its canonical node.

    Aliases are applied once (no chains): the tables in ``config`` map
    every synonym directly to the canonical name.
    """
    return aliases.get(name, name)


@dataclass(frozen=True)
class LockSite:
    """Provenance of one lock-order edge (where the inner acquire sits)."""

    module: str
    lineno: int
    note: str = ""


@dataclass
class LockOrderGraph:
    """Directed graph: edge ``a -> b`` means ``b`` acquired while holding ``a``."""

    #: (outer, inner) -> every site that witnessed the edge.
    edges: Dict[Tuple[str, str], List[LockSite]] = field(default_factory=dict)

    def add_edge(self, outer: str, inner: str, site: LockSite) -> None:
        """Record that ``inner`` was acquired while ``outer`` was held."""
        outer = canonical_lock_name(outer)
        inner = canonical_lock_name(inner)
        self.edges.setdefault((outer, inner), []).append(site)

    def nodes(self) -> List[str]:
        """Every lock that participates in at least one edge, sorted."""
        seen: Set[str] = set()
        for outer, inner in self.edges:
            seen.add(outer)
            seen.add(inner)
        return sorted(seen)

    def successors(self, lock: str) -> List[str]:
        """Locks acquired (somewhere) while ``lock`` is held, sorted."""
        return sorted({inner for outer, inner in self.edges if outer == lock})

    def cycles(self) -> List[List[str]]:
        """Elementary deadlock cycles (Tarjan SCCs of size > 1, plus self-loops).

        A cycle ``A -> B -> A`` means two code paths acquire the same two
        locks in opposite orders; a self-loop means a non-reentrant lock
        is re-acquired while already held.  Either is a potential
        deadlock (RPR019).
        """
        graph: Dict[str, Set[str]] = {}
        for outer, inner in self.edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        result: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    result.append(sorted(component))

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return result

    def witness(self, outer: str, inner: str) -> List[LockSite]:
        """Every recorded site for one edge (empty when absent)."""
        return list(self.edges.get((outer, inner), ()))

    def missing_edges(
        self, observed: Iterable[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        """Observed edges the static graph does not predict, sorted.

        The runtime sanitizer feeds its recorded graph in here; a
        non-empty result means execution took a lock nesting the static
        pass never saw -- either an analysis gap or a genuinely dynamic
        acquisition order, both worth a test failure.
        """
        return sorted(set(observed) - set(self.edges))

    def render(self) -> List[str]:
        """Human-readable ``outer -> inner  (module:line)`` lines, sorted."""
        lines: List[str] = []
        for (outer, inner) in sorted(self.edges):
            site = self.edges[(outer, inner)][0]
            suffix = f"  ({site.module}:{site.lineno})" if site.module else ""
            lines.append(f"{outer} -> {inner}{suffix}")
        return lines
