"""Whole-program concurrency analysis: ``repro-lint --concurrency``.

The service era (PR 6) mixed three execution contexts -- the caller's
thread, the asyncio event-loop thread of
:class:`~repro.service.asyncserver.BackgroundServer`, and the client
worker threads -- around shared mutable state.  This pass statically
checks the discipline that keeps them honest:

========  ============================================================
RPR015    shared field written without the lock its other writes hold
          (or outside its declared ``guarded-by`` guard)
RPR016    blocking call (socket, ``time.sleep``, subprocess) reachable
          from a coroutine without ``run_in_executor``
RPR017    ``await`` while holding a ``threading.Lock``
RPR018    ``create_task``/``ensure_future`` result dropped on the floor
RPR019    lock-order cycle (potential deadlock), incl. self-deadlock on
          a non-reentrant lock
RPR020    shared field with unlocked writes and no
          ``# repro: guarded-by(<lock>)`` annotation
========  ============================================================

**What counts as shared.**  A class is analyzed for field discipline
when it (a) owns a lock-like attribute (assigned from
``threading.Lock()``/``asyncio.Lock()``/``named_lock(...)`` or named
``*_lock``), (b) hands one of its bound methods to
``threading.Thread(target=...)``, or (c) is listed in
:data:`repro.analysis.config.CONCURRENT_CLASSES`.  Everything else
(R-trees, candidate heaps, page counters) is single-context by the
documented thread model and deliberately out of scope -- flagging every
reachable object would drown the signal.

**Guard inference.**  Writes inside ``__init__``/``__post_init__`` are
exempt (the object has not escaped).  A field whose every other write
happens under one canonical lock gets a ``field -> lock`` entry in the
guarded-by table (emitted into the report); mixed locked/unlocked
writes are RPR015; all-unlocked writes demand an explicit annotation
(RPR020), either a lock name or an ownership sentinel from
:data:`repro.analysis.config.GUARDED_BY_OWNERS`.

**Lock order.**  Lexical ``with`` nesting plus one interprocedural hop
(call under a held lock -> the callee's transitively acquired locks,
fixpoint over the call graph with the same import-reachability filter
the purity pass uses) builds a :class:`~repro.analysis.locks.
LockOrderGraph`; cycles are RPR019.  The runtime race sanitizer
(:mod:`repro.analysis.runtime`) records the same graph from live
acquisitions, and the service tests assert the observed edges are a
subset of the static ones.

Known approximations, on the side of silence: nested function bodies
are not scanned for field writes/lock scopes (closures in this codebase
only touch locals), and writes through a global alias (``OBS.enabled``)
are not attributed to the class.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.callgraph import (
    CallGraph,
    ImportGraph,
    build_call_graph,
    build_import_graph,
)
from repro.analysis.lint import Violation
from repro.analysis.locks import LockOrderGraph, LockSite, canonical_lock_name
from repro.analysis.project import Project, ProjectModule, load_project
from repro.analysis.purity import (
    Effect,
    FunctionEffects,
    infer_effects,
    function_nodes,
    module_reachability,
)

__all__ = [
    "CONCURRENCY_RULES",
    "ConcurrencyAnalysis",
    "FieldWrite",
    "LockDecl",
    "SharedClass",
    "analyze_concurrency",
    "concurrency_report",
    "run_concurrency",
]

#: Code -> (name, description), mirroring the shallow/deep catalogues.
CONCURRENCY_RULES: Dict[str, Tuple[str, str]] = {
    "RPR015": (
        "unguarded-shared-write",
        "field of a cross-context class written without the lock its "
        "other writes hold, or outside its declared guarded-by guard",
    ),
    "RPR016": (
        "blocking-call-in-coroutine",
        "coroutine can reach a blocking call (socket, time.sleep, "
        "subprocess) without handing it to run_in_executor",
    ),
    "RPR017": (
        "await-under-thread-lock",
        "await expression while a threading.Lock is held (stalls every "
        "task on the loop until release)",
    ),
    "RPR018": (
        "dropped-task",
        "create_task/ensure_future result discarded: the task can be "
        "garbage-collected mid-flight and its exceptions are lost",
    ),
    "RPR019": (
        "lock-order-cycle",
        "two code paths acquire the same locks in opposite orders (or "
        "re-acquire a non-reentrant lock): potential deadlock",
    ),
    "RPR020": (
        "unannotated-shared-field",
        "field of a cross-context class with unlocked writes and no "
        "`# repro: guarded-by(<lock-or-owner>)` annotation",
    ),
}

_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})
_TASK_FACTORIES = frozenset({"create_task", "ensure_future"})
_GUARDED_RE = re.compile(r"#\s*repro:\s*guarded-by\(([^)]+)\)")
#: Receiver-mutating method names treated as writes of ``self.field``
#: when called as ``self.field.method(...)`` (subset of the purity
#: catalogue that matters for containers used as shared state).
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "popitem", "clear",
     "add", "discard", "update", "setdefault"}
)
#: Attribute names excluded from name-matched call resolution in the
#: lock-order fixpoint: they are ubiquitous stdlib container/protocol
#: methods, so matching them against same-named project methods floods
#: the graph with false edges (``self._held.get(...)`` is a dict probe,
#: not ``SomeCache.get``).  Explicit-receiver ``.acquire()`` on a known
#: lock is handled separately by the scanner, so it loses nothing here.
_GENERIC_ATTRS = frozenset(
    {"get", "set", "put", "pop", "append", "add", "update", "items",
     "keys", "values", "clear", "discard", "remove", "extend", "insert",
     "setdefault", "popitem", "sort", "reverse", "copy", "join", "split",
     "strip", "close", "read", "write", "send", "recv", "acquire",
     "release", "wait", "notify", "start", "stop", "run", "cancel"}
)


# ----------------------------------------------------------------------
# facts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockDecl:
    """One lock-like attribute/local discovered in the source."""

    canonical: str
    #: ``thread`` / ``async`` / ``unknown`` (lock-named attr whose value
    #: the classifier cannot see, e.g. assigned from a parameter).
    kind: str
    reentrant: bool
    lineno: int


@dataclass(frozen=True)
class FieldWrite:
    """One write to ``self.<field>`` inside a method."""

    field: str
    method: str
    lineno: int
    #: Canonical names of locks lexically held at the write.
    held: FrozenSet[str]
    in_init: bool
    #: Raw ``guarded-by`` spec on the write's line, if any.
    annotation: Optional[str]


@dataclass
class SharedClass:
    """A class the pass treats as reachable from more than one context."""

    module: str
    name: str
    lineno: int
    reason: str
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    writes: List[FieldWrite] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class _ClassFacts:
    """Raw per-class scan results (shared or not -- decided later)."""

    module: str
    name: str
    lineno: int
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    writes: List[FieldWrite] = field(default_factory=list)
    thread_target: bool = False


@dataclass
class _ModuleFacts:
    """Everything one module contributed to the pass."""

    classes: Dict[str, _ClassFacts] = field(default_factory=dict)
    #: qualname -> canonical locks acquired directly in that function.
    direct_acquires: Dict[str, Set[str]] = field(default_factory=dict)
    #: qualname -> [(lineno, held)] for every call made under a lock.
    calls_under_lock: Dict[str, List[Tuple[int, Tuple[str, ...]]]] = field(
        default_factory=dict
    )
    #: (outer, inner, lineno) lexical nesting edges.
    nest_edges: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (canonical, lineno) self-reacquisitions of non-reentrant locks.
    self_edges: List[Tuple[str, int]] = field(default_factory=list)
    #: (qualname, lock, lineno) await-under-thread-lock sites (RPR017).
    await_under_lock: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (qualname, factory, lineno) dropped task creations (RPR018).
    dropped_tasks: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Human-readable thread/task entry points discovered in the module.
    entries: List[str] = field(default_factory=list)


@dataclass
class ConcurrencyAnalysis:
    """Everything one ``--concurrency`` run produced."""

    project: Project
    graph: CallGraph
    import_graph: ImportGraph
    effects: Dict[str, FunctionEffects]
    shared_classes: Dict[str, SharedClass] = field(default_factory=dict)
    #: ``Class.field`` -> canonical lock (or ``owner:<sentinel>``).
    guarded_by: Dict[str, str] = field(default_factory=dict)
    lock_graph: LockOrderGraph = field(default_factory=LockOrderGraph)
    thread_entries: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# lock classification
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def _lock_value(value: ast.expr) -> Optional[Tuple[str, bool, Optional[str]]]:
    """``(kind, reentrant, explicit_name)`` when ``value`` builds a lock."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    tail = dotted.rsplit(".", 1)[-1]
    if tail in {"Lock", "RLock"}:
        kind = "async" if dotted.startswith("asyncio.") else "thread"
        return kind, tail == "RLock", None
    if tail in {"named_lock", "named_async_lock"}:
        name: Optional[str] = None
        if value.args and isinstance(value.args[0], ast.Constant):
            raw = value.args[0].value
            if isinstance(raw, str):
                name = raw
        kind = "async" if tail == "named_async_lock" else "thread"
        return kind, False, name
    return None


def _is_lock_name(attr: str) -> bool:
    return attr == "lock" or attr.endswith("_lock")


def _self_field(target: ast.expr) -> Optional[str]:
    """``self.x``, ``self.x[...]`` or deeper chains rooted at ``self.x``."""
    current: ast.expr = target
    last_attr: Optional[str] = None
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current, ast.Attribute):
            last_attr = current.attr
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self":
        return last_attr
    return None


def _class_lock_table(node: ast.ClassDef, cls_name: str) -> Dict[str, LockDecl]:
    """Lock-like ``self.<attr>`` assignments anywhere in the class body."""
    locks: Dict[str, LockDecl] = {}
    for sub in ast.walk(node):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(sub, ast.Assign):
            targets, value = list(sub.targets), sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        if value is None:
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            classified = _lock_value(value)
            if classified is not None:
                kind, reentrant, explicit = classified
                canonical = canonical_lock_name(explicit or f"{cls_name}.{attr}")
                locks[attr] = LockDecl(canonical, kind, reentrant, sub.lineno)
            elif _is_lock_name(attr) and attr not in locks:
                canonical = canonical_lock_name(f"{cls_name}.{attr}")
                locks[attr] = LockDecl(canonical, "unknown", False, sub.lineno)
    return locks


# ----------------------------------------------------------------------
# per-function scan
# ----------------------------------------------------------------------
class _FunctionScanner:
    """Walk one function body tracking the lexically held lock stack.

    Nested function definitions are *not* descended into (their bodies
    execute later, under a different stack); ``with``/``async with``
    scoping is tracked exactly.
    """

    def __init__(
        self,
        module: ProjectModule,
        qualname: str,
        cls: Optional[_ClassFacts],
        class_locks: Dict[str, LockDecl],
        facts: _ModuleFacts,
    ) -> None:
        self.module = module
        self.qualname = qualname
        self.cls = cls
        self.class_locks = class_locks
        self.facts = facts
        self.method = qualname.rsplit(".", 1)[-1]
        self.local_locks: Dict[str, LockDecl] = {}
        self.acquires: Set[str] = set()
        self.calls: List[Tuple[int, Tuple[str, ...]]] = []

    # -- lock expression canonicalization -----------------------------
    def _canon(self, expr: ast.expr) -> Optional[LockDecl]:
        if isinstance(expr, ast.Name):
            return self.local_locks.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return self.class_locks.get(expr.attr)
        return None

    # -- main walk -----------------------------------------------------
    def scan(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._prescan_locals(node.body)
        self._stmts(node.body, ())
        self.facts.direct_acquires[self.qualname] = self.acquires
        if self.calls:
            self.facts.calls_under_lock[self.qualname] = self.calls

    def _prescan_locals(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    classified = _lock_value(sub.value)
                    if classified is not None and isinstance(target, ast.Name):
                        kind, reentrant, explicit = classified
                        canonical = canonical_lock_name(
                            explicit
                            or f"{self.qualname.split('.')[-2]}."
                            f"{self.method}.{target.id}"
                        )
                        self.local_locks[target.id] = LockDecl(
                            canonical, kind, reentrant, sub.lineno
                        )

    def _acquired(self, decl: LockDecl, held: Tuple[LockDecl, ...], lineno: int) -> None:
        self.acquires.add(decl.canonical)
        for outer in held:
            if outer.canonical == decl.canonical:
                if not decl.reentrant:
                    self.facts.self_edges.append((decl.canonical, lineno))
            else:
                self.facts.nest_edges.append(
                    (outer.canonical, decl.canonical, lineno)
                )

    def _stmts(self, body: Sequence[ast.stmt], held: Tuple[LockDecl, ...]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: Tuple[LockDecl, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[LockDecl] = []
            stack = held
            for item in stmt.items:
                self._exprs(item.context_expr, stack)
                if item.optional_vars is not None:
                    self._exprs(item.optional_vars, stack)
                decl = self._canon(item.context_expr)
                if decl is not None:
                    self._acquired(decl, stack, stmt.lineno)
                    acquired.append(decl)
                    stack = stack + (decl,)
            self._stmts(stmt.body, stack)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._exprs(stmt.test, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exprs(stmt.iter, held)
            self._exprs(stmt.target, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body, held)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self._exprs(handler.type, held)
                self._stmts(handler.body, held)
            self._stmts(stmt.orelse, held)
            self._stmts(stmt.finalbody, held)
            return
        # Simple statement: record writes, then walk its expressions.
        self._record_writes(stmt, held)
        self._exprs(stmt, held)

    def _record_writes(self, stmt: ast.stmt, held: Tuple[LockDecl, ...]) -> None:
        if self.cls is None:
            return
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                return
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATOR_METHODS
            ):
                owner = call.func.value
                field_name = _self_field(owner)
                if field_name is not None:
                    self._add_write(field_name, stmt.lineno, held)
            return
        for target in targets:
            field_name = _self_field(target)
            if field_name is not None and field_name not in self.class_locks:
                self._add_write(field_name, stmt.lineno, held)

    def _add_write(
        self, field_name: str, lineno: int, held: Tuple[LockDecl, ...]
    ) -> None:
        assert self.cls is not None
        line = (
            self.module.lines[lineno - 1]
            if 0 < lineno <= len(self.module.lines)
            else ""
        )
        match = _GUARDED_RE.search(line)
        self.cls.writes.append(
            FieldWrite(
                field=field_name,
                method=self.method,
                lineno=lineno,
                held=frozenset(decl.canonical for decl in held),
                in_init=self.method in _INIT_METHODS,
                annotation=match.group(1).strip() if match else None,
            )
        )

    def _exprs(self, node: ast.AST, held: Tuple[LockDecl, ...]) -> None:
        """Walk an expression tree, skipping nested function bodies."""
        for sub in ast.iter_child_nodes(node):
            if isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            self._expr_node(sub, held)
            self._exprs(sub, held)

    def _expr_node(self, sub: ast.AST, held: Tuple[LockDecl, ...]) -> None:
        if isinstance(sub, ast.Await):
            thread_held = [
                decl for decl in held if decl.kind in ("thread", "unknown")
            ]
            if thread_held:
                self.facts.await_under_lock.append(
                    (self.qualname, thread_held[-1].canonical, sub.lineno)
                )
            return
        if not isinstance(sub, ast.Call):
            return
        call = sub
        if held:
            self.calls.append(
                (call.lineno, tuple(decl.canonical for decl in held))
            )
        dotted = _dotted(call.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        # Explicit .acquire() on a known lock counts as an acquisition
        # event for ordering (no scope tracking: .release() placement is
        # the runtime sanitizer's job).
        if tail == "acquire" and isinstance(call.func, ast.Attribute):
            decl = self._canon(call.func.value)
            if decl is not None:
                self._acquired(decl, held, call.lineno)
        # Thread entry points.
        if tail == "Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    self._thread_target(keyword.value, call.lineno)
        elif tail in {"submit", "run_in_executor", "to_thread"}:
            args = call.args[1:] if tail == "run_in_executor" else call.args
            if args:
                name = _dotted(args[0])
                if name:
                    self.facts.entries.append(
                        f"{self.module.name}:{call.lineno} "
                        f"executor -> {name}"
                    )

    def _thread_target(self, value: ast.expr, lineno: int) -> None:
        name = _dotted(value)
        if name:
            self.facts.entries.append(
                f"{self.module.name}:{lineno} thread -> {name}"
            )
        if (
            self.cls is not None
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            self.cls.thread_target = True


def _scan_dropped_tasks(
    module: ProjectModule,
    qualname: str,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    facts: _ModuleFacts,
) -> None:
    """RPR018: expression statements whose value is a task factory call."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Expr) or not isinstance(sub.value, ast.Call):
            continue
        dotted = _dotted(sub.value.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        if tail in _TASK_FACTORIES:
            facts.dropped_tasks.append((qualname, tail, sub.value.lineno))


# ----------------------------------------------------------------------
# module scan
# ----------------------------------------------------------------------
def _scan_module(module: ProjectModule) -> _ModuleFacts:
    facts = _ModuleFacts()

    def scan_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: Optional[_ClassFacts],
        locks: Dict[str, LockDecl],
    ) -> None:
        owner = f"{module.name}.{cls.name}" if cls is not None else module.name
        qualname = f"{owner}.{node.name}"
        scanner = _FunctionScanner(module, qualname, cls, locks, facts)
        scanner.scan(node)
        _scan_dropped_tasks(module, qualname, node, facts)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, None, {})
        elif isinstance(node, ast.ClassDef):
            cls = _ClassFacts(module.name, node.name, node.lineno)
            cls.locks = _class_lock_table(node, node.name)
            facts.classes[node.name] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(item, cls, cls.locks)
    return facts


# ----------------------------------------------------------------------
# field-discipline verdicts (RPR015 / RPR020)
# ----------------------------------------------------------------------
def _known_locks(per_module: Dict[str, _ModuleFacts]) -> Set[str]:
    known: Set[str] = set()
    for facts in per_module.values():
        for cls in facts.classes.values():
            known.update(decl.canonical for decl in cls.locks.values())
        for acquired in facts.direct_acquires.values():
            known.update(acquired)
    known.update(config.LOCK_ALIASES.values())
    return known


def _canon_spec(spec: str, cls_name: str) -> str:
    spec = spec.strip()
    if spec in config.GUARDED_BY_OWNERS:
        return f"owner:{spec}"
    if spec.startswith("self."):
        return canonical_lock_name(f"{cls_name}.{spec[len('self.'):]}")
    return canonical_lock_name(spec)


def _field_verdicts(
    shared: SharedClass,
    known_locks: Set[str],
    path: str,
    guarded_by: Dict[str, str],
    violations: List[Violation],
) -> None:
    by_field: Dict[str, List[FieldWrite]] = {}
    for write in shared.writes:
        by_field.setdefault(write.field, []).append(write)

    for field_name in sorted(by_field):
        writes = by_field[field_name]
        label = f"{shared.name}.{field_name}"
        # Annotations declared on *any* write line (init included) apply
        # to the field as a whole.
        specs = {
            _canon_spec(write.annotation, shared.name)
            for write in writes
            if write.annotation is not None
        }
        for spec in sorted(specs):
            if not spec.startswith("owner:") and spec not in known_locks:
                first = writes[0]
                violations.append(
                    Violation(
                        path,
                        first.lineno,
                        0,
                        "RPR020",
                        f"unknown guarded-by spec on `{label}`: not a "
                        "declared lock or an owner sentinel "
                        f"({', '.join(sorted(config.GUARDED_BY_OWNERS))})",
                    )
                )
                return
        live = [write for write in writes if not write.in_init]
        owners = {spec for spec in specs if spec.startswith("owner:")}
        lock_specs = {spec for spec in specs if not spec.startswith("owner:")}

        if owners:
            guarded_by[label] = sorted(owners)[0]
            continue
        if lock_specs:
            guard = sorted(lock_specs)[0]
            guarded_by[label] = guard
            for write in live:
                if guard not in write.held:
                    violations.append(
                        Violation(
                            path,
                            write.lineno,
                            0,
                            "RPR015",
                            f"`{shared.qualname}.{write.method}` writes "
                            f"`{label}` without holding its declared "
                            f"guard `{guard}`",
                        )
                    )
            continue
        if not live:
            continue
        common = frozenset.intersection(*(write.held for write in live))
        if common:
            guarded_by[label] = sorted(common)[0]
            continue
        candidates: Set[str] = set()
        for write in live:
            candidates.update(write.held)
        if not candidates:
            first = live[0]
            violations.append(
                Violation(
                    path,
                    first.lineno,
                    0,
                    "RPR020",
                    f"shared class `{shared.qualname}` ({shared.reason}) "
                    f"writes field `{field_name}` without any lock; add a "
                    "lock or a `# repro: guarded-by(<lock-or-owner>)` "
                    "annotation",
                )
            )
            continue
        lock_hint = sorted(candidates)[0]
        for write in live:
            if not write.held & candidates:
                violations.append(
                    Violation(
                        path,
                        write.lineno,
                        0,
                        "RPR015",
                        f"`{shared.qualname}.{write.method}` writes "
                        f"`{label}` without `{lock_hint}`, which other "
                        "writes of the field hold",
                    )
                )


# ----------------------------------------------------------------------
# lock-order graph (RPR019)
# ----------------------------------------------------------------------
def _build_lock_graph(
    project: Project,
    graph: CallGraph,
    per_module: Dict[str, _ModuleFacts],
    reachable: Dict[str, Set[str]],
) -> LockOrderGraph:
    lock_graph = LockOrderGraph()
    module_of: Dict[str, str] = {}
    for name, facts in per_module.items():
        for qualname in facts.direct_acquires:
            module_of[qualname] = name
        for outer, inner, lineno in facts.nest_edges:
            lock_graph.add_edge(outer, inner, LockSite(name, lineno, "nested with"))

    # Fixpoint: locks transitively acquired by each function.
    acquires: Dict[str, Set[str]] = {}
    for facts in per_module.values():
        for qualname, direct in facts.direct_acquires.items():
            acquires[qualname] = set(direct)

    def candidates_of(qualname: str) -> Dict[int, List[str]]:
        info = graph.functions.get(qualname)
        table: Dict[int, List[str]] = {}
        if info is None:
            return table
        allowed = reachable.get(info.module, set())
        for site in info.call_sites:
            names = list(site.candidates)
            if (
                not site.resolved
                and site.attr is not None
                and site.attr not in _GENERIC_ATTRS
            ):
                names.extend(
                    c
                    for c in graph.by_name.get(site.attr, ())
                    if graph.functions[c].module == info.module
                    or graph.functions[c].module in allowed
                )
            if names:
                table.setdefault(site.lineno, []).extend(names)
        return table

    site_tables = {qualname: candidates_of(qualname) for qualname in acquires}
    changed = True
    while changed:
        changed = False
        for qualname, table in site_tables.items():
            mine = acquires[qualname]
            before = len(mine)
            for names in table.values():
                for callee in names:
                    if callee != qualname and callee in acquires:
                        mine |= acquires[callee]
            changed |= len(mine) != before

    # Interprocedural edges: a call made under a held lock reaches every
    # lock its candidates transitively acquire.
    for name, facts in per_module.items():
        for qualname, calls in facts.calls_under_lock.items():
            table = site_tables.get(qualname, {})
            for lineno, held in calls:
                for callee in table.get(lineno, ()):
                    if callee == qualname:
                        continue
                    for inner in acquires.get(callee, ()):
                        for outer in held:
                            if inner != outer:
                                lock_graph.add_edge(
                                    outer,
                                    inner,
                                    LockSite(
                                        name, lineno, f"via {callee}"
                                    ),
                                )
    for name, facts in per_module.items():
        for canonical, lineno in facts.self_edges:
            lock_graph.add_edge(
                canonical,
                canonical,
                LockSite(name, lineno, "re-acquired while held"),
            )
    return lock_graph


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def analyze_concurrency(
    project: Project, cached: Optional[CallGraph] = None
) -> ConcurrencyAnalysis:
    """Run the concurrency pass over an already-loaded project."""
    from repro.analysis.deep import apply_suppressions, suppression_oracle

    graph = build_call_graph(project, cached)
    import_graph = build_import_graph(project)
    oracle = suppression_oracle(project)
    effects = infer_effects(
        project, graph, import_graph=import_graph, is_suppressed=oracle
    )
    reachable = module_reachability(import_graph)
    nodes = function_nodes(project, graph)
    paths = {name: module.path for name, module in project.modules.items()}

    per_module = {
        name: _scan_module(module) for name, module in project.modules.items()
    }

    analysis = ConcurrencyAnalysis(
        project=project,
        graph=graph,
        import_graph=import_graph,
        effects=effects,
    )
    violations: List[Violation] = []

    # -- shared classes + field discipline (RPR015/RPR020) ------------
    known = _known_locks(per_module)
    for name in sorted(per_module):
        facts = per_module[name]
        for cls in facts.classes.values():
            qualname = f"{name}.{cls.name}"
            if cls.locks:
                reason = "owns lock " + ", ".join(
                    sorted({d.canonical for d in cls.locks.values()})
                )
            elif cls.thread_target:
                reason = "hands a bound method to threading.Thread"
            elif qualname in config.CONCURRENT_CLASSES:
                reason = "listed in config.CONCURRENT_CLASSES"
            else:
                continue
            shared = SharedClass(
                module=name,
                name=cls.name,
                lineno=cls.lineno,
                reason=reason,
                locks=cls.locks,
                writes=cls.writes,
            )
            analysis.shared_classes[qualname] = shared
            _field_verdicts(
                shared, known, paths[name], analysis.guarded_by, violations
            )
        analysis.thread_entries.extend(facts.entries)
    analysis.thread_entries.sort()

    # -- asyncio hygiene (RPR016/RPR017/RPR018) ------------------------
    for qualname in sorted(effects):
        node = nodes.get(qualname)
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        report = effects[qualname]
        if report.has(Effect.BLOCKING):
            info = graph.functions[qualname]
            witness = report.effects[Effect.BLOCKING]
            violations.append(
                Violation(
                    paths[info.module],
                    witness.lineno,
                    0,
                    "RPR016",
                    f"coroutine `{qualname}` can reach a blocking call "
                    f"({witness.description}); hand it to "
                    "run_in_executor or split the blocking part out",
                )
            )
    for name in sorted(per_module):
        facts = per_module[name]
        for qualname, lock, lineno in facts.await_under_lock:
            violations.append(
                Violation(
                    paths[name],
                    lineno,
                    0,
                    "RPR017",
                    f"`{qualname}` awaits while holding thread lock "
                    f"`{lock}`: every task on the loop stalls until it "
                    "is released (use an asyncio.Lock or release first)",
                )
            )
        for qualname, factory, lineno in facts.dropped_tasks:
            violations.append(
                Violation(
                    paths[name],
                    lineno,
                    0,
                    "RPR018",
                    f"`{qualname}` discards the result of `{factory}(...)`: "
                    "an unreferenced task can be garbage-collected "
                    "mid-flight and its exception is lost; retain or "
                    "await it",
                )
            )

    # -- lock order (RPR019) -------------------------------------------
    analysis.lock_graph = _build_lock_graph(
        project, graph, per_module, reachable
    )
    for cycle in analysis.lock_graph.cycles():
        site = _cycle_site(analysis.lock_graph, cycle)
        rendered = " -> ".join(cycle + [cycle[0]])
        violations.append(
            Violation(
                site[0],
                site[1],
                0,
                "RPR019",
                f"potential deadlock: lock-order cycle {rendered}",
            )
        )

    violations = apply_suppressions(project, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    analysis.violations = violations
    return analysis


def _cycle_site(lock_graph: LockOrderGraph, cycle: List[str]) -> Tuple[str, int]:
    """Anchor a cycle finding at the first witnessed edge inside it."""
    members = set(cycle)
    for (outer, inner), sites in sorted(lock_graph.edges.items()):
        if outer in members and inner in members and sites:
            return sites[0].module, sites[0].lineno
    return cycle[0], 1


def run_concurrency(
    roots: Sequence[Path],
    reference_roots: Sequence[Path] = (),
    cached: Optional[CallGraph] = None,
) -> ConcurrencyAnalysis:
    """Load the project from disk and run the concurrency pass."""
    project = load_project(roots, reference_roots)
    return analyze_concurrency(project, cached=cached)


def concurrency_report(analysis: ConcurrencyAnalysis) -> List[str]:
    """The guarded-by table + lock-order graph, for the deep report."""
    lines: List[str] = ["concurrency: guarded-by table"]
    if analysis.guarded_by:
        width = max(len(k) for k in analysis.guarded_by)
        for label in sorted(analysis.guarded_by):
            lines.append(f"  {label.ljust(width)}  -> {analysis.guarded_by[label]}")
    else:
        lines.append("  (no shared fields)")
    lines.append("concurrency: lock-order graph")
    rendered = analysis.lock_graph.render()
    if rendered:
        lines.extend(f"  {line}" for line in rendered)
    else:
        lines.append("  (no lock nesting observed)")
    lines.append("concurrency: thread/executor entry points")
    if analysis.thread_entries:
        lines.extend(f"  {entry}" for entry in analysis.thread_entries)
    else:
        lines.append("  (none)")
    return lines
