"""Hot-path analysis: the speed half of ``repro-lint --perf``.

PR 8's vectorized R-tree made two conventions load-bearing that, until
this pass, existed only in comments:

* any mutation of ``Node.entries`` must invalidate (or incrementally
  update) the struct-of-arrays mirror, or the vectorized MINDIST
  kernels silently compute over stale coordinates;
* the query hot paths must not allocate ndarrays per loop iteration or
  call the observability layer unguarded, or the ~22 ns disabled-guard
  budget measured in PR 5 evaporates.

The pass derives a *hot set* -- call-graph reachability off the
kNN/verification/batching entry points
(:data:`repro.analysis.config.HOT_ENTRY_POINTS`) -- and enforces:

========  ============================================================
RPR023    NodeArrays mirror discipline: every ``Node.entries`` mutation
          site in :data:`repro.analysis.config.MIRROR_MUTATION_MODULES`
          must be declared in :data:`MUTATION_TABLE` with its mirror
          strategy (``drop`` or ``extend-in-place``), the same way
          ``floatcheck.LEMMA_TABLE`` declares lemma comparison sites;
          stale table entries are findings too
RPR024    allocation in a hot loop: ndarray constructors and
          list/set/dict comprehensions inside loop bodies of hot-set
          functions (suppress at origin with
          ``# repro: hot-alloc(<reason>)``)
RPR025    obs instrumentation in a hot loop that is not behind an
          ``if OBS.enabled:`` guard; calls rooted at a helper name
          (the ``_node_read_counter`` generation cache) are exempt by
          construction -- the cache *is* the guard
========  ============================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.lint import Violation
from repro.analysis.project import Project, ProjectModule, load_project

__all__ = [
    "HOTPATH_RULES",
    "HotpathAnalysis",
    "MUTATION_TABLE",
    "MutationEntry",
    "analyze_hotpath",
    "hotpath_report",
    "run_hotpath",
]

#: Code -> (name, description), mirroring the other pass catalogues.
HOTPATH_RULES: Dict[str, Tuple[str, str]] = {
    "RPR023": (
        "mirror-mutation-discipline",
        "Node.entries mutation site not declared in MUTATION_TABLE "
        "with its NodeArrays mirror strategy (or a stale table entry "
        "with no matching site)",
    ),
    "RPR024": (
        "hot-loop-allocation",
        "ndarray constructor or comprehension allocated inside a loop "
        "body of a hot-set function "
        "(suppress at origin: `# repro: hot-alloc(<reason>)`)",
    ),
    "RPR025": (
        "unguarded-obs-in-hot-loop",
        "obs instrumentation call in a hot loop outside an "
        "`if OBS.enabled:` guard or a generation cache",
    ),
}

_HOT_ALLOC_RE = re.compile(r"#\s*repro:\s*hot-alloc\(([^)]+)\)")

#: ``list`` mutator attrs that modify ``entries`` in place.
_MUTATOR_ATTRS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
)
#: ndarray constructors flagged inside hot loops.
_NDARRAY_FUNCS = frozenset(
    {"array", "empty", "zeros", "ones", "full", "fromiter", "arange", "asarray"}
)
_NUMPY_ALIASES = frozenset({"np", "numpy"})

#: Same stoplist as the concurrency/accounting passes: ubiquitous attr
#: names never treated as project-call evidence.
_GENERIC_ATTRS = frozenset(
    {"get", "set", "put", "pop", "append", "add", "update", "items",
     "keys", "values", "clear", "discard", "remove", "extend", "insert",
     "setdefault", "popitem", "sort", "reverse", "copy", "join", "split",
     "strip", "close", "read", "write", "send", "recv", "acquire",
     "release", "wait", "notify", "start", "stop", "run", "cancel"}
)


@dataclass(frozen=True)
class MutationEntry:
    """One declared ``Node.entries`` mutation site (RPR023)."""

    #: Fully qualified function containing the mutation.
    qualname: str
    #: Mutation kind: a list-mutator attr (``append``, ``remove``, ...)
    #: or ``rebind`` for ``X.entries = ...``.
    kind: str
    #: Rendered mutated expression, e.g. ``"leaf.entries"``.
    target: str
    #: Mirror strategy: ``extend-in-place`` (the incremental append
    #: path) or ``drop`` (invalidate; rebuilt lazily on next arrays()).
    strategy: str
    #: Why that strategy is sound.
    rationale: str


#: The declared mutation-site table, the RPR023 analogue of
#: ``floatcheck.LEMMA_TABLE``.  Every ``Node.entries`` mutation in
#: ``repro.index.rtree`` must appear here; the checker flags both
#: undeclared sites and stale entries.  ``_TrackedList``/the ``entries``
#: setter in ``repro.index.node`` are the *mechanism* (they perform the
#: invalidation or in-place extension) and are exempt.
MUTATION_TABLE: Tuple[MutationEntry, ...] = (
    MutationEntry(
        qualname="repro.index.rtree.RTree._insert_entry",
        kind="append",
        target="path[-1].entries",
        strategy="extend-in-place",
        rationale="single-entry append: _TrackedList.append extends the "
        "leaf/internal mirror columns in place (falls back to drop on "
        "type mismatch)",
    ),
    MutationEntry(
        qualname="repro.index.rtree.RTree.delete",
        kind="remove",
        target="leaf.entries",
        strategy="drop",
        rationale="removal shifts every later column slot; rebuilding "
        "lazily on next arrays() is cheaper than compaction",
    ),
    MutationEntry(
        qualname="repro.index.rtree.RTree._condense",
        kind="rebind",
        target="parent.entries",
        strategy="drop",
        rationale="wholesale filter of the child list; the entries "
        "setter wraps the new list and invalidates",
    ),
    MutationEntry(
        qualname="repro.index.rtree.RTree._propagate_up",
        kind="append",
        target="parent.entries",
        strategy="extend-in-place",
        rationale="split propagation appends one ChildEntry; the "
        "internal mirror appends its bbox columns in place",
    ),
    MutationEntry(
        qualname="repro.index.rtree.RTree._force_reinsert",
        kind="rebind",
        target="node.entries",
        strategy="drop",
        rationale="keep-set rebind during forced reinsert; mirror "
        "rebuilt lazily after the reinserts settle",
    ),
    MutationEntry(
        qualname="repro.index.rtree.RTree._split_node",
        kind="rebind",
        target="node.entries",
        strategy="drop",
        rationale="quadratic split redistributes both halves; mirrors "
        "for both nodes are rebuilt on next arrays()",
    ),
)


@dataclass(frozen=True)
class MutationSite:
    """One discovered ``Node.entries`` mutation in a scanned module."""

    module: str
    qualname: str
    lineno: int
    kind: str
    target: str


@dataclass
class HotpathAnalysis:
    """Everything one hot-path run produced."""

    project: Project
    graph: CallGraph
    #: Graph qualnames reachable from the hot entry points.
    hot: Set[str] = field(default_factory=set)
    sites: List[MutationSite] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# RPR023: mutation-site discovery and table matching
# ----------------------------------------------------------------------
def _render(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return "<expr>"


def _entries_attr(expr: ast.expr) -> Optional[ast.Attribute]:
    if isinstance(expr, ast.Attribute) and expr.attr == "entries":
        return expr
    return None


def _discover_mutations(
    module: ProjectModule, owner: str, body: Sequence[ast.stmt]
) -> List[MutationSite]:
    sites: List[MutationSite] = []

    def scan(qualname: str, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan(f"{qualname}.{stmt.name}", stmt.body)
                continue
            if isinstance(stmt, ast.ClassDef):
                scan(f"{qualname}.{stmt.name}", stmt.body)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    owner_expr = _entries_attr(node.func.value)
                    if (
                        owner_expr is not None
                        and node.func.attr in _MUTATOR_ATTRS
                    ):
                        sites.append(
                            MutationSite(
                                module.name,
                                qualname,
                                node.lineno,
                                node.func.attr,
                                _render(owner_expr),
                            )
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if _entries_attr(target) is not None:
                            sites.append(
                                MutationSite(
                                    module.name,
                                    qualname,
                                    node.lineno,
                                    "rebind",
                                    _render(target),
                                )
                            )
                        elif isinstance(
                            target, ast.Subscript
                        ) and _entries_attr(target.value):
                            sites.append(
                                MutationSite(
                                    module.name,
                                    qualname,
                                    node.lineno,
                                    "item-assign",
                                    _render(target.value),
                                )
                            )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(
                            target, ast.Subscript
                        ) and _entries_attr(target.value):
                            sites.append(
                                MutationSite(
                                    module.name,
                                    qualname,
                                    node.lineno,
                                    "item-del",
                                    _render(target.value),
                                )
                            )

    scan(owner, body)
    return sites


def _mutation_verdicts(
    project: Project,
    mutation_modules: Sequence[str],
    table: Sequence[MutationEntry],
    paths: Dict[str, str],
    analysis: HotpathAnalysis,
    violations: List[Violation],
) -> None:
    sites: List[MutationSite] = []
    for name in mutation_modules:
        module = project.get(name)
        if module is None:
            continue
        sites.extend(_discover_mutations(module, name, module.tree.body))
    analysis.sites = sorted(sites, key=lambda s: (s.module, s.lineno))

    keys = {(e.qualname, e.kind, e.target) for e in table}
    matched: Set[Tuple[str, str, str]] = set()
    for site in analysis.sites:
        key = (site.qualname, site.kind, site.target)
        if key in keys:
            matched.add(key)
            continue
        violations.append(
            Violation(
                paths[site.module],
                site.lineno,
                0,
                "RPR023",
                f"`{site.qualname}` mutates `{site.target}` "
                f"({site.kind}) but the site is not declared in "
                "hotpath.MUTATION_TABLE: the NodeArrays mirror "
                "strategy is undocumented and unenforced",
            )
        )
    for entry in table:
        key = (entry.qualname, entry.kind, entry.target)
        if key in matched:
            continue
        module_name = _table_module(entry.qualname, set(mutation_modules))
        if module_name is None or module_name not in paths:
            continue
        violations.append(
            Violation(
                paths[module_name],
                1,
                0,
                "RPR023",
                f"stale MUTATION_TABLE entry: no `{entry.kind}` of "
                f"`{entry.target}` found in `{entry.qualname}`",
            )
        )


def _table_module(qualname: str, modules: Set[str]) -> Optional[str]:
    candidate = qualname
    while candidate and candidate not in modules:
        if "." not in candidate:
            return None
        candidate = candidate.rsplit(".", 1)[0]
    return candidate or None


# ----------------------------------------------------------------------
# hot set
# ----------------------------------------------------------------------
def _hot_functions(
    project: Project,
    graph: CallGraph,
    entry_points: FrozenSet[str],
) -> Set[str]:
    """Call-graph closure of the hot entry points.

    Same resolution discipline as the accounting pass (resolved
    candidates plus name-matched attribute calls within import-reachable
    modules); the shared helper keeps the two ``--perf`` halves
    consistent about what "reachable" means.
    """
    from repro.analysis.accounting import _reachable_functions

    return _reachable_functions(project, graph, entry_points)


def _top_qualname(qualname: str, known: Set[str]) -> str:
    candidate = qualname
    while candidate not in known and "." in candidate:
        candidate = candidate.rsplit(".", 1)[0]
    return candidate


# ----------------------------------------------------------------------
# RPR024 / RPR025: loop-body scanning
# ----------------------------------------------------------------------
class _LoopScanner:
    """Scan one hot function for in-loop allocations and unguarded obs
    calls; nested defs are skipped (they are their own scopes)."""

    def __init__(
        self,
        module: ProjectModule,
        qualname: str,
        paths: Dict[str, str],
        violations: List[Violation],
    ) -> None:
        self.module = module
        self.qualname = qualname
        self.path = paths[module.name]
        self.violations = violations
        #: Lines already flagged for RPR025: a chained obs call
        #: (``OBS.registry.counter(..).inc()``) is one finding, not one
        #: per nested call.
        self._obs_flagged: Set[int] = set()

    def scan(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._stmts(fn.body, in_loop=False, guarded=False)

    def _stmts(
        self, stmts: Sequence[ast.stmt], in_loop: bool, guarded: bool
    ) -> None:
        for stmt in stmts:
            self._stmt(stmt, in_loop, guarded)

    def _stmt(self, stmt: ast.stmt, in_loop: bool, guarded: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if in_loop:
                self._exprs(stmt.iter, guarded)
            else:
                # The iterable is evaluated once per loop *entry*.
                self._exprs_outside_loop(stmt.iter)
            self._stmts(stmt.body, in_loop=True, guarded=guarded)
            self._stmts(stmt.orelse, in_loop, guarded)
            return
        if isinstance(stmt, ast.While):
            self._exprs(stmt.test, guarded) if in_loop else None
            self._stmts(stmt.body, in_loop=True, guarded=guarded)
            self._stmts(stmt.orelse, in_loop, guarded)
            return
        if isinstance(stmt, ast.If):
            if in_loop:
                self._exprs(stmt.test, guarded)
            branch_guarded = guarded or _is_obs_guard(stmt.test)
            self._stmts(stmt.body, in_loop, branch_guarded)
            self._stmts(stmt.orelse, in_loop, guarded)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body, in_loop, guarded)
            for handler in stmt.handlers:
                self._stmts(handler.body, in_loop, guarded)
            self._stmts(stmt.orelse, in_loop, guarded)
            self._stmts(stmt.finalbody, in_loop, guarded)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if in_loop:
                for item in stmt.items:
                    self._exprs(item.context_expr, guarded)
            self._stmts(stmt.body, in_loop, guarded)
            return
        if in_loop:
            self._exprs(stmt, guarded)

    def _exprs_outside_loop(self, node: ast.AST) -> None:
        """No-op hook: straight-line allocations are fine."""

    def _exprs(self, node: ast.AST, guarded: bool) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp)):
                self._allocation(sub.lineno, "comprehension")
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in _NUMPY_ALIASES
                    and func.attr in _NDARRAY_FUNCS
                ):
                    self._allocation(
                        sub.lineno, f"{func.value.id}.{func.attr}(...)"
                    )
                elif (
                    not guarded
                    and sub.lineno not in self._obs_flagged
                    and _mentions_obs(func)
                ):
                    self._obs_flagged.add(sub.lineno)
                    self.violations.append(
                        Violation(
                            self.path,
                            sub.lineno,
                            0,
                            "RPR025",
                            f"`{self.qualname}` calls the obs layer "
                            "inside a hot loop without an "
                            "`if OBS.enabled:` guard: the disabled-mode "
                            "overhead budget assumes the guard",
                        )
                    )

    def _allocation(self, lineno: int, what: str) -> None:
        line = (
            self.module.lines[lineno - 1]
            if 0 < lineno <= len(self.module.lines)
            else ""
        )
        if _HOT_ALLOC_RE.search(line):
            return
        self.violations.append(
            Violation(
                self.path,
                lineno,
                0,
                "RPR024",
                f"`{self.qualname}` allocates {what} inside a hot "
                "loop; hoist it or justify with "
                "`# repro: hot-alloc(<reason>)`",
            )
        )


def _is_obs_guard(test: ast.expr) -> bool:
    """Does a condition test ``OBS.enabled`` (possibly conjoined)?"""
    return any(
        isinstance(node, ast.Attribute)
        and node.attr == "enabled"
        and isinstance(node.value, ast.Name)
        and node.value.id == "OBS"
        for node in ast.walk(test)
    )


def _mentions_obs(func: ast.expr) -> bool:
    """Is the call rooted at the ``OBS`` facade?

    Rooted means the leftmost receiver is the bare name ``OBS``; calls
    rooted at a helper (``_node_read_counter(...)``, the generation
    cache) are exempt -- the cache is the guard.
    """
    node = func
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id == "OBS"
        else:
            return False


def _iter_scopes(
    module: ProjectModule,
) -> List[Tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function scope of a module (nested defs included)."""
    out: List[Tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []

    def visit(node: ast.FunctionDef | ast.AsyncFunctionDef, owner: str) -> None:
        qualname = f"{owner}.{node.name}"
        out.append((qualname, node))
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(sub, qualname)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit(node, module.name)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(item, f"{module.name}.{node.name}")
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def analyze_hotpath(
    project: Project,
    cached: Optional[CallGraph] = None,
    *,
    entry_points: Optional[FrozenSet[str]] = None,
    mutation_modules: Optional[Sequence[str]] = None,
    table: Optional[Sequence[MutationEntry]] = None,
) -> HotpathAnalysis:
    """Run the hot-path pass over an already-loaded project.

    The keyword overrides exist for the test fixtures: synthetic
    projects declare their own hot entry points, mutation modules and
    mutation-site tables.
    """
    from repro.analysis.deep import apply_suppressions

    entries = (
        entry_points if entry_points is not None else config.HOT_ENTRY_POINTS
    )
    mut_modules = tuple(
        mutation_modules
        if mutation_modules is not None
        else config.MIRROR_MUTATION_MODULES
    )
    mut_table = tuple(table if table is not None else MUTATION_TABLE)

    graph = build_call_graph(project, cached)
    analysis = HotpathAnalysis(project=project, graph=graph)
    paths = {name: module.path for name, module in project.modules.items()}
    violations: List[Violation] = []

    analysis.hot = _hot_functions(project, graph, frozenset(entries))
    analysis.hot.update(q for q in entries if q in graph.functions)

    _mutation_verdicts(
        project, mut_modules, mut_table, paths, analysis, violations
    )

    known = set(graph.functions)
    for name, module in sorted(project.modules.items()):
        for qualname, fn in _iter_scopes(module):
            if _top_qualname(qualname, known) not in analysis.hot:
                continue
            _LoopScanner(module, qualname, paths, violations).scan(fn)

    violations = apply_suppressions(project, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    analysis.violations = violations
    return analysis


def run_hotpath(
    roots: Sequence[Path],
    reference_roots: Sequence[Path] = (),
    cached: Optional[CallGraph] = None,
) -> HotpathAnalysis:
    """Load the project from disk and run the hot-path pass."""
    project = load_project(roots, reference_roots)
    return analyze_hotpath(project, cached=cached)


def hotpath_report(analysis: HotpathAnalysis) -> List[str]:
    """The mutation table and hot set, for ``--report``."""
    lines: List[str] = ["hotpath: Node.entries mutation table (site -> strategy)"]
    if analysis.sites:
        labels = [
            f"{site.module}:{site.lineno} {site.kind} {site.target}"
            for site in analysis.sites
        ]
        by_key = {
            (e.qualname, e.kind, e.target): e.strategy for e in MUTATION_TABLE
        }
        width = max(len(label) for label in labels)
        for label, site in zip(labels, analysis.sites):
            strategy = by_key.get(
                (site.qualname, site.kind, site.target), "(undeclared)"
            )
            lines.append(f"  {label.ljust(width)}  -> {strategy}")
    else:
        lines.append("  (no mutation sites)")
    lines.append("hotpath: hot set (query-reachable functions)")
    if analysis.hot:
        lines.extend(f"  {qualname}" for qualname in sorted(analysis.hot))
    else:
        lines.append("  (none)")
    return lines
