"""Page-accounting analysis: the billing half of ``repro-lint --perf``.

The paper's headline numbers (Figure 17's EINN-vs-INN page advantage,
the SENN tier shares) are *accounting* claims: they hold only if every
R-tree node access is billed exactly once through
:class:`~repro.index.pagestats.PageAccessCounter`.  PR 6 found three
real billing bugs at runtime; this pass turns both bug classes into
static findings:

========  ============================================================
RPR021    node-scan billing discipline inside the query-reachable
          billing modules: every scanned node is metered through the
          ``RTree.read_node`` chokepoint exactly once (unbilled and
          double-billed scans both flagged, plus direct
          ``record``/``record_scan`` calls that bypass the chokepoint)
RPR022    ``subcounter()`` fold-once protocol: every subcounter
          creation has exactly one absorb-into-history path on all
          exits, including error paths (the PR 6 bug class)
RPR026    wire-protocol encode/decode symmetry: every encoder field
          has a matching decoder field, in the same order and type
          (the v2 ``AccessBreakdown`` widening is the drift precedent)
========  ============================================================

**Billing model (RPR021).**  The checked scopes are the functions in
:data:`repro.analysis.config.BILLING_MODULES` reachable from the query
entry points (:data:`repro.analysis.config.BILLING_ENTRY_POINTS`) over
the call graph.  Within a scope, a name is *billed* once it is bound
from a ``read_node(node, counter)`` call that actually passes a
counter; scanning a node (``X.entries`` / ``X.arrays()``) is legal only
for billed names and parameters.  Parameter obligations flow
interprocedurally: a fixpoint computes, per function, which parameter
positions it *scans* and which it *bills* (passes to ``read_node``
itself), and every call site must pass a billed node to a
scans-without-billing position -- and must *not* pass an already billed
node to a billing position (that is the double-billing half).

**Fold-once model (RPR022).**  A ``X.subcounter()`` bound to a local
must be absorbed in a ``finally`` block of the same function; one bound
to ``self.<f>`` requires a fold method on the owning class (a method
that calls ``.absorb(...)`` and touches ``self.<f>``), and every place
that *constructs* such a class must in turn guarantee the fold method
runs: storing the object on ``self`` demands a cleanup method, and a
factory returning it demands ``close()`` under ``finally``/``with`` at
each acquisition site.  The chain is deliberately bounded at one
factory hop -- beyond that, the runtime accounting sanitizer
(:mod:`repro.analysis.runtime`) owns the check.

Known approximations, on the side of silence: keyword-passed nodes are
not tracked, ambiguous bare-name callees carry no obligation, and
branching (tagged-union) codecs are compared only for existence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.callgraph import CallGraph, build_call_graph, build_import_graph
from repro.analysis.lint import Violation
from repro.analysis.project import Project, ProjectModule, load_project
from repro.analysis.purity import module_reachability

__all__ = [
    "ACCOUNTING_RULES",
    "AccountingAnalysis",
    "BillingSite",
    "ScopeSummary",
    "accounting_report",
    "analyze_accounting",
    "run_accounting",
]

#: Code -> (name, description), mirroring the other pass catalogues.
ACCOUNTING_RULES: Dict[str, Tuple[str, str]] = {
    "RPR021": (
        "billing-discipline",
        "node scan in a query-reachable billing module that is not "
        "metered through read_node exactly once (unbilled or "
        "double-billed), or a direct record/record_scan call bypassing "
        "the chokepoint",
    ),
    "RPR022": (
        "subcounter-fold-once",
        "subcounter() creation without exactly one absorb-into-history "
        "path on all exits (including error paths)",
    ),
    "RPR026": (
        "codec-asymmetry",
        "wire-protocol encoder and decoder disagree on a message's "
        "field sequence (field missing, reordered or retyped on one "
        "side)",
    ),
}

#: The billing chokepoint: its own body legitimately scans the node it
#: meters and calls ``record_scan`` directly.
_CHOKEPOINT = "read_node"
#: Counter methods that may only be called by the chokepoint (``record``
#: / ``record_scan``); ``record_object`` is the data-record primitive
#: and stays open to the query layer.
_CHOKEPOINT_ONLY = frozenset({"record", "record_scan"})
#: Wire primitive methods of ``_Writer``/``_Reader``.
_WIRE_PRIMS = frozenset({"u8", "u16", "u32", "i64", "f64", "text"})
#: ndarray/list-construction attrs excluded from callee obligation
#: matching (ubiquitous stdlib names; same rationale as the concurrency
#: pass's ``_GENERIC_ATTRS``).
_GENERIC_ATTRS = frozenset(
    {"get", "set", "put", "pop", "append", "add", "update", "items",
     "keys", "values", "clear", "discard", "remove", "extend", "insert",
     "setdefault", "popitem", "sort", "reverse", "copy", "join", "split",
     "strip", "close", "read", "write", "send", "recv", "acquire",
     "release", "wait", "notify", "start", "stop", "run", "cancel"}
)


# ----------------------------------------------------------------------
# facts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BillingSite:
    """One metering call discovered in a billing module."""

    module: str
    qualname: str
    lineno: int
    #: ``read_node`` or ``record_object``.
    kind: str
    #: Rendered counter expression (``"self.counter"``), ``""`` if absent.
    counter: str


@dataclass(frozen=True)
class _CallRec:
    """One call made inside a scope, for obligation propagation."""

    callee: str
    lineno: int
    #: Positional args: the bare name for ``ast.Name`` args, else None.
    arg_names: Tuple[Optional[str], ...]
    #: True per position when the arg is itself a metered read_node call.
    arg_billed_inline: Tuple[bool, ...]
    #: True when called through an attribute (``self.m(...)``): the
    #: callee's leading ``self`` parameter is bound by the receiver.
    via_attr: bool


@dataclass
class ScopeSummary:
    """Billing-relevant facts of one function scope (nested defs are
    their own scopes)."""

    module: str
    qualname: str
    lineno: int
    params: Tuple[str, ...]
    #: True for bound methods (``self`` occupies parameter 0).
    is_method: bool
    billed: Set[str] = field(default_factory=set)
    #: (name, lineno) for every ``X.entries`` / ``X.arrays()`` scan.
    scans: List[Tuple[str, int]] = field(default_factory=list)
    calls: List[_CallRec] = field(default_factory=list)
    read_sites: List[BillingSite] = field(default_factory=list)
    object_sites: List[BillingSite] = field(default_factory=list)
    #: Param indices passed as the node argument of a read_node call.
    bills_params: Set[int] = field(default_factory=set)
    #: (lineno, name) read_node calls whose node arg was already billed.
    double_billed: List[Tuple[int, str]] = field(default_factory=list)
    #: (lineno, method) direct record/record_scan chokepoint bypasses.
    bypasses: List[Tuple[int, str]] = field(default_factory=list)
    #: (lineno,) read_node calls that pass no counter at all.
    unmetered_reads: List[int] = field(default_factory=list)


@dataclass
class AccountingAnalysis:
    """Everything one accounting run produced."""

    project: Project
    graph: CallGraph
    scopes: Dict[str, ScopeSummary] = field(default_factory=dict)
    #: Checked-scope qualnames (reachable from the billing entry points).
    checked: Set[str] = field(default_factory=set)
    #: qualname -> parameter indices it scans without billing them.
    scan_obligations: Dict[str, Set[int]] = field(default_factory=dict)
    #: qualname -> parameter indices it bills itself.
    billed_params: Dict[str, Set[int]] = field(default_factory=dict)
    billing_sites: List[BillingSite] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# scope scanning
# ----------------------------------------------------------------------
def _is_read_node(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr == _CHOKEPOINT
    return isinstance(func, ast.Name) and func.id == _CHOKEPOINT


def _counter_arg(call: ast.Call) -> Optional[ast.expr]:
    """The counter argument of a read_node call, if one is passed."""
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "counter":
            return kw.value
    return None


def _render(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return "<expr>"


class _ScopeScanner:
    """Collect one scope's billing facts, skipping nested defs."""

    def __init__(self, scope: ScopeSummary) -> None:
        self.scope = scope
        #: Param name -> index, for bills_params attribution.
        self.param_index = {name: i for i, name in enumerate(scope.params)}

    def scan(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for stmt in node.body:
            self._stmt(stmt)

    # -- statements ----------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._assign(target.id, stmt.value)
                if not (
                    isinstance(stmt.value, ast.Call)
                    and _is_read_node(stmt.value)
                ):
                    # _assign already recorded a read_node bind; anything
                    # else (scans, plain calls) is recorded here.
                    self._expr_node(stmt.value)
                return
        if isinstance(stmt, (ast.If, ast.While)):
            self._expr_node(stmt.test)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr_node(stmt.iter)
            for sub in stmt.body:
                self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
            for sub in stmt.orelse:
                self._stmt(sub)
            for sub in stmt.finalbody:
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr_node(item.context_expr)
            for sub in stmt.body:
                self._stmt(sub)
            return
        self._walk_children(stmt)

    def _assign(self, target: str, value: ast.expr) -> None:
        """``target = value``: billing bind or alias propagation."""
        if isinstance(value, ast.Call) and _is_read_node(value):
            self._read_node_call(value, bound_to=target)
            return
        if isinstance(value, ast.Name) and value.id in self.scope.billed:
            self.scope.billed.add(target)
            return
        # Rebinding a billed name to anything else kills its billing.
        self.scope.billed.discard(target)

    # -- expressions ---------------------------------------------------
    def _walk_children(self, node: ast.AST) -> None:
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            self._expr_node(sub)

    def _expr_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            if _is_read_node(node):
                self._read_node_call(node, bound_to=None)
                return
            self._plain_call(node)
            self._walk_children(node)
            return
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "entries"
            and isinstance(node.value, ast.Name)
            and isinstance(node.ctx, ast.Load)
        ):
            self.scope.scans.append((node.value.id, node.lineno))
        self._walk_children(node)

    def _read_node_call(self, call: ast.Call, bound_to: Optional[str]) -> None:
        counter = _counter_arg(call)
        site = BillingSite(
            module=self.scope.module,
            qualname=self.scope.qualname,
            lineno=call.lineno,
            kind="read_node",
            counter=_render(counter) if counter is not None else "",
        )
        self.scope.read_sites.append(site)
        if counter is None:
            self.scope.unmetered_reads.append(call.lineno)
        node_arg = call.args[0] if call.args else None
        if isinstance(node_arg, ast.Name):
            name = node_arg.id
            if name in self.scope.billed and name != bound_to:
                # Re-reading an already billed node (and not the
                # self-rebind idiom ``X = read_node(X, c)``).
                self.scope.double_billed.append((call.lineno, name))
            if name in self.param_index:
                self.scope.bills_params.add(self.param_index[name])
        elif isinstance(node_arg, ast.Call) and _is_read_node(node_arg):
            self.scope.double_billed.append((call.lineno, _render(node_arg)))
        if node_arg is not None and not isinstance(node_arg, ast.Name):
            self._walk_children(node_arg)
        if counter is not None and bound_to is not None:
            self.scope.billed.add(bound_to)

    def _plain_call(self, call: ast.Call) -> None:
        func = call.func
        callee = ""
        via_attr = False
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
            via_attr = True
            if callee in _CHOKEPOINT_ONLY:
                self.scope.bypasses.append((call.lineno, callee))
            elif callee == "record_object":
                self.scope.object_sites.append(
                    BillingSite(
                        module=self.scope.module,
                        qualname=self.scope.qualname,
                        lineno=call.lineno,
                        kind="record_object",
                        counter=_render(func.value),
                    )
                )
        if callee and callee not in _GENERIC_ATTRS:
            arg_names = tuple(
                arg.id if isinstance(arg, ast.Name) else None
                for arg in call.args
            )
            billed_inline = tuple(
                isinstance(arg, ast.Call)
                and _is_read_node(arg)
                and _counter_arg(arg) is not None
                for arg in call.args
            )
            self.scope.calls.append(
                _CallRec(callee, call.lineno, arg_names, billed_inline, via_attr)
            )


def _iter_scopes(
    module: ProjectModule,
) -> List[Tuple[ScopeSummary, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function scope of a module, nested defs included."""
    scopes: List[Tuple[ScopeSummary, ast.FunctionDef | ast.AsyncFunctionDef]] = []

    def visit(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: str,
        cls: Optional[str],
    ) -> None:
        qualname = f"{owner}.{node.name}"
        args = node.args
        params = tuple(
            a.arg
            for a in (*args.posonlyargs, *args.args)
        )
        decorators = {
            d.id for d in node.decorator_list if isinstance(d, ast.Name)
        }
        is_method = cls is not None and "staticmethod" not in decorators
        scope = ScopeSummary(
            module=module.name,
            qualname=qualname,
            lineno=node.lineno,
            params=params,
            is_method=is_method,
        )
        scopes.append((scope, node))
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(sub, qualname, None)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit(node, module.name, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(item, f"{module.name}.{node.name}", node.name)
    return scopes


# ----------------------------------------------------------------------
# reachability (checked-scope selection)
# ----------------------------------------------------------------------
def _reachable_functions(
    project: Project,
    graph: CallGraph,
    entry_points: FrozenSet[str],
) -> Set[str]:
    """Call-graph closure of the entry points.

    Resolution mirrors the concurrency pass's lock-order fixpoint:
    resolved candidates plus name-matched attribute calls restricted to
    import-reachable modules, with the generic-attr stoplist.  The
    broader ``CallGraph.edges_from`` (which also matches bare *references*)
    would drag the insertion machinery into the query-reachable set.
    """
    import_graph = build_import_graph(project)
    reachable_mods = module_reachability(import_graph)
    seen: Set[str] = set()
    frontier: List[str] = [q for q in entry_points if q in graph.functions]
    seen.update(frontier)
    while frontier:
        qualname = frontier.pop()
        info = graph.functions.get(qualname)
        if info is None:
            continue
        allowed = reachable_mods.get(info.module, set())
        for site in info.call_sites:
            names = list(site.candidates)
            if (
                not site.resolved
                and site.attr is not None
                and site.attr not in _GENERIC_ATTRS
            ):
                names.extend(
                    c
                    for c in graph.by_name.get(site.attr, ())
                    if graph.functions[c].module == info.module
                    or graph.functions[c].module in allowed
                )
            for callee in names:
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
    return seen


def _top_qualname(qualname: str, known: Set[str]) -> str:
    """Longest prefix of ``qualname`` that the call graph knows.

    Nested scopes (``module.func.visit``) are checked iff their
    enclosing graph-visible function is.
    """
    candidate = qualname
    while candidate not in known and "." in candidate:
        candidate = candidate.rsplit(".", 1)[0]
    return candidate


# ----------------------------------------------------------------------
# obligation fixpoint (RPR021 interprocedural half)
# ----------------------------------------------------------------------
def _by_bare_name(scopes: Dict[str, ScopeSummary]) -> Dict[str, List[str]]:
    table: Dict[str, List[str]] = {}
    for qualname in scopes:
        table.setdefault(qualname.rsplit(".", 1)[-1], []).append(qualname)
    return table


def _resolve_callee(
    rec: _CallRec,
    caller: ScopeSummary,
    by_name: Dict[str, List[str]],
) -> Optional[str]:
    """Unique bare-name resolution, same-module first; ambiguous -> None."""
    candidates = by_name.get(rec.callee, [])
    if not candidates:
        return None
    same_module = [q for q in candidates if q.startswith(caller.module + ".")]
    pool = same_module if same_module else candidates
    if len(pool) != 1:
        return None
    return pool[0]


def _param_offset(callee: ScopeSummary, rec: _CallRec) -> int:
    """Positional-arg -> parameter-index shift (bound ``self``)."""
    return 1 if (callee.is_method and rec.via_attr) else 0


def _obligation_fixpoint(
    scopes: Dict[str, ScopeSummary],
    by_name: Dict[str, List[str]],
) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]]]:
    """Per scope: the param indices it scans, and the ones it bills."""
    scan_ob: Dict[str, Set[int]] = {}
    bill_ob: Dict[str, Set[int]] = {}
    for qualname, scope in scopes.items():
        param_index = {name: i for i, name in enumerate(scope.params)}
        direct_scans = {
            param_index[name]
            for name, _ in scope.scans
            if name in param_index
        }
        scan_ob[qualname] = direct_scans
        bill_ob[qualname] = set(scope.bills_params)

    changed = True
    while changed:
        changed = False
        for qualname, scope in scopes.items():
            param_index = {name: i for i, name in enumerate(scope.params)}
            for rec in scope.calls:
                target = _resolve_callee(rec, scope, by_name)
                if target is None or target == qualname:
                    continue
                offset = _param_offset(scopes[target], rec)
                for pos, name in enumerate(rec.arg_names):
                    if name is None or name not in param_index:
                        continue
                    callee_param = pos + offset
                    mine = param_index[name]
                    if callee_param in bill_ob[target]:
                        if mine not in bill_ob[qualname]:
                            bill_ob[qualname].add(mine)
                            changed = True
                    elif callee_param in scan_ob[target]:
                        if mine not in scan_ob[qualname]:
                            scan_ob[qualname].add(mine)
                            changed = True
    return scan_ob, bill_ob


# ----------------------------------------------------------------------
# RPR021 verdicts
# ----------------------------------------------------------------------
def _billing_verdicts(
    analysis: AccountingAnalysis,
    paths: Dict[str, str],
    violations: List[Violation],
) -> None:
    scopes = analysis.scopes
    by_name = _by_bare_name(scopes)
    for qualname in sorted(analysis.checked):
        scope = scopes[qualname]
        path = paths[scope.module]
        param_index = {name: i for i, name in enumerate(scope.params)}
        for lineno in scope.unmetered_reads:
            violations.append(
                Violation(
                    path,
                    lineno,
                    0,
                    "RPR021",
                    f"`{qualname}` calls read_node without a counter: the "
                    "page access is never billed",
                )
            )
        for name, lineno in scope.scans:
            if name in scope.billed or name in param_index:
                continue
            violations.append(
                Violation(
                    path,
                    lineno,
                    0,
                    "RPR021",
                    f"`{qualname}` scans `{name}.entries` but `{name}` was "
                    "never metered through read_node: the page access is "
                    "unbilled",
                )
            )
        for lineno, name in scope.double_billed:
            violations.append(
                Violation(
                    path,
                    lineno,
                    0,
                    "RPR021",
                    f"`{qualname}` re-meters `{name}` through read_node: "
                    "the page access is billed twice",
                )
            )
        for lineno, method in scope.bypasses:
            violations.append(
                Violation(
                    path,
                    lineno,
                    0,
                    "RPR021",
                    f"`{qualname}` calls `{method}(...)` directly, "
                    "bypassing the read_node chokepoint (the global "
                    "rtree.node_reads counter misses the access)",
                )
            )
        for rec in scope.calls:
            target = _resolve_callee(rec, scope, by_name)
            if target is None or target == qualname:
                continue
            offset = _param_offset(scopes[target], rec)
            for pos, name in enumerate(rec.arg_names):
                callee_param = pos + offset
                needs_billed = (
                    callee_param in analysis.scan_obligations.get(target, ())
                    and callee_param
                    not in analysis.billed_params.get(target, ())
                )
                if not needs_billed:
                    if (
                        name is not None
                        and name in scope.billed
                        and callee_param
                        in analysis.billed_params.get(target, ())
                    ):
                        violations.append(
                            Violation(
                                path,
                                rec.lineno,
                                0,
                                "RPR021",
                                f"`{qualname}` passes already billed "
                                f"`{name}` to `{rec.callee}`, which meters "
                                "it again: the page access is billed twice",
                            )
                        )
                    continue
                if rec.arg_billed_inline[pos]:
                    continue
                if name is not None and (
                    name in scope.billed or name in param_index
                ):
                    continue
                shown = name if name is not None else "<expression>"
                violations.append(
                    Violation(
                        path,
                        rec.lineno,
                        0,
                        "RPR021",
                        f"`{qualname}` passes unmetered `{shown}` to "
                        f"`{rec.callee}`, which scans it without billing: "
                        "the page access is unbilled",
                    )
                )


# ----------------------------------------------------------------------
# RPR022: subcounter fold-once
# ----------------------------------------------------------------------
def _calls_with_attr(tree: ast.AST, attr: str) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
    ]


def _references_name(tree: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(tree)
    )


def _references_self_attr(tree: ast.AST, attr: str) -> bool:
    return any(
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        for node in ast.walk(tree)
    )


def _finally_bodies(fn: ast.AST) -> List[List[ast.stmt]]:
    return [
        node.finalbody
        for node in ast.walk(fn)
        if isinstance(node, ast.Try) and node.finalbody
    ]


def _absorbed_in_finally(fn: ast.AST, name: str) -> bool:
    """Is ``name`` absorbed inside some ``finally`` block of ``fn``?"""
    for body in _finally_bodies(fn):
        for stmt in body:
            for call in _calls_with_attr(stmt, "absorb"):
                if any(_references_name(arg, name) for arg in call.args):
                    return True
    return False


@dataclass
class _ClassScan:
    """Per-class facts the fold-once checker needs."""

    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef]


def _scan_classes(module: ProjectModule) -> Dict[str, _ClassScan]:
    classes: Dict[str, _ClassScan] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        classes[node.name] = _ClassScan(module.name, node.name, node, methods)
    return classes


#: Fold-once obligation chain depth: 0 = the class owning the
#: subcounter itself (``_Stream``), 1 = the class that stores or
#: collects it (``ServiceSession``).  Acquirers of a depth-1 owner are
#: checked for guaranteed cleanup; classes *storing* a depth-1 owner
#: (``LoopbackTransport``) still need a cleanup method, but their own
#: creators are out of static scope -- the runtime accounting sanitizer
#: owns the rest of the chain.
_FOLD_CHAIN_DEPTH = 1


def _fold_once_verdicts(
    project: Project,
    paths: Dict[str, str],
    violations: List[Violation],
) -> None:
    modules = [module for _, module in sorted(project.modules.items())]
    all_classes: Dict[str, _ClassScan] = {}
    for module in modules:
        for name, scan in _scan_classes(module).items():
            all_classes[name] = scan

    #: (class name, method that must run, chain depth) obligations.
    obligations: List[Tuple[str, str, int]] = []
    for module in modules:
        for fn_node, owner_cls in _iter_functions(module):
            if fn_node.name == "subcounter":
                continue  # the factory primitive itself
            for stmt in ast.walk(fn_node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                value = stmt.value
                if not (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "subcounter"
                ):
                    continue
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if not _absorbed_in_finally(fn_node, target.id):
                        violations.append(
                            Violation(
                                paths[module.name],
                                stmt.lineno,
                                0,
                                "RPR022",
                                f"subcounter `{target.id}` is not absorbed "
                                "in a `finally` block of "
                                f"`{module.name}.{fn_node.name}`: an error "
                                "path leaks its accesses out of history",
                            )
                        )
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and owner_cls is not None
                ):
                    fold = _find_fold_method(all_classes[owner_cls], target.attr)
                    if fold is None:
                        violations.append(
                            Violation(
                                paths[module.name],
                                stmt.lineno,
                                0,
                                "RPR022",
                                f"`{owner_cls}.{target.attr}` holds a "
                                "subcounter but no method of the class "
                                "absorbs it: the stream's accesses can "
                                "never fold into history",
                            )
                        )
                    else:
                        obligations.append((owner_cls, fold, 0))
                else:
                    violations.append(
                        Violation(
                            paths[module.name],
                            stmt.lineno,
                            0,
                            "RPR022",
                            "subcounter() result bound to an untrackable "
                            "target: the fold-once protocol cannot be "
                            "verified statically",
                        )
                    )

    # Transitive obligation (depth-bounded worklist): whoever constructs
    # a fold-owning class must guarantee its fold method runs; a storing
    # class needs a cleanup method, whose own callers are checked one
    # further hop out.
    seen: Set[Tuple[str, str]] = set()
    queue = list(obligations)
    while queue:
        cls_name, required, depth = queue.pop()
        if (cls_name, required) in seen:
            continue
        seen.add((cls_name, required))
        _check_constructions(
            modules, paths, all_classes, cls_name, required, depth, queue,
            violations,
        )


def _find_fold_method(scan: _ClassScan, attr: str) -> Optional[str]:
    for name, method in scan.methods.items():
        for call in _calls_with_attr(method, "absorb"):
            del call
            if _references_self_attr(method, attr):
                return name
    return None


def _iter_functions(
    module: ProjectModule,
) -> List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, Optional[str]]]:
    """Top-level functions and class methods with their owning class."""
    out: List[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, Optional[str]]] = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, None))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((item, node.name))
    return out


def _check_constructions(
    modules: Sequence[ProjectModule],
    paths: Dict[str, str],
    all_classes: Dict[str, _ClassScan],
    cls_name: str,
    required: str,
    depth: int,
    queue: List[Tuple[str, str, int]],
    violations: List[Violation],
) -> None:
    """Every construction/acquisition of ``cls_name`` must guarantee its
    ``required`` method runs; storing classes push a deeper obligation."""
    #: Names through which the obligation is acquired one hop out: the
    #: class constructor itself plus factory methods returning it.
    factory_attrs: Set[str] = set()
    for module in modules:
        for fn_node, _owner in _iter_functions(module):
            for stmt in ast.walk(fn_node):
                if (
                    isinstance(stmt, ast.Return)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                    and stmt.value.func.id == cls_name
                ):
                    factory_attrs.add(fn_node.name)

    for module in modules:
        for fn_node, owner_cls in _iter_functions(module):
            for stmt in ast.walk(fn_node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                value = stmt.value
                acquired = isinstance(value, ast.Call) and (
                    (
                        isinstance(value.func, ast.Name)
                        and value.func.id == cls_name
                    )
                    or (
                        isinstance(value.func, ast.Attribute)
                        and value.func.attr in factory_attrs
                    )
                )
                if not acquired:
                    continue
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if fn_node.name in factory_attrs:
                        continue  # the factory hands the obligation on
                    if not _required_on_local(fn_node, target.id, required):
                        violations.append(
                            Violation(
                                paths[module.name],
                                stmt.lineno,
                                0,
                                "RPR022",
                                f"`{module.name}.{fn_node.name}` acquires a "
                                f"`{cls_name}` (which owns subcounters) but "
                                f"never guarantees `{target.id}.{required}()` "
                                "on all exits (finally/with): a dropped "
                                "connection leaks its accesses out of "
                                "history",
                            )
                        )
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and owner_cls is not None
                ):
                    holder = _method_calling_on_self_attr(
                        all_classes.get(owner_cls), target.attr, required
                    )
                    if holder is None:
                        violations.append(
                            Violation(
                                paths[module.name],
                                stmt.lineno,
                                0,
                                "RPR022",
                                f"`{owner_cls}.{target.attr}` stores a "
                                f"`{cls_name}` but no method of "
                                f"`{owner_cls}` calls its `{required}()`: "
                                "open streams leak out of history",
                            )
                        )
                    elif depth < _FOLD_CHAIN_DEPTH:
                        queue.append((owner_cls, holder, depth + 1))
                # Subscript targets (``self._streams[id] = _Stream(...)``)
                # are containers owned by the storing class.
                elif isinstance(target, ast.Subscript) and owner_cls is not None:
                    holder = _method_calling(
                        all_classes.get(owner_cls), required
                    )
                    if holder is None:
                        violations.append(
                            Violation(
                                paths[module.name],
                                stmt.lineno,
                                0,
                                "RPR022",
                                f"`{owner_cls}` collects `{cls_name}` "
                                "instances but no method of the class "
                                f"calls `{required}()` on them",
                            )
                        )
                    elif depth < _FOLD_CHAIN_DEPTH:
                        queue.append((owner_cls, holder, depth + 1))


def _required_on_local(fn: ast.AST, name: str, required: str) -> bool:
    """Is ``name.required()`` guaranteed: a ``finally`` or ``with``?"""
    for body in _finally_bodies(fn):
        for stmt in body:
            for call in _calls_with_attr(stmt, required):
                if _references_name(call.func, name):
                    return True
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _references_name(item.context_expr, name):
                    return True
    return False


def _method_calling(scan: Optional[_ClassScan], attr: str) -> Optional[str]:
    """A method of the class calling ``.attr(...)``; ``close`` preferred
    (it is the conventional all-streams cleanup entry point)."""
    if scan is None:
        return None
    candidates = sorted(
        name
        for name, method in scan.methods.items()
        if _calls_with_attr(method, attr)
    )
    if not candidates:
        return None
    return "close" if "close" in candidates else candidates[0]


def _method_calling_on_self_attr(
    scan: Optional[_ClassScan], attr: str, required: str
) -> Optional[str]:
    """A method of the class calling ``self.<attr>.<required>()``."""
    if scan is None:
        return None
    candidates = []
    for name, method in scan.methods.items():
        for call in _calls_with_attr(method, required):
            func = call.func
            assert isinstance(func, ast.Attribute)
            if _references_self_attr(func, attr):
                candidates.append(name)
                break
    if not candidates:
        return None
    candidates.sort()
    return "close" if "close" in candidates else candidates[0]


# ----------------------------------------------------------------------
# RPR026: codec symmetry
# ----------------------------------------------------------------------
#: A wire-shape token: ("prim", name, allow_inf) | ("pair", suffix) |
#: ("repeat", count-or-None, subshape).
_Shape = Tuple[object, ...]


def _shape_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Optional[_Shape]:
    """The ordered wire shape of a codec function; None when branching."""
    tokens: List[object] = []
    if not _stmt_tokens(fn.body, tokens):
        return None
    return tuple(tokens)


def _stmt_tokens(body: Sequence[ast.stmt], out: List[object]) -> bool:
    """Append the wire tokens of ``body`` in order; False on branching."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, ast.If):
            branch: List[object] = []
            ok = _stmt_tokens(stmt.body, branch) and _stmt_tokens(
                stmt.orelse, branch
            )
            if branch or not ok:
                return False  # wire ops under a condition: tagged union
            _expr_tokens(stmt.test, out)
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            sub: List[object] = []
            if not _stmt_tokens(stmt.body, sub):
                return False
            if sub:
                count = (
                    len(stmt.iter.elts)
                    if isinstance(stmt.iter, (ast.Tuple, ast.List))
                    else None
                )
                out.append(("repeat", count, tuple(sub)))
            continue
        if isinstance(stmt, ast.While):
            sub = []
            if not _stmt_tokens(stmt.body, sub):
                return False
            if sub:
                return False  # unbounded wire loop: not comparable
            continue
        if isinstance(stmt, ast.Try):
            if not _stmt_tokens(stmt.body, out):
                return False
            for handler in stmt.handlers:
                probe: List[object] = []
                if not _stmt_tokens(handler.body, probe) or probe:
                    return False  # wire ops on an error path
            if not _stmt_tokens(stmt.orelse, out):
                return False
            if not _stmt_tokens(stmt.finalbody, out):
                return False
            continue
        _expr_tokens(stmt, out)
    return True


_PRIM_RECEIVERS_DEPTH = 1  # prims hang off the writer/reader parameter


def _expr_tokens(node: ast.AST, out: List[object]) -> None:
    """Wire tokens of one expression tree, in evaluation order."""
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WIRE_PRIMS
            and isinstance(func.value, ast.Name)
        ):
            allow_inf = any(
                kw.arg == "allow_inf"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            out.append(("prim", func.attr, allow_inf))
            return
        if isinstance(func, ast.Name) and (
            func.id.startswith("_write_") or func.id.startswith("_read_")
        ):
            suffix = func.id.split("_", 2)[2]
            out.append(("pair", suffix))
            return
        if isinstance(node, ast.Call):
            for sub in ast.iter_child_nodes(node):
                _expr_tokens(sub, out)
            return
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        sub_tokens: List[object] = []
        _expr_tokens(node.elt, sub_tokens)
        if sub_tokens:
            count: Optional[int] = None
            if len(node.generators) == 1:
                it = node.generators[0].iter
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id == "range"
                    and len(it.args) == 1
                    and isinstance(it.args[0], ast.Constant)
                    and isinstance(it.args[0].value, int)
                ):
                    count = it.args[0].value
            out.append(("repeat", count, tuple(sub_tokens)))
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    for sub in ast.iter_child_nodes(node):
        _expr_tokens(sub, out)


def _render_shape(shape: Optional[_Shape]) -> str:
    if shape is None:
        return "<tagged>"

    def one(token: object) -> str:
        assert isinstance(token, tuple)
        if token[0] == "prim":
            return f"{token[1]}(inf)" if token[2] else str(token[1])
        if token[0] == "pair":
            return str(token[1])
        count = token[1] if token[1] is not None else "n"
        inner = ", ".join(one(t) for t in token[2])  # type: ignore[union-attr]
        return f"{count}*[{inner}]"

    return "[" + ", ".join(one(t) for t in shape) + "]"


def _codec_verdicts(
    project: Project,
    protocol_modules: Sequence[str],
    paths: Dict[str, str],
    violations: List[Violation],
) -> None:
    for name in protocol_modules:
        module = project.get(name)
        if module is None:
            continue
        functions: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {
            fn.name: fn for fn, _cls in _iter_functions(module)
        }
        pairs: List[Tuple[str, str, str, int]] = []
        for node in module.tree.body:
            if not (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(getattr(node, "value", None), ast.Dict)
            ):
                continue
            target = (
                node.targets[0]
                if isinstance(node, ast.Assign)
                else node.target
            )
            if not (isinstance(target, ast.Name) and target.id == "_CODECS"):
                continue
            value = node.value
            assert isinstance(value, ast.Dict)
            for key, entry in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Name)
                    and isinstance(entry, ast.Tuple)
                    and len(entry.elts) == 3
                ):
                    continue
                enc, dec = entry.elts[1], entry.elts[2]
                if isinstance(enc, ast.Name) and isinstance(dec, ast.Name):
                    pairs.append((key.id, enc.id, dec.id, entry.lineno))
        # Composite helper pairs referenced from any codec function.
        helper_suffixes: Set[str] = set()
        for fn in functions.values():
            for sub in ast.walk(fn):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and (
                        sub.func.id.startswith("_write_")
                        or sub.func.id.startswith("_read_")
                    )
                ):
                    helper_suffixes.add(sub.func.id.split("_", 2)[2])
        for suffix in sorted(helper_suffixes):
            enc_name, dec_name = f"_write_{suffix}", f"_read_{suffix}"
            if enc_name in functions and dec_name in functions:
                pairs.append(
                    (suffix, enc_name, dec_name, functions[dec_name].lineno)
                )

        for label, enc_name, dec_name, lineno in pairs:
            enc_fn = functions.get(enc_name)
            dec_fn = functions.get(dec_name)
            if enc_fn is None or dec_fn is None:
                violations.append(
                    Violation(
                        paths[name],
                        lineno,
                        0,
                        "RPR026",
                        f"codec pair for `{label}` is incomplete: "
                        f"`{enc_name}`/`{dec_name}` not both defined",
                    )
                )
                continue
            enc_shape = _shape_of(enc_fn)
            dec_shape = _shape_of(dec_fn)
            if enc_shape is None or dec_shape is None:
                continue  # tagged union: both sides branch on a tag
            if enc_shape != dec_shape:
                violations.append(
                    Violation(
                        paths[name],
                        dec_fn.lineno,
                        0,
                        "RPR026",
                        f"encoder/decoder drift for `{label}`: "
                        f"`{enc_name}` writes {_render_shape(enc_shape)} "
                        f"but `{dec_name}` reads {_render_shape(dec_shape)}",
                    )
                )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def analyze_accounting(
    project: Project,
    cached: Optional[CallGraph] = None,
    *,
    entry_points: Optional[FrozenSet[str]] = None,
    billing_modules: Optional[Sequence[str]] = None,
    protocol_modules: Optional[Sequence[str]] = None,
) -> AccountingAnalysis:
    """Run the accounting pass over an already-loaded project.

    The keyword overrides exist for the test fixtures: synthetic
    projects declare their own entry points and billing modules instead
    of the policy tables in :mod:`repro.analysis.config`.
    """
    from repro.analysis.deep import apply_suppressions

    entries = (
        entry_points if entry_points is not None else config.BILLING_ENTRY_POINTS
    )
    billing = tuple(
        billing_modules
        if billing_modules is not None
        else config.BILLING_MODULES
    )
    protocols = tuple(
        protocol_modules
        if protocol_modules is not None
        else config.PROTOCOL_MODULES
    )

    graph = build_call_graph(project, cached)
    analysis = AccountingAnalysis(project=project, graph=graph)
    paths = {name: module.path for name, module in project.modules.items()}
    violations: List[Violation] = []

    billing_mods = [
        module
        for name, module in sorted(project.modules.items())
        if name in billing
    ]

    # -- scope facts ---------------------------------------------------
    for module in billing_mods:
        for scope, node in _iter_scopes(module):
            if scope.qualname.rsplit(".", 1)[-1] == _CHOKEPOINT:
                continue  # the billing primitive scans what it meters
            _ScopeScanner(scope).scan(node)
            analysis.scopes[scope.qualname] = scope

    # -- checked-scope selection (call-graph reachability) -------------
    reachable = _reachable_functions(project, graph, frozenset(entries))
    known = set(graph.functions)
    for qualname, scope in analysis.scopes.items():
        top = _top_qualname(qualname, known)
        if top in reachable or top in entries:
            analysis.checked.add(qualname)

    # -- interprocedural obligations + verdicts ------------------------
    by_name = _by_bare_name(analysis.scopes)
    analysis.scan_obligations, analysis.billed_params = _obligation_fixpoint(
        analysis.scopes, by_name
    )
    _billing_verdicts(analysis, paths, violations)
    for qualname in sorted(analysis.scopes):
        scope = analysis.scopes[qualname]
        analysis.billing_sites.extend(scope.read_sites)
        analysis.billing_sites.extend(scope.object_sites)
    analysis.billing_sites.sort(key=lambda s: (s.module, s.lineno))

    # -- fold-once + codec symmetry ------------------------------------
    _fold_once_verdicts(project, paths, violations)
    _codec_verdicts(project, protocols, paths, violations)

    violations = apply_suppressions(project, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    analysis.violations = violations
    return analysis


def run_accounting(
    roots: Sequence[Path],
    reference_roots: Sequence[Path] = (),
    cached: Optional[CallGraph] = None,
) -> AccountingAnalysis:
    """Load the project from disk and run the accounting pass."""
    project = load_project(roots, reference_roots)
    return analyze_accounting(project, cached=cached)


def accounting_report(analysis: AccountingAnalysis) -> List[str]:
    """The billing table (site -> counter), for ``--report``."""
    lines: List[str] = ["accounting: billing table (site -> counter)"]
    if analysis.billing_sites:
        labels = [
            f"{site.module}:{site.lineno} {site.kind} "
            f"[{site.qualname.rsplit('.', 1)[-1]}]"
            for site in analysis.billing_sites
        ]
        width = max(len(label) for label in labels)
        for label, site in zip(labels, analysis.billing_sites):
            counter = site.counter if site.counter else "(unbilled)"
            lines.append(f"  {label.ljust(width)}  -> {counter}")
    else:
        lines.append("  (no billing sites)")
    lines.append("accounting: checked scopes (query-reachable)")
    if analysis.checked:
        lines.extend(f"  {qualname}" for qualname in sorted(analysis.checked))
    else:
        lines.append("  (none)")
    return lines
