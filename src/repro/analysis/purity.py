"""Interprocedural purity and determinism inference (deep pass 2).

Every function gets a set of inferred *effects*, seeded by an
intraprocedural scan and propagated to callers over the call graph until
a fixpoint:

``MUTATES_ARG``
    assigns into, deletes from, or calls a mutating method on one of its
    parameters (``self`` included).  Propagates to a caller only when the
    caller passes one of *its own* parameters into the mutating callee —
    mutating a locally constructed list is not an effect.
``MUTATES_GLOBAL``
    rebinding via ``global``/``nonlocal``, or mutating a module-level
    name.  Propagates unconditionally.
``IO``
    file-system / stream / process access.  Propagates unconditionally.
``NONDET``
    anything that can differ between two runs on the same input: global
    RNG state, wall-clock reads, ``id()``, ``hash()`` (salted for
    strings), ``os.urandom``, UUIDs, and **iteration over sets** (hash
    order).  Propagates unconditionally.
``BLOCKING``
    can park the calling thread for an unbounded/IO-scale time:
    ``time.sleep``, socket construction and socket send/recv methods,
    ``subprocess``, ``input``.  Deliberately *narrower* than ``IO``
    (``print`` and file writes are I/O but finish promptly enough for a
    CLI banner); the concurrency pass (RPR016) flags coroutines that
    reach a ``BLOCKING`` function, because a blocked event loop stalls
    every connection.  Propagates unconditionally -- but note that
    ``run_in_executor``/``to_thread`` dispatch sites resolve to *no*
    candidates in the call graph, so handing blocking work to an
    executor does not taint the dispatching coroutine.

Two rule front ends consume the fixpoint (wired up in
:mod:`repro.analysis.deep`): RPR009 enforces the purity zones of
:data:`repro.analysis.config.PURITY_ZONES` — ``repro.testing.oracles``
and the geometry predicates must stay externally pure — and RPR010
enforces the determinism zones, because differential replay strings and
oracle verdicts must be bit-exact across processes.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis import config
from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo, ImportGraph
from repro.analysis.project import Project

#: ``is_suppressed(module, lineno, code)`` — lets the deep driver feed
#: ``# repro: noqa`` knowledge into effect *seeding*: a justified
#: suppression at the origin call kills the whole propagated chain,
#: instead of forcing a noqa onto every transitive caller.
SuppressionOracle = Callable[[str, int, str], bool]

__all__ = [
    "Effect",
    "EffectWitness",
    "FunctionEffects",
    "SuppressionOracle",
    "determinism_violations",
    "function_nodes",
    "infer_effects",
    "module_reachability",
    "purity_violations",
]


class Effect(enum.Enum):
    MUTATES_ARG = "mutates-argument"
    MUTATES_GLOBAL = "mutates-global"
    IO = "performs-io"
    NONDET = "nondeterministic"
    BLOCKING = "blocking"


#: Methods that mutate their receiver in place (builtins; project methods
#: are handled by propagation instead).
_MUTATOR_METHODS: Set[str] = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "sort",
    "reverse",
    "add",
    "discard",
    "update",
    "setdefault",
    "appendleft",
    "extendleft",
    "popleft",
    "__setitem__",
    "__delitem__",
}

_IO_NAMES: Set[str] = {"open", "input", "print", "breakpoint"}
_IO_DOTTED_PREFIXES: Tuple[str, ...] = (
    "os.",
    "sys.stdout",
    "sys.stderr",
    "sys.stdin",
    "subprocess.",
    "shutil.",
    "logging.",
    "socket.",
)
_IO_METHODS: Set[str] = {
    "write",
    "writelines",
    "write_text",
    "write_bytes",
    "read_text",
    "read_bytes",
    "mkdir",
    "unlink",
    "rmdir",
    "touch",
    "flush",
}

#: Seeds of the BLOCKING effect (RPR016).  Narrower than the IO
#: catalogue on purpose: only calls that can park a thread for an
#: unbounded or network-scale time.  ``.acquire()`` is deliberately
#: absent -- lock blocking is RPR017/RPR019 territory, and seeding it
#: here would flag every coroutine that touches an asyncio primitive
#: whose method names mirror the threading ones.
_BLOCKING_NAMES: Set[str] = {"input"}
_BLOCKING_DOTTED: Set[str] = {"time.sleep"}
_BLOCKING_DOTTED_PREFIXES: Tuple[str, ...] = ("socket.", "subprocess.")
#: Socket-ish receiver methods: ``x.recv(...)`` blocks whatever ``x`` is
#: in this codebase (only socket code spells these names).
_BLOCKING_METHODS: Set[str] = {
    "accept",
    "makefile",
    "recv",
    "recv_into",
    "send",
    "sendall",
}

_NONDET_NAMES: Set[str] = {"id", "hash", "vars", "globals", "locals"}
_NONDET_DOTTED: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
}
#: Global-state RNG functions (mirrors RPR002's catalogue).
_GLOBAL_RNG_FUNCS: Set[str] = {
    "seed",
    "random",
    "randint",
    "randrange",
    "uniform",
    "normal",
    "gauss",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "permutation",
    "rand",
    "randn",
}


@dataclass(frozen=True)
class EffectWitness:
    """Where an effect enters a function (directly or via a call chain)."""

    lineno: int
    description: str


@dataclass
class FunctionEffects:
    """The inferred effect set of one function."""

    qualname: str
    effects: Dict[Effect, EffectWitness] = field(default_factory=dict)
    #: Parameters this function mutates (names; ``self`` included).
    mutated_params: Set[str] = field(default_factory=set)

    def has(self, effect: Effect) -> bool:
        return effect in self.effects

    def add(self, effect: Effect, witness: EffectWitness) -> bool:
        if effect in self.effects:
            return False
        self.effects[effect] = witness
        return True


def _never_suppressed(module: str, lineno: int, code: str) -> bool:
    return False


def infer_effects(
    project: Project,
    graph: CallGraph,
    import_graph: Optional[ImportGraph] = None,
    is_suppressed: SuppressionOracle = _never_suppressed,
) -> Dict[str, FunctionEffects]:
    """Seed intraprocedural effects, then propagate to a fixpoint.

    ``import_graph`` (when given) restricts name-matched attribute calls
    to candidates whose defining module is import-reachable from the
    caller's module: ``result.add(...)`` inside ``repro.geometry`` cannot
    dispatch to ``CandidateHeap.add`` because geometry never imports
    core.  Without it every same-named method is a candidate.
    """
    nodes = _function_nodes(project, graph)
    reachable_modules = (
        _module_reachability(import_graph) if import_graph is not None else None
    )
    effects: Dict[str, FunctionEffects] = {}
    for qualname, info in graph.functions.items():
        node = nodes.get(qualname)
        if node is None:
            effects[qualname] = FunctionEffects(qualname)
            continue
        effects[qualname] = _scan_function(info, node, is_suppressed)

    # Fixpoint propagation over call sites.
    changed = True
    while changed:
        changed = False
        for qualname, info in graph.functions.items():
            caller = effects[qualname]
            for site in info.call_sites:
                candidates = list(site.candidates)
                if not site.resolved and site.attr is not None:
                    matched = graph.by_name.get(site.attr, ())
                    if reachable_modules is None:
                        candidates.extend(matched)
                    else:
                        allowed = reachable_modules.get(info.module, set())
                        candidates.extend(
                            c
                            for c in matched
                            if graph.functions[c].module == info.module
                            or graph.functions[c].module in allowed
                        )
                for candidate in candidates:
                    callee = effects.get(candidate)
                    if callee is None or candidate == qualname:
                        continue
                    changed |= _propagate(
                        caller, callee, graph.functions[candidate], site
                    )
    return effects


def _module_reachability(import_graph: ImportGraph) -> Dict[str, Set[str]]:
    """Transitive closure of module imports (deferred imports included)."""
    direct = import_graph.edges(top_level_only=False)
    closure: Dict[str, Set[str]] = {}

    def visit(module: str) -> Set[str]:
        if module in closure:
            return closure[module]
        closure[module] = set()  # cycle guard
        reached: Set[str] = set()
        for target in direct.get(module, ()):
            reached.add(target)
            reached.update(visit(target))
        closure[module] = reached
        return reached

    for module in list(direct):
        visit(module)
    return closure


def _propagate(
    caller: FunctionEffects,
    callee: FunctionEffects,
    callee_info: FunctionInfo,
    site: CallSite,
) -> bool:
    changed = False
    for effect in (
        Effect.MUTATES_GLOBAL,
        Effect.IO,
        Effect.NONDET,
        Effect.BLOCKING,
    ):
        if callee.has(effect) and not caller.has(effect):
            origin = callee.effects[effect]
            changed |= caller.add(
                effect,
                EffectWitness(
                    site.lineno,
                    f"calls {callee.qualname} ({origin.description})",
                ),
            )
    if callee.has(Effect.MUTATES_ARG):
        tainted = _tainted_params(callee, callee_info, site)
        fresh = [name for name in tainted if name not in caller.mutated_params]
        if fresh:
            caller.mutated_params.update(fresh)
            changed = True
        if tainted and not caller.has(Effect.MUTATES_ARG):
            origin = callee.effects[Effect.MUTATES_ARG]
            changed |= caller.add(
                Effect.MUTATES_ARG,
                EffectWitness(
                    site.lineno,
                    f"passes parameter {tainted[0]!r} to {callee.qualname} "
                    f"({origin.description})",
                ),
            )
    return changed


def _tainted_params(
    callee: FunctionEffects, callee_info: FunctionInfo, site: CallSite
) -> List[str]:
    """Caller parameters that land on a parameter the callee mutates.

    Passing a value to a mutating function is only an effect when it is
    the *mutated* parameter that receives it: ``region.contains_point(a)``
    does not taint ``a`` when ``contains_point`` only mutates ``self``.
    """
    params = list(callee_info.params)
    first = params[0] if params else None
    bound = callee_info.cls is not None and first in {"self", "cls"}
    tainted: List[str] = []
    if site.receiver_param and bound and first in callee.mutated_params:
        tainted.append(site.receiver_param)
    offset = 1 if bound else 0
    for index, name in site.param_args:
        target = index + offset
        if target < len(params) and params[target] in callee.mutated_params:
            tainted.append(name)
    return tainted


# ----------------------------------------------------------------------
# intraprocedural scan
# ----------------------------------------------------------------------
def _function_nodes(
    project: Project, graph: CallGraph
) -> Dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    nodes: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for module in project.modules.values():
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nodes[f"{module.name}.{node.name}"] = node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nodes[f"{module.name}.{node.name}.{item.name}"] = item
    return nodes


#: Rule code under which each effect is reported / suppressed at origin.
_EFFECT_CODE: Dict[Effect, str] = {
    Effect.MUTATES_ARG: "RPR009",
    Effect.MUTATES_GLOBAL: "RPR009",
    Effect.IO: "RPR009",
    Effect.NONDET: "RPR010",
    Effect.BLOCKING: "RPR016",
}


class _SuppressingEffects(FunctionEffects):
    """``FunctionEffects`` whose ``add`` consults the suppression oracle.

    A ``# repro: noqa(RPR009)`` / ``(RPR010)`` on the line where an effect
    *originates* prevents the effect from being seeded at all, so the
    justification lives at the origin instead of on every transitive
    caller.  The same check applies during propagation, letting a single
    call site be exempted too.
    """

    def __init__(self, qualname: str, module: str, oracle: SuppressionOracle) -> None:
        super().__init__(qualname)
        self._module = module
        self._oracle = oracle

    def add(self, effect: Effect, witness: EffectWitness) -> bool:
        if self._oracle(self._module, witness.lineno, _EFFECT_CODE[effect]):
            return False
        return super().add(effect, witness)


def _scan_function(
    info: FunctionInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    is_suppressed: SuppressionOracle = _never_suppressed,
) -> FunctionEffects:
    result = _SuppressingEffects(info.qualname, info.module, is_suppressed)
    params = set(info.params)
    set_valued = _set_valued_names(node)

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Global, ast.Nonlocal)):
            result.add(
                Effect.MUTATES_GLOBAL,
                EffectWitness(sub.lineno, f"`{type(sub).__name__.lower()}` declaration"),
            )
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.Delete)):
            for target in _assign_targets(sub):
                base = _subscript_or_attr_base(target)
                if base is None:
                    continue
                if base in params:
                    result.add(
                        Effect.MUTATES_ARG,
                        EffectWitness(sub.lineno, f"assigns into parameter `{base}`"),
                    )
                    result.mutated_params.add(base)
        elif isinstance(sub, ast.Call):
            _scan_call(sub, params, set_valued, result)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            if _is_set_expr(sub.iter, set_valued):
                result.add(
                    Effect.NONDET,
                    EffectWitness(
                        sub.lineno,
                        "iterates over a set (hash order varies across runs)",
                    ),
                )
        elif isinstance(sub, ast.comprehension):
            if _is_set_expr(sub.iter, set_valued):
                result.add(
                    Effect.NONDET,
                    EffectWitness(
                        getattr(sub.iter, "lineno", node.lineno),
                        "comprehension iterates over a set (hash order varies)",
                    ),
                )
    return result


def _scan_call(
    call: ast.Call,
    params: Set[str],
    set_valued: Set[str],
    result: FunctionEffects,
) -> None:
    dotted = _dotted(call.func)
    name = dotted.rsplit(".", 1)[-1] if dotted else ""

    # --- I/O ---------------------------------------------------------
    if dotted in _IO_NAMES or name in _IO_METHODS and isinstance(call.func, ast.Attribute):
        result.add(Effect.IO, EffectWitness(call.lineno, f"calls `{dotted or name}`"))
    elif any(dotted.startswith(prefix) for prefix in _IO_DOTTED_PREFIXES):
        result.add(Effect.IO, EffectWitness(call.lineno, f"calls `{dotted}`"))

    # --- blocking (RPR016 seeds) -------------------------------------
    if (
        dotted in _BLOCKING_NAMES
        or dotted in _BLOCKING_DOTTED
        or any(dotted.startswith(prefix) for prefix in _BLOCKING_DOTTED_PREFIXES)
        or (name in _BLOCKING_METHODS and isinstance(call.func, ast.Attribute))
    ):
        result.add(
            Effect.BLOCKING,
            EffectWitness(call.lineno, f"blocking call `{dotted or name}`"),
        )

    # --- nondeterminism ----------------------------------------------
    if dotted in _NONDET_NAMES or dotted in _NONDET_DOTTED:
        result.add(
            Effect.NONDET, EffectWitness(call.lineno, f"calls `{dotted}`")
        )
    elif dotted in {f"random.{fn}" for fn in _GLOBAL_RNG_FUNCS} or dotted in {
        f"np.random.{fn}" for fn in _GLOBAL_RNG_FUNCS
    } | {f"numpy.random.{fn}" for fn in _GLOBAL_RNG_FUNCS}:
        result.add(
            Effect.NONDET,
            EffectWitness(call.lineno, f"global-state RNG call `{dotted}`"),
        )
    # list()/tuple()/enumerate() over a set exposes hash order.
    if (
        isinstance(call.func, ast.Name)
        and call.func.id in {"list", "tuple", "enumerate", "iter", "next"}
        and call.args
        and _is_set_expr(call.args[0], set_valued)
    ):
        result.add(
            Effect.NONDET,
            EffectWitness(
                call.lineno,
                f"`{call.func.id}()` over a set (hash order varies across runs)",
            ),
        )

    # --- parameter mutation ------------------------------------------
    if isinstance(call.func, ast.Attribute) and call.func.attr in _MUTATOR_METHODS:
        receiver = _subscript_or_attr_base(call.func)
        if receiver in params:
            result.add(
                Effect.MUTATES_ARG,
                EffectWitness(
                    call.lineno,
                    f"calls `.{call.func.attr}()` on parameter `{receiver}`",
                ),
            )
            if receiver is not None:
                result.mutated_params.add(receiver)


def _assign_targets(node: ast.Assign | ast.AugAssign | ast.Delete) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, ast.AugAssign):
        return [node.target]
    return list(node.targets)


def _subscript_or_attr_base(node: ast.expr) -> Optional[str]:
    """Innermost base name of ``x.a.b`` / ``x[i].a`` chains; else None.

    A plain ``Name`` target is a rebind, not a mutation, so it returns
    None for bare names.
    """
    current: ast.expr = node
    seen_container = False
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        seen_container = True
        current = current.value
    if seen_container and isinstance(current, ast.Name):
        return current.id
    return None


def _set_valued_names(node: ast.AST) -> Set[str]:
    """Local names assigned from set-typed expressions (forward pass)."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            if _is_set_expr(sub.value, names):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            if _is_set_expr(sub.value, names) and isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
    return names


def _is_set_expr(node: ast.expr, set_valued: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_valued
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_valued) or _is_set_expr(
            node.right, set_valued
        )
    return False


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


# ----------------------------------------------------------------------
# contract front ends
# ----------------------------------------------------------------------
def _zone_allows_self_mutation(module: str) -> Optional[bool]:
    """None when the module is outside every purity zone."""
    best: Optional[Tuple[int, bool]] = None
    for prefix, allow_self in config.PURITY_ZONES.items():
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), allow_self)
    return best[1] if best is not None else None


def _in_determinism_zone(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in config.DETERMINISM_ZONES
    )


def purity_violations(
    graph: CallGraph, effects: Dict[str, FunctionEffects]
) -> Iterator[Tuple[FunctionInfo, Effect, EffectWitness]]:
    """RPR009: side effects inside a declared purity zone."""
    for qualname, info in sorted(graph.functions.items()):
        allow_self = _zone_allows_self_mutation(info.module)
        if allow_self is None:
            continue
        report = effects[qualname]
        for effect in (Effect.IO, Effect.MUTATES_GLOBAL, Effect.MUTATES_ARG):
            if not report.has(effect):
                continue
            if (
                effect is Effect.MUTATES_ARG
                and allow_self
                and report.mutated_params <= {"self", "cls"}
            ):
                continue
            yield info, effect, report.effects[effect]


#: Public aliases for sibling passes: the concurrency pass
#: (:mod:`repro.analysis.concurrency`) reuses the function-node table and
#: the import-reachability closure so its name-matched dispatch is
#: filtered exactly the way effect propagation is.
function_nodes = _function_nodes
module_reachability = _module_reachability


def determinism_violations(
    graph: CallGraph, effects: Dict[str, FunctionEffects]
) -> Iterator[Tuple[FunctionInfo, EffectWitness]]:
    """RPR010: nondeterminism inside a declared determinism zone."""
    for qualname, info in sorted(graph.functions.items()):
        if not _in_determinism_zone(info.module):
            continue
        report = effects[qualname]
        if report.has(Effect.NONDET):
            yield info, report.effects[Effect.NONDET]
