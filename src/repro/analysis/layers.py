"""Layering contract over the module import graph (deep pass 4, RPR013).

The declared architecture is a strict DAG of layers::

    geometry ──► index / network ──► core ──► continuous / io / sim /
                                              testing / invariants ──►
                                              experiments ──► cli

(ranks in :data:`repro.analysis.config.LAYER_RANKS`; longest prefix
wins, so single modules can override their package).  A module may
import only modules of its own or a lower rank; the judgment applies to
**top-level** imports — deferred function-scope imports are the
sanctioned cycle-breaking device and stay exempt.

On top of the rank check, two restricted contracts:

- the static-analysis side of ``repro.analysis`` may import nothing
  from ``repro`` outside itself (it must lint broken trees);
- no top-level import cycles anywhere (a submodule importing its own
  package ``__init__`` is the classic offender).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis import config
from repro.analysis.callgraph import ImportGraph, ImportRecord

__all__ = ["cycle_violations", "layer_rank", "layer_violations", "layering_table"]


def layer_rank(module: str) -> Optional[int]:
    """Rank by longest configured prefix; None for unranked modules."""
    best: Optional[Tuple[int, int]] = None  # (prefix length, rank)
    for prefix, rank in config.LAYER_RANKS.items():
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), rank)
    return best[1] if best is not None else None


def _is_static_analysis(module: str) -> bool:
    return module in config.STATIC_ANALYSIS_MODULES


def layer_violations(
    graph: ImportGraph,
) -> Iterator[Tuple[ImportRecord, str]]:
    """Yield (record, message) for every contract breach.

    ``from pkg import a, b, c`` produces one :class:`ImportRecord` per
    alias; the breach is per (source, target, line), so duplicates are
    folded here.
    """
    seen: Set[Tuple[str, str, int]] = set()
    for record in graph.records:
        if not record.top_level:
            continue
        key = (record.source, record.target, record.lineno)
        if key in seen:
            continue
        seen.add(key)
        if _is_static_analysis(record.source) and not _is_static_analysis(
            record.target
        ):
            yield (
                record,
                f"static-analysis module `{record.source}` imports "
                f"`{record.target}`; the lint side must run on broken trees "
                "and may only import repro.analysis itself",
            )
            continue
        source_rank = layer_rank(record.source)
        target_rank = layer_rank(record.target)
        if source_rank is None or target_rank is None:
            continue
        if target_rank > source_rank:
            yield (
                record,
                f"`{record.source}` (layer {source_rank}) imports "
                f"`{record.target}` (layer {target_rank}); the layering "
                "contract is geometry -> index/network -> core -> "
                "sim/experiments/testing (defer the import into the using "
                "function if it is a sanctioned cycle-breaker)",
            )


def cycle_violations(graph: ImportGraph) -> Iterator[Tuple[str, str]]:
    """Yield (module, message) for each top-level import cycle."""
    for component in graph.cycles():
        chain = " -> ".join(component + component[:1])
        yield (
            component[0],
            f"top-level import cycle: {chain}; break it with a deferred "
            "(function-scope) import or by importing the sibling module "
            "directly instead of its package",
        )


def layering_table() -> List[str]:
    """The declared contract, rendered for --explain output and docs."""
    by_rank: dict[int, List[str]] = {}
    for prefix, rank in sorted(config.LAYER_RANKS.items()):
        by_rank.setdefault(rank, []).append(prefix)
    lines = []
    for rank in sorted(by_rank):
        lines.append(f"layer {rank}: " + ", ".join(sorted(by_rank[rank])))
    return lines
