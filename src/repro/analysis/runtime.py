"""The runtime invariant sanitizer.

A process-wide :class:`Sanitizer` singleton (:data:`SANITIZER`) gates
cheap invariant validators that the hot data structures call after every
mutation.  When disabled -- the default -- each hook is one attribute
read; when enabled the validators of :mod:`repro.analysis.invariants`
run and raise ``InvariantViolation`` on corruption.

Enable it in one of three ways:

- environment: ``REPRO_SANITIZE=1`` (checked once at import);
- context manager::

      from repro.analysis import sanitized
      with sanitized():
          run_workload()

- pytest: ``pytest --sanitize`` (see ``tests/conftest.py``).

This module intentionally imports nothing from the rest of ``repro`` at
module scope: ``core.heap``, ``core.verification`` and ``index.rtree``
import it, and the validators live in
:mod:`repro.analysis.invariants`, which is loaded lazily on the first
enabled check.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.cache import CachedQueryResult
    from repro.core.heap import CandidateHeap, HeapState
    from repro.geometry.coverage import CoverageMethod
    from repro.geometry.point import Point
    from repro.index.rtree import RTree

__all__ = ["SANITIZER", "Sanitizer", "sanitized", "sanitizer_enabled"]

_ENV_FLAG = "REPRO_SANITIZE"
_TRUTHY = {"1", "true", "yes", "on"}


class Sanitizer:
    """Re-entrant on/off switch plus the mutation hooks.

    ``enabled`` is a plain attribute so the disabled-path cost inside
    hot loops is a single attribute read.  ``enable``/``disable`` nest:
    the sanitizer turns off only when every enabler has released it.
    """

    __slots__ = ("enabled", "_level", "checks_run")

    def __init__(self, enabled: bool = False) -> None:
        self._level = 1 if enabled else 0
        self.enabled = enabled
        #: How often each hook fired while enabled (observability/tests).
        self.checks_run: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # switching
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self._level += 1
        self.enabled = True

    def disable(self) -> None:
        if self._level > 0:
            self._level -= 1
        self.enabled = self._level > 0

    def _count(self, check: str) -> None:
        self.checks_run[check] = self.checks_run.get(check, 0) + 1

    # ------------------------------------------------------------------
    # hooks (called by the instrumented structures when enabled)
    # ------------------------------------------------------------------
    def after_heap_add(self, heap: "CandidateHeap", before: "HeapState") -> None:
        from repro.analysis import invariants

        self._count("heap.add")
        invariants.check_heap_transition(before, heap.state())
        invariants.check_heap_structure(heap)

    def after_rtree_mutation(self, tree: "RTree", operation: str) -> None:
        from repro.analysis import invariants

        self._count(f"rtree.{operation}")
        invariants.validate_rtree(tree)

    def after_verification(
        self,
        query: "Point",
        caches: Sequence["CachedQueryResult"],
        heap: "CandidateHeap",
        pre_snapshot: Dict[Tuple[float, float, Any], bool],
        method: "CoverageMethod | None" = None,
        polygon_sides: int = 32,
    ) -> None:
        from repro.analysis import invariants
        from repro.geometry.coverage import CoverageMethod

        self._count("verification")
        invariants.check_verification_soundness(
            query,
            caches,
            heap,
            pre_snapshot,
            method=method if method is not None else CoverageMethod.EXACT,
            polygon_sides=polygon_sides,
        )

    @staticmethod
    def heap_snapshot(heap: "CandidateHeap") -> Dict[Tuple[float, float, Any], bool]:
        """Key -> certain flag for every current entry (verifier pre-state)."""
        return {entry.key(): entry.certain for entry in heap.entries()}

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Sanitizer({state}, level={self._level}, checks={self.checks_run})"


#: The process-wide sanitizer; seeded from the environment.
SANITIZER = Sanitizer(enabled=os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY)


def sanitizer_enabled() -> bool:
    """True when the runtime sanitizer is currently active."""
    return SANITIZER.enabled


@contextmanager
def sanitized() -> Iterator[Sanitizer]:
    """Enable the sanitizer for the duration of the ``with`` block."""
    SANITIZER.enable()
    try:
        yield SANITIZER
    finally:
        SANITIZER.disable()
