"""The runtime invariant sanitizer.

A process-wide :class:`Sanitizer` singleton (:data:`SANITIZER`) gates
cheap invariant validators that the hot data structures call after every
mutation.  When disabled -- the default -- each hook is one attribute
read; when enabled the validators of :mod:`repro.analysis.invariants`
run and raise ``InvariantViolation`` on corruption.

Enable it in one of three ways:

- environment: ``REPRO_SANITIZE=1`` (checked once at import);
- context manager::

      from repro.analysis import sanitized
      with sanitized():
          run_workload()

- pytest: ``pytest --sanitize`` (see ``tests/conftest.py``).

This module intentionally imports nothing from the rest of ``repro`` at
module scope: ``core.heap``, ``core.verification`` and ``index.rtree``
import it, and the validators live in
:mod:`repro.analysis.invariants`, which is loaded lazily on the first
enabled check.

Race sanitizer
--------------
The same switch also gates a lightweight runtime race sanitizer.
:func:`named_lock` / :func:`named_async_lock` build drop-in lock wrappers
(:class:`TrackedLock` / :class:`TrackedAsyncLock`) that, while enabled,
report every successful acquisition to the singleton, which

* maintains per-thread (and, via a ``ContextVar``, per-task) stacks of
  held lock names,
* records each ``outer -> inner`` nesting into a runtime lock-order
  graph (:meth:`Sanitizer.lock_order_edges`) that the service tests
  cross-check as a *subset* of the static graph computed by
  ``repro-lint --concurrency``,
* flags inversions (both ``a -> b`` and ``b -> a`` observed) and
  re-acquisition of a held non-reentrant lock into
  :attr:`Sanitizer.lock_order_violations`, and
* checks via :meth:`Sanitizer.note_metric_mutation` that every metric
  mutation happens with its owning guard held.

The lock names are the *canonical* names the static pass derives from
the source (``"TcpTransport._lock"``), so the two graphs agree by
construction; :data:`repro.analysis.config.LOCK_ALIASES` folding is the
comparison helper's job, not this module's (it stays import-free).

Accounting sanitizer
--------------------
The same switch gates the runtime complement of ``repro-lint --perf``'s
billing model.  :class:`~repro.index.pagestats.PageAccessCounter` feeds
the singleton while enabled:

* :meth:`Sanitizer.note_billing` records which function billed each
  node/object access (resolved by frame walk, skipping the counter's own
  frames), so tests can cross-check *runtime billing ⊆ static billing
  model* -- every observed biller must be a site the accounting pass
  discovered;
* :meth:`Sanitizer.note_subcounter_created` /
  :meth:`Sanitizer.note_finish_query` / :meth:`Sanitizer.note_absorb`
  track the subcounter fold-once protocol at runtime: folding the same
  finished stream into history twice is reported immediately into
  :attr:`Sanitizer.accounting_violations`, and
  :meth:`Sanitizer.accounting_leftovers` lists streams that were opened
  but never folded (the RPR022 bug class, observed live);
* :meth:`Sanitizer.verify_conservation` checks the conservation law at
  quiescence: the per-query breakdown history of a counter must sum
  exactly to its running totals.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.cache import CachedQueryResult
    from repro.core.heap import CandidateHeap, HeapState
    from repro.geometry.coverage import CoverageMethod
    from repro.geometry.point import Point
    from repro.index.rtree import RTree

__all__ = [
    "SANITIZER",
    "Sanitizer",
    "TrackedAsyncLock",
    "TrackedLock",
    "named_async_lock",
    "named_lock",
    "sanitized",
    "sanitizer_enabled",
]

_ENV_FLAG = "REPRO_SANITIZE"
_TRUTHY = {"1", "true", "yes", "on"}

#: Lock names held by the *current asyncio task*.  Thread-ident stacks
#: cannot serve here: every task on the loop shares one thread, and two
#: tasks' independently held locks must not look nested.
_ASYNC_HELD: ContextVar[Tuple[str, ...]] = ContextVar("repro_async_held", default=())


class Sanitizer:
    """Re-entrant on/off switch plus the mutation hooks.

    ``enabled`` is a plain attribute so the disabled-path cost inside
    hot loops is a single attribute read.  ``enable``/``disable`` nest:
    the sanitizer turns off only when every enabler has released it.
    """

    __slots__ = (
        "enabled",
        "_level",
        "checks_run",
        "_lock",
        "_held",
        "lock_edges",
        "lock_order_violations",
        "metric_violations",
        "accounting_violations",
        "billing_callers",
        "_subcounters",
        "_breakdown_owner",
        "_folded",
    )

    def __init__(self, enabled: bool = False) -> None:
        #: Guards every mutable field below; reentrant so the note_*
        #: hooks may call ``_count`` while already holding it.
        self._lock = threading.RLock()
        self._level = 1 if enabled else 0
        self.enabled = enabled
        #: How often each hook fired while enabled (observability/tests).
        self.checks_run: Dict[str, int] = {}
        #: Thread ident -> stack of held tracked-lock names.
        self._held: Dict[int, List[str]] = {}
        #: Runtime lock-order graph: (outer, inner) -> acquisition count.
        self.lock_edges: Dict[Tuple[str, str], int] = {}
        #: Inversions and non-reentrant re-acquisitions seen at runtime.
        self.lock_order_violations: List[str] = []
        #: Metric mutations observed without their owning guard held.
        self.metric_violations: List[str] = []
        #: Double-folds and other billing protocol breaches.
        self.accounting_violations: List[str] = []
        #: (file basename, function name) pairs that billed an access.
        self.billing_callers: Set[Tuple[str, str]] = set()
        #: Every subcounter handed out while enabled (strong refs; the
        #: sanitizer tracks object *identity* with ``is`` scans rather
        #: than ``id()`` keys so its callers stay determinism-clean).
        self._subcounters: List[Any] = []
        #: (breakdown, subcounter) pairs: which sub a breakdown closed.
        self._breakdown_owner: List[Tuple[Any, Any]] = []
        #: Subcounters whose breakdown was absorbed into a history.
        self._folded: List[Any] = []

    # ------------------------------------------------------------------
    # switching
    # ------------------------------------------------------------------
    def enable(self) -> None:
        with self._lock:
            self._level += 1
            self.enabled = True

    def disable(self) -> None:
        with self._lock:
            if self._level > 0:
                self._level -= 1
            self.enabled = self._level > 0

    def _count(self, check: str) -> None:
        with self._lock:
            self.checks_run[check] = self.checks_run.get(check, 0) + 1

    # ------------------------------------------------------------------
    # race sanitizer (fed by TrackedLock / TrackedAsyncLock / metrics)
    # ------------------------------------------------------------------
    def _current_held(self) -> Tuple[str, ...]:
        thread_held = tuple(self._held.get(threading.get_ident(), ()))
        return thread_held + _ASYNC_HELD.get()

    def _record_edges(self, name: str, held: Tuple[str, ...]) -> None:
        """Register ``held[*] -> name`` edges (``_lock`` is reentrant)."""
        with self._lock:
            for outer in held:
                if outer == name:
                    self.lock_order_violations.append(
                        f"lock `{name}` re-acquired while already held"
                    )
                    continue
                edge = (outer, name)
                if (name, outer) in self.lock_edges and edge not in self.lock_edges:
                    self.lock_order_violations.append(
                        f"lock-order inversion: `{outer}` -> `{name}` acquired "
                        f"after the opposite order `{name}` -> `{outer}` was seen"
                    )
                self.lock_edges[edge] = self.lock_edges.get(edge, 0) + 1

    def note_acquire(self, name: str) -> None:
        """A tracked ``threading`` lock was acquired by this thread."""
        with self._lock:
            self._count("lock.acquire")
            self._record_edges(name, self._current_held())
            self._held.setdefault(threading.get_ident(), []).append(name)

    def note_release(self, name: str) -> None:
        """A tracked ``threading`` lock was released (tolerant pop)."""
        with self._lock:
            stack = self._held.get(threading.get_ident())
            if stack and name in stack:
                stack.reverse()
                stack.remove(name)
                stack.reverse()

    def note_async_acquire(self, name: str) -> None:
        """A tracked ``asyncio`` lock was acquired by the current task.

        The per-task held stack itself lives in a ``ContextVar`` managed
        by :class:`TrackedAsyncLock`; this hook only records the edges.
        """
        with self._lock:
            self._count("lock.acquire")
            self._record_edges(name, self._current_held())

    def note_metric_mutation(self, metric: str, guard: str) -> None:
        """A metric was mutated; its owning ``guard`` must be held."""
        with self._lock:
            self._count("metrics.mutation")
            if guard not in self._current_held():
                self.metric_violations.append(
                    f"metric `{metric}` mutated without its guard "
                    f"`{guard}` held"
                )

    def lock_order_edges(self) -> List[Tuple[str, str]]:
        """The runtime-observed lock-order graph, as sorted edge pairs."""
        with self._lock:
            return sorted(self.lock_edges)

    def reset_concurrency(self) -> None:
        """Forget recorded edges/violations (held stacks are kept)."""
        with self._lock:
            self.lock_edges = {}
            self.lock_order_violations = []
            self.metric_violations = []

    # ------------------------------------------------------------------
    # accounting sanitizer (fed by PageAccessCounter while enabled)
    # ------------------------------------------------------------------
    def note_billing(self, kind: str) -> None:
        """An access was billed; attribute it to the billing function.

        The caller is resolved by frame walk, skipping the counter's own
        frames (``record_scan`` bills through ``record`` internally), so
        the recorded pair names the function that *initiated* the bill
        -- the unit the static billing model reasons about.
        """
        frame = sys._getframe(1)
        while (
            frame is not None
            and os.path.basename(frame.f_code.co_filename) == "pagestats.py"
        ):
            frame = frame.f_back
        with self._lock:
            self._count(f"billing.{kind}")
            if frame is not None:
                self.billing_callers.add(
                    (
                        os.path.basename(frame.f_code.co_filename),
                        frame.f_code.co_name,
                    )
                )

    def note_subcounter_created(self, sub: Any) -> None:
        """A ``subcounter()`` was handed out; track its fold-once state."""
        with self._lock:
            self._count("billing.subcounter")
            self._subcounters.append(sub)

    def note_finish_query(self, counter: Any, breakdown: Any) -> None:
        """A counter closed a query; remember which sub a breakdown ends."""
        with self._lock:
            if any(tracked is counter for tracked in self._subcounters):
                self._breakdown_owner.append((breakdown, counter))

    def note_absorb(self, breakdown: Any) -> None:
        """A breakdown was folded into a parent counter's history."""
        with self._lock:
            sub = next(
                (
                    owner
                    for item, owner in self._breakdown_owner
                    if item is breakdown
                ),
                None,
            )
            if sub is None:
                return
            if any(folded is sub for folded in self._folded):
                self.accounting_violations.append(
                    "subcounter folded into history twice: its accesses "
                    "are double-counted in the parent totals"
                )
            else:
                self._folded.append(sub)

    def accounting_leftovers(self) -> List[str]:
        """Subcounters opened but never folded into any history."""
        with self._lock:
            return [
                "subcounter created but never absorbed into history: "
                "its accesses are lost to the parent counter"
                for sub in self._subcounters
                if not any(folded is sub for folded in self._folded)
            ]

    @staticmethod
    def verify_conservation(counter: Any) -> List[str]:
        """Check the conservation law on a quiescent counter.

        The per-query breakdown history must sum exactly to the running
        totals; only valid when no query is open and every subcounter
        has been folded back.
        """
        problems: List[str] = []
        total = sum(item.total for item in counter.history)
        if total != counter.total_accesses:
            problems.append(
                f"history sums to {total} accesses but the counter "
                f"recorded {counter.total_accesses}"
            )
        scanned = sum(item.entries_scanned for item in counter.history)
        if scanned != counter.total_entries_scanned:
            problems.append(
                f"history sums to {scanned} scanned entries but the "
                f"counter recorded {counter.total_entries_scanned}"
            )
        return problems

    def reset_accounting(self) -> None:
        """Forget billing callers and subcounter fold-once tracking."""
        with self._lock:
            self.accounting_violations = []
            self.billing_callers = set()
            self._subcounters = []
            self._breakdown_owner = []
            self._folded = []

    # ------------------------------------------------------------------
    # hooks (called by the instrumented structures when enabled)
    # ------------------------------------------------------------------
    def after_heap_add(self, heap: "CandidateHeap", before: "HeapState") -> None:
        from repro.analysis import invariants

        self._count("heap.add")
        invariants.check_heap_transition(before, heap.state())
        invariants.check_heap_structure(heap)

    def after_rtree_mutation(self, tree: "RTree", operation: str) -> None:
        from repro.analysis import invariants

        self._count(f"rtree.{operation}")
        invariants.validate_rtree(tree)

    def after_verification(
        self,
        query: "Point",
        caches: Sequence["CachedQueryResult"],
        heap: "CandidateHeap",
        pre_snapshot: Dict[Tuple[float, float, Any], bool],
        method: "CoverageMethod | None" = None,
        polygon_sides: int = 32,
    ) -> None:
        from repro.analysis import invariants
        from repro.geometry.coverage import CoverageMethod

        self._count("verification")
        invariants.check_verification_soundness(
            query,
            caches,
            heap,
            pre_snapshot,
            method=method if method is not None else CoverageMethod.EXACT,
            polygon_sides=polygon_sides,
        )

    @staticmethod
    def heap_snapshot(heap: "CandidateHeap") -> Dict[Tuple[float, float, Any], bool]:
        """Key -> certain flag for every current entry (verifier pre-state)."""
        return {entry.key(): entry.certain for entry in heap.entries()}

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Sanitizer({state}, level={self._level}, checks={self.checks_run})"


#: The process-wide sanitizer; seeded from the environment.
SANITIZER = Sanitizer(enabled=os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY)


def sanitizer_enabled() -> bool:
    """True when the runtime sanitizer is currently active."""
    return SANITIZER.enabled


@contextmanager
def sanitized() -> Iterator[Sanitizer]:
    """Enable the sanitizer for the duration of the ``with`` block."""
    SANITIZER.enable()
    try:
        yield SANITIZER
    finally:
        SANITIZER.disable()


# ----------------------------------------------------------------------
# tracked locks
# ----------------------------------------------------------------------
class TrackedLock:
    """A ``threading.Lock`` that reports acquisitions to the sanitizer.

    Disabled-path cost over a bare lock is one attribute read per
    acquire/release.  The ``name`` is the canonical lock name the static
    concurrency pass derives for the same lock (see
    :mod:`repro.analysis.locks`), which is what makes the runtime and
    static lock-order graphs comparable.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock, recording the nesting if held."""
        got = self._inner.acquire(blocking, timeout)
        if got and SANITIZER.enabled:
            SANITIZER.note_acquire(self.name)
        return got

    def release(self) -> None:
        """Release the underlying lock and pop it from the held stack."""
        self._inner.release()
        if SANITIZER.enabled:
            SANITIZER.note_release(self.name)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held by anyone."""
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"TrackedLock({self.name!r}, {state})"


class TrackedAsyncLock:
    """An ``asyncio.Lock`` wrapper feeding the runtime lock-order graph.

    Holds are tracked per *task* through a ``ContextVar`` rather than
    per thread: every task on the loop shares one thread, and two tasks
    holding unrelated locks must not register a nesting edge.
    """

    __slots__ = ("name", "_inner", "_token")

    def __init__(self, name: str) -> None:
        import asyncio

        self.name = name
        self._inner = asyncio.Lock()
        self._token: Any = None  # repro: guarded-by(single-writer)

    async def __aenter__(self) -> "TrackedAsyncLock":
        await self._inner.acquire()
        if SANITIZER.enabled:
            SANITIZER.note_async_acquire(self.name)
            # Only the holding task runs between here and __aexit__.
            self._token = _ASYNC_HELD.set(  # repro: guarded-by(single-writer)
                _ASYNC_HELD.get() + (self.name,)
            )
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _ASYNC_HELD.reset(self._token)
            self._token = None  # repro: guarded-by(single-writer)
        self._inner.release()

    def locked(self) -> bool:
        """Whether the underlying asyncio lock is currently held."""
        return self._inner.locked()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"TrackedAsyncLock({self.name!r}, {state})"


def named_lock(name: str) -> TrackedLock:
    """A tracked ``threading.Lock`` under its canonical name.

    The static concurrency pass recognizes this call and takes the
    canonical lock name from the string literal, so the source and the
    runtime agree on the node names of the lock-order graph.
    """
    return TrackedLock(name)


def named_async_lock(name: str) -> TrackedAsyncLock:
    """A tracked ``asyncio.Lock`` under its canonical name."""
    return TrackedAsyncLock(name)
