"""The ``repro-lint`` engine: rule registry, noqa handling, file runner.

The engine is deliberately small: a rule is a callable that receives a
:class:`ModuleContext` (parsed AST plus location metadata) and yields
:class:`Violation` records.  Rules register themselves with
:func:`register_rule`; importing :mod:`repro.analysis.rules` populates
the default registry.

Suppression uses ``# repro: noqa`` comments so the project's directives
cannot collide with other tools' ``# noqa``:

- ``# repro: noqa`` on a line suppresses every rule on that line;
- ``# repro: noqa(RPR001)`` / ``# repro: noqa(RPR001, RPR004)`` suppress
  only the named rules;
- module-scope rules (those reporting line 1, e.g. ``RPR006``) can be
  suppressed by a named directive on any line of the file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintReport",
    "Linter",
    "ModuleContext",
    "Rule",
    "Violation",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
]

#: Code reserved for files that cannot be parsed at all.
PARSE_ERROR_CODE = "RPR900"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<codes>[A-Z0-9,\s]+?)\s*\))?", re.IGNORECASE
)


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    name: str
    description: str
    check: Callable[["ModuleContext"], Iterator[Violation]]
    module_scope: bool = False


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module."""

    path: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    #: Dotted module name relative to the package root when derivable
    #: (e.g. ``repro.network.graph``); empty otherwise.
    module: str = ""

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        return Violation(
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            code,
            message,
        )

    def module_violation(self, code: str, message: str) -> Violation:
        return Violation(self.path, 1, 0, code, message)


_REGISTRY: Dict[str, Rule] = {}


def register_rule(
    code: str, name: str, description: str, *, module_scope: bool = False
) -> Callable[[Callable[[ModuleContext], Iterator[Violation]]], Callable[[ModuleContext], Iterator[Violation]]]:
    """Class/function decorator adding a rule to the default registry."""

    def decorator(
        check: Callable[[ModuleContext], Iterator[Violation]]
    ) -> Callable[[ModuleContext], Iterator[Violation]]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = Rule(code, name, description, check, module_scope)
        return check

    return decorator


def iter_rules() -> List[Rule]:
    """All registered rules in code order (registering the defaults)."""
    _ensure_default_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _ensure_default_rules() -> None:
    # Imported for its registration side effects; cycle-safe because
    # rules.py only imports back the decorator.
    from repro.analysis import rules as _rules  # noqa: F401


@dataclass
class LintReport:
    """The outcome of linting a set of paths."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        return "\n".join(v.render() for v in self.violations)


class Linter:
    """Runs a rule set over files, applying noqa suppression."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        _ensure_default_rules()
        selected = set(select) if select is not None else set(_REGISTRY)
        ignored = set(ignore) if ignore is not None else set()
        unknown = (selected | ignored) - set(_REGISTRY)
        if unknown:
            raise ValueError(f"unknown lint rule codes: {', '.join(sorted(unknown))}")
        self.rules = [
            _REGISTRY[code] for code in sorted(selected - ignored)
        ]

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> List[Violation]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Violation(
                    path,
                    exc.lineno or 1,
                    exc.offset or 0,
                    PARSE_ERROR_CODE,
                    f"cannot parse file: {exc.msg}",
                )
            ]
        context = ModuleContext(
            path=path, tree=tree, source=source, module=_module_name(path)
        )
        raw: List[Violation] = []
        for rule in self.rules:
            raw.extend(rule.check(context))
        suppressions = _collect_suppressions(context.lines)
        file_wide = _file_wide_codes(context.lines)
        kept = []
        for violation in raw:
            codes = suppressions.get(violation.line)
            if codes is not None and (codes is ALL_CODES or violation.code in codes):
                continue
            rule = _REGISTRY.get(violation.code)
            if rule is not None and rule.module_scope and violation.code in file_wide:
                continue
            kept.append(violation)
        kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return kept

    def lint_file(self, path: Path) -> List[Violation]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Violation(str(path), 1, 0, PARSE_ERROR_CODE, f"cannot read file: {exc}")]
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Sequence[Path]) -> LintReport:
        report = LintReport()
        for file_path in _expand_paths(paths):
            report.files_checked += 1
            report.violations.extend(self.lint_file(file_path))
        report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return report


#: Sentinel meaning "suppress every rule on this line".
ALL_CODES: Set[str] = set()


def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map line number -> suppressed codes (``ALL_CODES`` = everything)."""
    result: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            result[number] = ALL_CODES
        else:
            result[number] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return result


def _file_wide_codes(lines: Sequence[str]) -> Set[str]:
    """Named codes suppressed anywhere in the file (module-scope rules)."""
    codes: Set[str] = set()
    for suppressed in _collect_suppressions(lines).values():
        if suppressed is not ALL_CODES:
            codes.update(suppressed)
    return codes


def _expand_paths(paths: Sequence[Path]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Tuple[Path, ...] = tuple(sorted(path.rglob("*.py")))
        else:
            candidates = (path,)
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or _is_generated(resolved):
                continue
            seen.add(resolved)
            yield candidate


def _is_generated(path: Path) -> bool:
    parts = set(path.parts)
    return any(
        part in parts
        for part in ("__pycache__", ".git", "build", "dist")
    ) or any(part.endswith(".egg-info") for part in path.parts)


def _module_name(path: str) -> str:
    """Best-effort dotted module name for a source path."""
    parts = Path(path).with_suffix("").parts
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            module_parts = parts[index:]
            if module_parts[-1] == "__init__":
                module_parts = module_parts[:-1]
            return ".".join(module_parts)
    return Path(path).stem


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one source string with every registered rule."""
    return Linter().lint_source(source, path)


def lint_paths(paths: Sequence[Path]) -> LintReport:
    """Lint files/directories with every registered rule."""
    return Linter().lint_paths(paths)
