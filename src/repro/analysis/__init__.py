"""Project-specific static analysis and runtime invariant checking.

The reproduction's correctness rests on numeric and structural
invariants -- the Lemma 3.2/3.8 verification inequalities, the
six-state candidate heap of Section 3.3, and R*-tree MBR containment --
that unit tests can only sample.  This package adds machine-checked
guardrails on both sides of the build:

- :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` --
  ``repro-lint``, an AST-based lint engine with project-specific rules
  (``RPR001`` .. ``RPR006``) and ``# repro: noqa(CODE)`` suppression;
- :mod:`repro.analysis.runtime` -- the opt-in runtime sanitizer
  (``REPRO_SANITIZE=1`` or :func:`sanitized`) that validates R*-tree
  structure, candidate-heap state transitions and Lemma 3.8 soundness
  after every mutation of those hot structures;
- :mod:`repro.analysis.invariants` -- the validators themselves, also
  callable directly from tests.

The package ``__init__`` resolves its exports lazily (PEP 562): the
instrumented data structures (``core.heap``, ``index.rtree``) import
:mod:`repro.analysis.runtime` at module scope, so eagerly importing the
validators here would recreate the import cycle the layering avoids.

See ``docs/static_analysis.md`` for the rule catalogue and extension
guide.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "HEAP_TRANSITIONS",
    "InvariantViolation",
    "LintReport",
    "Linter",
    "Rule",
    "SANITIZER",
    "Sanitizer",
    "Violation",
    "check_heap_structure",
    "check_heap_transition",
    "check_verification_soundness",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "sanitized",
    "sanitizer_enabled",
    "validate_rtree",
]

_LINT_EXPORTS = {
    "LintReport",
    "Linter",
    "Rule",
    "Violation",
    "iter_rules",
    "lint_paths",
    "lint_source",
}
_INVARIANT_EXPORTS = {
    "HEAP_TRANSITIONS",
    "InvariantViolation",
    "check_heap_structure",
    "check_heap_transition",
    "check_verification_soundness",
    "validate_rtree",
}
_RUNTIME_EXPORTS = {"SANITIZER", "Sanitizer", "sanitized", "sanitizer_enabled"}


def __getattr__(name: str) -> object:
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    if name in _INVARIANT_EXPORTS:
        from repro.analysis import invariants

        return getattr(invariants, name)
    if name in _RUNTIME_EXPORTS:
        from repro.analysis import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
